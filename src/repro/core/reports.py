"""Violation records and run reports (Section 2.2: "it records the thread
IDs, address of the shared variable and program counters of the memory
accesses involved in the interleaving")."""


class ViolationRecord:
    """One detected atomicity violation."""

    __slots__ = (
        "ar_id",
        "var",
        "func",
        "addr",
        "local_tid",
        "remote_tid",
        "first_kind",
        "remote_kind",
        "second_kind",
        "remote_pc",
        "remote_location",
        "local_line_first",
        "local_line_second",
        "time_ns",
        "prevented",
    )

    def __init__(self, ar_id, var, func, addr, local_tid, remote_tid,
                 first_kind, remote_kind, second_kind, remote_pc,
                 remote_location, local_line_first, local_line_second,
                 time_ns, prevented):
        self.ar_id = ar_id
        self.var = var
        self.func = func
        self.addr = addr
        self.local_tid = local_tid
        self.remote_tid = remote_tid
        self.first_kind = first_kind
        self.remote_kind = remote_kind
        self.second_kind = second_kind
        self.remote_pc = remote_pc
        self.remote_location = remote_location
        self.local_line_first = local_line_first
        self.local_line_second = local_line_second
        self.time_ns = time_ns
        self.prevented = prevented

    @property
    def interleaving(self):
        """E.g. '(R, W, R)' — the non-serializable pattern observed."""
        return "(%s, %s, %s)" % (self.first_kind, self.remote_kind,
                                 self.second_kind)

    def describe(self):
        return (
            "AR %d (%s in %s): local tid %d lines %s-%s, remote tid %d at %s, "
            "interleaving %s, addr %d, t=%.3fms%s"
            % (
                self.ar_id,
                self.var,
                self.func,
                self.local_tid,
                self.local_line_first,
                self.local_line_second,
                self.remote_tid,
                self.remote_location,
                self.interleaving,
                self.addr,
                self.time_ns / 1e6,
                "" if self.prevented else " [NOT PREVENTED]",
            )
        )

    def __repr__(self):
        return "ViolationRecord(ar=%d, %s, prevented=%s)" % (
            self.ar_id, self.interleaving, self.prevented)


class ViolationLog:
    """Accumulates violation records during a run."""

    def __init__(self):
        self.records = []

    def add(self, record):
        self.records.append(record)

    def __len__(self):
        return len(self.records)

    def __iter__(self):
        return iter(self.records)

    def violated_ar_ids(self):
        """Unique AR ids with at least one violation (the paper's
        false-positive counting unit)."""
        return {r.ar_id for r in self.records}

    def for_ar(self, ar_id):
        return [r for r in self.records if r.ar_id == ar_id]


class RunReport:
    """Summary of one protected run: machine result + Kivati statistics."""

    __slots__ = ("result", "stats", "violations", "config", "ar_table")

    def __init__(self, result, stats, violations, config, ar_table):
        self.result = result
        self.stats = stats
        self.violations = violations
        self.config = config
        self.ar_table = ar_table

    @property
    def time_ns(self):
        return self.result.time_ns

    @property
    def time_seconds(self):
        return self.result.time_ns / 1e9

    @property
    def output(self):
        return self.result.output

    def violated_ars(self):
        return self.violations.violated_ar_ids()

    def false_positives(self, buggy_ar_ids=()):
        """Unique violated ARs that are not known bugs."""
        return self.violated_ars() - set(buggy_ar_ids)

    def crossings_per_second(self):
        """Kernel domain crossings per simulated second (Table 4 metric)."""
        if self.result.time_ns == 0:
            return 0.0
        return self.stats.crossings() / (self.result.time_ns / 1e9)

    def traps_per_second(self):
        if self.result.time_ns == 0:
            return 0.0
        return self.stats.traps / (self.result.time_ns / 1e9)

    def summary(self):
        return (
            "time=%.3fms instrs=%d crossings=%d traps=%d violations=%d "
            "(unique ARs %d) missed_ars=%d"
            % (
                self.time_ns / 1e6,
                self.result.instr_count,
                self.stats.crossings(),
                self.stats.traps,
                len(self.violations),
                len(self.violated_ars()),
                self.stats.missed_ars,
            )
        )
