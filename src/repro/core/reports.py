"""Violation records and run reports (Section 2.2: "it records the thread
IDs, address of the shared variable and program counters of the memory
accesses involved in the interleaving")."""


class ViolationRecord:
    """One detected atomicity violation."""

    __slots__ = (
        "ar_id",
        "var",
        "func",
        "addr",
        "local_tid",
        "remote_tid",
        "first_kind",
        "remote_kind",
        "second_kind",
        "remote_pc",
        "remote_location",
        "local_line_first",
        "local_line_second",
        "time_ns",
        "prevented",
    )

    def __init__(self, ar_id, var, func, addr, local_tid, remote_tid,
                 first_kind, remote_kind, second_kind, remote_pc,
                 remote_location, local_line_first, local_line_second,
                 time_ns, prevented):
        self.ar_id = ar_id
        self.var = var
        self.func = func
        self.addr = addr
        self.local_tid = local_tid
        self.remote_tid = remote_tid
        self.first_kind = first_kind
        self.remote_kind = remote_kind
        self.second_kind = second_kind
        self.remote_pc = remote_pc
        self.remote_location = remote_location
        self.local_line_first = local_line_first
        self.local_line_second = local_line_second
        self.time_ns = time_ns
        self.prevented = prevented

    @property
    def interleaving(self):
        """E.g. '(R, W, R)' — the non-serializable pattern observed."""
        return "(%s, %s, %s)" % (self.first_kind, self.remote_kind,
                                 self.second_kind)

    def describe(self):
        return (
            "AR %d (%s in %s): local tid %d lines %s-%s, remote tid %d at %s, "
            "interleaving %s, addr %d, t=%.3fms%s"
            % (
                self.ar_id,
                self.var,
                self.func,
                self.local_tid,
                self.local_line_first,
                self.local_line_second,
                self.remote_tid,
                self.remote_location,
                self.interleaving,
                self.addr,
                self.time_ns / 1e6,
                "" if self.prevented else " [NOT PREVENTED]",
            )
        )

    def __repr__(self):
        return "ViolationRecord(ar=%d, %s, prevented=%s)" % (
            self.ar_id, self.interleaving, self.prevented)


class ViolationLog:
    """Accumulates violation records during a run."""

    def __init__(self):
        self.records = []

    def add(self, record):
        self.records.append(record)

    def __len__(self):
        return len(self.records)

    def __iter__(self):
        return iter(self.records)

    def violated_ar_ids(self):
        """Unique AR ids with at least one violation (the paper's
        false-positive counting unit)."""
        return {r.ar_id for r in self.records}

    def for_ar(self, ar_id):
        return [r for r in self.records if r.ar_id == ar_id]


class DegradationRecord:
    """One graceful-degradation decision made during a protected run.

    ``kind`` names the policy that fired (``suspend-timeout``,
    ``watchdog-break``, ``breaker-open``, ``breaker-skip``,
    ``replica-resync``, ``whitelist-read-error``, ``duplicate-trap``,
    ``undo-failed``); ``detail`` carries policy-specific context (AR id,
    tids in a broken cycle, backoff applied, ...).
    """

    __slots__ = ("kind", "time_ns", "tid", "detail")

    def __init__(self, kind, time_ns, tid=None, **detail):
        self.kind = kind
        self.time_ns = time_ns
        self.tid = tid
        self.detail = detail

    def describe(self):
        extra = " ".join("%s=%s" % (k, v)
                         for k, v in sorted(self.detail.items()))
        who = "tid%d" % self.tid if self.tid is not None else "-"
        return "%10.3fus %-5s %-20s %s" % (
            self.time_ns / 1e3, who, self.kind, extra)

    def as_tuple(self):
        """Hashable identity used by the determinism checks."""
        return (self.kind, self.time_ns, self.tid,
                tuple(sorted(self.detail.items())))

    def __repr__(self):
        return "DegradationRecord(%s, t=%dns)" % (self.kind, self.time_ns)


class DegradationLog:
    """Accumulates degradation events during a run.

    Bounded with the same discipline as the trace ring buffer
    (repro.core.tracing.Trace): once ``max_records`` is reached new
    records are dropped and counted, so a long soak under sustained
    degradation cannot grow memory without bound — and cannot drop
    records silently (``dropped`` surfaces as
    ``KivatiStats.degradations_dropped``).
    """

    def __init__(self, max_records=4096):
        self.records = []
        self.max_records = max_records
        self.dropped = 0

    def add(self, record):
        if len(self.records) >= self.max_records:
            self.dropped += 1
            return
        self.records.append(record)

    def kinds(self):
        """Unique degradation kinds observed (set)."""
        return {r.kind for r in self.records}

    def of_kind(self, kind):
        return [r for r in self.records if r.kind == kind]

    def __len__(self):
        return len(self.records)

    def __iter__(self):
        return iter(self.records)


class RunReport:
    """Summary of one protected run: machine result + Kivati statistics."""

    __slots__ = ("result", "stats", "violations", "config", "ar_table",
                 "degradations", "injected", "pressure")

    def __init__(self, result, stats, violations, config, ar_table,
                 degradations=None, injected=(), pressure=None):
        self.result = result
        self.stats = stats
        self.violations = violations
        self.config = config
        self.ar_table = ar_table
        #: DegradationLog of graceful-degradation events (empty when the
        #: run never had to degrade)
        self.degradations = (degradations if degradations is not None
                             else DegradationLog())
        #: InjectedFault records from the fault plane (empty unless the
        #: run was configured with a FaultPlan)
        self.injected = list(injected)
        #: repro.pressure.PressurePlane of the run (None unless the
        #: config enabled the overload control plane)
        self.pressure = pressure

    @property
    def time_ns(self):
        return self.result.time_ns

    @property
    def time_seconds(self):
        return self.result.time_ns / 1e9

    @property
    def output(self):
        return self.result.output

    def violated_ars(self):
        return self.violations.violated_ar_ids()

    def false_positives(self, buggy_ar_ids=()):
        """Unique violated ARs that are not known bugs."""
        return self.violated_ars() - set(buggy_ar_ids)

    def crossings_per_second(self):
        """Kernel domain crossings per simulated second (Table 4 metric)."""
        if self.result.time_ns == 0:
            return 0.0
        return self.stats.crossings() / (self.result.time_ns / 1e9)

    def traps_per_second(self):
        if self.result.time_ns == 0:
            return 0.0
        return self.stats.traps / (self.result.time_ns / 1e9)

    @property
    def degraded(self):
        """True if any graceful-degradation policy fired during the run."""
        return len(self.degradations) > 0

    def as_payload(self):
        """Plain-JSON summary of this run for cross-process aggregation.

        This is the wire format a fleet worker sends back to the
        supervisor (repro.fleet): only deterministic, order-normalized
        plain types, so payloads from different workers for the same
        (program, config, seed) are *identical* and can be digested,
        compared and merged independent of completion order.
        """
        return {
            "output": list(self.result.output),
            "time_ns": self.result.time_ns,
            "instr_count": self.result.instr_count,
            "deadlocked": bool(self.result.deadlocked),
            "fault": (str(self.result.fault)
                      if self.result.fault is not None else None),
            "threads": self.result.threads,
            "stats": self.stats.as_dict(),
            "violations": sorted(
                (r.ar_id, r.var, r.local_tid, r.remote_tid,
                 r.interleaving, r.time_ns, bool(r.prevented))
                for r in self.violations),
            "violated_ars": sorted(self.violated_ars()),
            "degradation_kinds": sorted(self.degradations.kinds()),
            "degradations": len(self.degradations),
            "injected_faults": len(self.injected),
        }

    def summary(self):
        text = (
            "time=%.3fms instrs=%d crossings=%d traps=%d violations=%d "
            "(unique ARs %d) missed_ars=%d"
            % (
                self.time_ns / 1e6,
                self.result.instr_count,
                self.stats.crossings(),
                self.stats.traps,
                len(self.violations),
                len(self.violated_ars()),
                self.stats.missed_ars,
            )
        )
        if self.degradations:
            text += " degradations=%d (%s)" % (
                len(self.degradations),
                ",".join(sorted(self.degradations.kinds())))
        if self.injected:
            text += " injected_faults=%d" % len(self.injected)
        if self.stats.trace_dropped_events:
            text += (" trace_dropped=%d (ring buffer full)"
                     % self.stats.trace_dropped_events)
        if self.stats.slots_leaked or self.stats.slots_reclaimed:
            text += " slots_leaked=%d slots_reclaimed=%d" % (
                self.stats.slots_leaked, self.stats.slots_reclaimed)
        if self.stats.slots_leaked_at_exit:
            text += " slots_leaked_at_exit=%d" % (
                self.stats.slots_leaked_at_exit)
        if self.stats.arbiter_preemptions or self.stats.arbiter_denials:
            text += " arbiter=%d/%d (preempt/deny)" % (
                self.stats.arbiter_preemptions, self.stats.arbiter_denials)
        if self.stats.quarantined_ars:
            text += " quarantined_ars=%d (released %d)" % (
                self.stats.quarantined_ars, self.stats.quarantine_releases)
        if self.stats.admission_sheds:
            text += " admission_sheds=%d" % self.stats.admission_sheds
        if self.stats.degradations_dropped:
            text += (" degradations_dropped=%d (log full)"
                     % self.stats.degradations_dropped)
        return text
