"""Top-level convenience API.

Typical usage::

    from repro import Kivati, KivatiConfig, Mode, OptLevel

    kivati = Kivati(KivatiConfig(mode=Mode.PREVENTION, opt=OptLevel.OPTIMIZED))
    report = kivati.run(source_text)
    for v in report.violations:
        print(v.describe())
"""

from repro.analysis.annotate import annotate
from repro.core.config import KivatiConfig
from repro.core.session import ProtectedProgram
from repro.minic.pretty import pretty


def annotate_source(source):
    """Run the static annotator and return (annotated source text,
    AnnotationResult)."""
    result = annotate(source)
    return pretty(result.ast), result


def run_protected(source, config=None, seed=None):
    """Annotate, compile and run ``source`` under Kivati."""
    return ProtectedProgram(source).run(config, seed=seed)


def run_vanilla(source, num_cores=2, costs=None, seed=0):
    """Compile and run ``source`` without instrumentation."""
    return ProtectedProgram(source).run_vanilla(
        num_cores=num_cores, costs=costs, seed=seed
    )


class Kivati:
    """Facade bundling a configuration with a program cache."""

    def __init__(self, config=None):
        self.config = config or KivatiConfig()
        self._cache = {}

    def protect(self, source):
        """Annotate + compile ``source`` (cached)."""
        pp = self._cache.get(source)
        if pp is None:
            pp = ProtectedProgram(source)
            self._cache[source] = pp
        return pp

    def run(self, source, seed=None, **overrides):
        """Run ``source`` under this Kivati instance's configuration.
        ``overrides`` are KivatiConfig.copy keyword overrides."""
        config = self.config.copy(**overrides) if overrides else self.config
        return self.protect(source).run(config, seed=seed)

    def run_vanilla(self, source, seed=0):
        return self.protect(source).run_vanilla(
            num_cores=self.config.num_cores,
            costs=self.config.costs,
            seed=seed,
        )

    def overhead(self, source, seed=0, **overrides):
        config = self.config.copy(**overrides) if overrides else self.config
        return self.protect(source).overhead(config, seed=seed)
