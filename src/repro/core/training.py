"""Whitelist training (Section 4.2 / Figure 7).

"We also used training runs to build up a whitelist of benign atomic
regions. ... the number of new false positives decreases with successive
iterations, and bug-finding mode is able to find and remove more false
positives [per iteration]."

Each training iteration runs the workload with the whitelist accumulated
so far, observes the unique ARs that reported violations, classifies the
ones that are not known bugs as benign, and adds them to the whitelist.
"""


class TrainingResult:
    """Outcome of a training campaign."""

    __slots__ = ("iterations", "whitelist", "mode")

    def __init__(self, iterations, whitelist, mode):
        # iterations[i] = number of new false positives seen in run i
        self.iterations = list(iterations)
        self.whitelist = frozenset(whitelist)
        self.mode = mode

    @property
    def converged_after(self):
        """First iteration index after which no new FPs were seen, or None."""
        for i in range(len(self.iterations)):
            if all(n == 0 for n in self.iterations[i:]):
                return i
        return None

    def __repr__(self):
        return "TrainingResult(%s, fps/iter=%s)" % (self.mode.value,
                                                    self.iterations)


def observe_false_positives(protected_program, config, seed, whitelist,
                            buggy_ar_ids=()):
    """One training observation: run ``seed`` with a *frozen* whitelist
    and return the new benign ARs it exposed (violated, not known-buggy,
    not already whitelisted) as a sorted tuple.

    This is the unit of work the fleet farms out: because the whitelist
    is frozen for the whole round, the observation for a given
    ``(seed, whitelist)`` pair is a pure deterministic function —
    independent of which worker runs it and of every other seed in the
    round.
    """
    run_config = config.copy(whitelist=frozenset(whitelist), seed=seed)
    report = protected_program.run(run_config)
    new_fps = report.false_positives(set(buggy_ar_ids)) - set(whitelist)
    return tuple(sorted(new_fps))


def train_rounds(protected_program, config, seed_rounds, buggy_ar_ids=(),
                 initial_whitelist=()):
    """Round-based training: every seed in a round runs with the same
    frozen whitelist; the union of new false positives is folded in
    between rounds.

    Returns a TrainingResult whose ``iterations`` list counts the new
    unique false positives per *round*.  With singleton rounds
    (``[[s0], [s1], ...]``) this is exactly the classic sequential
    Figure 7 campaign; with wider rounds it is the serial reference the
    federated fleet trainer (repro.fleet.shard) must match — the
    synchronous whitelist update is what makes the per-round work
    order- and partition-independent.
    """
    whitelist = set(initial_whitelist)
    series = []
    for seeds in seed_rounds:
        new_this_round = set()
        for seed in seeds:
            new_this_round.update(observe_false_positives(
                protected_program, config, seed, whitelist, buggy_ar_ids))
        series.append(len(new_this_round))
        whitelist |= new_this_round
    return TrainingResult(series, whitelist, config.mode)


def train(protected_program, config, iterations=10, buggy_ar_ids=(),
          initial_whitelist=(), seed_base=100):
    """Run ``iterations`` training runs, growing the whitelist each time.

    Returns a TrainingResult whose ``iterations`` list is the Figure 7
    series (new false positives observed per iteration).
    """
    return train_rounds(
        protected_program, config,
        [[seed_base + i] for i in range(iterations)],
        buggy_ar_ids=buggy_ar_ids, initial_whitelist=initial_whitelist)
