"""Whitelist training (Section 4.2 / Figure 7).

"We also used training runs to build up a whitelist of benign atomic
regions. ... the number of new false positives decreases with successive
iterations, and bug-finding mode is able to find and remove more false
positives [per iteration]."

Each training iteration runs the workload with the whitelist accumulated
so far, observes the unique ARs that reported violations, classifies the
ones that are not known bugs as benign, and adds them to the whitelist.
"""


class TrainingResult:
    """Outcome of a training campaign."""

    __slots__ = ("iterations", "whitelist", "mode")

    def __init__(self, iterations, whitelist, mode):
        # iterations[i] = number of new false positives seen in run i
        self.iterations = list(iterations)
        self.whitelist = frozenset(whitelist)
        self.mode = mode

    @property
    def converged_after(self):
        """First iteration index after which no new FPs were seen, or None."""
        for i in range(len(self.iterations)):
            if all(n == 0 for n in self.iterations[i:]):
                return i
        return None

    def __repr__(self):
        return "TrainingResult(%s, fps/iter=%s)" % (self.mode.value,
                                                    self.iterations)


def train(protected_program, config, iterations=10, buggy_ar_ids=(),
          initial_whitelist=(), seed_base=100):
    """Run ``iterations`` training runs, growing the whitelist each time.

    Returns a TrainingResult whose ``iterations`` list is the Figure 7
    series (new false positives observed per iteration).
    """
    whitelist = set(initial_whitelist)
    buggy = set(buggy_ar_ids)
    series = []
    for i in range(iterations):
        run_config = config.copy(whitelist=frozenset(whitelist),
                                 seed=seed_base + i)
        report = protected_program.run(run_config)
        new_fps = report.false_positives(buggy) - whitelist
        series.append(len(new_fps))
        whitelist |= new_fps
    return TrainingResult(series, whitelist, config.mode)
