"""Public API of the Kivati reproduction."""

from repro.core.api import Kivati, annotate_source, run_protected, run_vanilla
from repro.core.config import KivatiConfig, Mode, OptimizationConfig, OptLevel
from repro.core.reports import RunReport, ViolationRecord

__all__ = [
    "Kivati",
    "KivatiConfig",
    "Mode",
    "OptLevel",
    "OptimizationConfig",
    "RunReport",
    "ViolationRecord",
    "annotate_source",
    "run_protected",
    "run_vanilla",
]
