"""Configuration of a Kivati-protected run."""

import enum

from repro.errors import ConfigError
from repro.machine.costs import CostModel

MS = 1_000_000  # nanoseconds per millisecond


class Mode(enum.Enum):
    """Section 2.3: the two usage modes."""

    PREVENTION = "prevention"
    BUG_FINDING = "bug-finding"


class OptLevel(enum.Enum):
    """The four configurations evaluated in Tables 3 and 4."""

    BASE = "base"
    NULL_SYSCALL = "null-syscall"
    SYNCVARS = "syncvars"
    OPTIMIZED = "optimized"


class OptimizationConfig:
    """Independent switches for the four optimizations of Section 3.4.

    - ``o1_userspace``: replicate AR table + watchpoint metadata in user
      space; enter the kernel only when hardware registers must change.
    - ``o2_lazy_free``: leave the hardware watchpoint armed when the last
      AR ends; reconcile on the next begin_atomic or trap.
    - ``o3_local_disable``: suppress watchpoint delivery for the local
      thread owning the AR; capture first-write values via the annotated
      shadow store instead of a local trap.
    - ``o4_syncvars``: whitelist ARs on synchronization variables.
    - ``null_syscall``: diagnostic configuration — begin/end/clear enter
      the kernel and return immediately (no monitoring at all).
    """

    __slots__ = ("o1_userspace", "o2_lazy_free", "o3_local_disable",
                 "o4_syncvars", "null_syscall")

    def __init__(self, o1_userspace=False, o2_lazy_free=False,
                 o3_local_disable=False, o4_syncvars=False,
                 null_syscall=False):
        self.o1_userspace = o1_userspace
        self.o2_lazy_free = o2_lazy_free
        self.o3_local_disable = o3_local_disable
        self.o4_syncvars = o4_syncvars
        self.null_syscall = null_syscall

    @classmethod
    def from_level(cls, level):
        if level == OptLevel.BASE:
            return cls()
        if level == OptLevel.NULL_SYSCALL:
            return cls(null_syscall=True)
        if level == OptLevel.SYNCVARS:
            return cls(o4_syncvars=True)
        if level == OptLevel.OPTIMIZED:
            return cls(o1_userspace=True, o2_lazy_free=True,
                       o3_local_disable=True, o4_syncvars=True)
        raise ConfigError("unknown optimization level %r" % (level,))

    def __repr__(self):
        flags = [name for name in self.__slots__ if getattr(self, name)]
        return "OptimizationConfig(%s)" % ", ".join(flags)


class KivatiConfig:
    """Full configuration of a protected run."""

    __slots__ = (
        "mode",
        "opt",
        "num_watchpoints",
        "num_cores",
        "pause_ns",
        "pause_probability",
        "suspend_timeout_ns",
        "whitelist",
        "whitelist_path",
        "whitelist_reread_ns",
        "costs",
        "seed",
        "trap_before",
        "eager_crosscore",
        "max_steps",
        "trace",
        "journal",
        "faults",
        "breaker",
        "watchdog",
        "static_prune",
        "pressure",
        "conflict_sched",
        "obs",
    )

    def __init__(
        self,
        mode=Mode.PREVENTION,
        opt=OptLevel.OPTIMIZED,
        num_watchpoints=4,
        num_cores=2,
        pause_ns=20 * MS,
        pause_probability=0.01,
        suspend_timeout_ns=10 * MS,
        whitelist=(),
        whitelist_path=None,
        whitelist_reread_ns=500 * MS,
        costs=None,
        seed=0,
        trap_before=False,
        eager_crosscore=False,
        max_steps=200_000_000,
        trace=None,
        journal=None,
        faults=None,
        breaker=True,
        watchdog=True,
        static_prune=False,
        pressure=None,
        conflict_sched=False,
        obs=None,
    ):
        self.mode = mode
        self.opt = (OptimizationConfig.from_level(opt)
                    if isinstance(opt, OptLevel) else opt)
        if num_watchpoints < 1:
            raise ConfigError("need at least one watchpoint register")
        if num_cores < 1:
            raise ConfigError("need at least one core")
        if not (0.0 <= pause_probability <= 1.0):
            raise ConfigError("pause_probability must be in [0, 1]")
        if not isinstance(suspend_timeout_ns, int) or suspend_timeout_ns < 1:
            raise ConfigError("suspend_timeout_ns must be a positive "
                              "integer nanosecond count")
        self.num_watchpoints = num_watchpoints
        self.num_cores = num_cores
        self.pause_ns = pause_ns
        self.pause_probability = pause_probability
        self.suspend_timeout_ns = suspend_timeout_ns
        self.whitelist = frozenset(whitelist)
        self.whitelist_path = whitelist_path
        self.whitelist_reread_ns = whitelist_reread_ns
        self.costs = costs or CostModel()
        self.seed = seed
        self.trap_before = trap_before
        # ablation: synchronize other cores' watchpoint registers with an
        # immediate IPI instead of the paper's lazy opportunistic scheme
        self.eager_crosscore = eager_crosscore
        self.max_steps = max_steps
        # optional repro.core.tracing.Trace for violation forensics
        self.trace = trace
        # optional repro.journal.JournalRecorder: the durable incident
        # journal (scheduler decisions, AR lifecycle, traps, undos,
        # degradations) that survives the process and feeds replay,
        # crash recovery and the postmortem re-verifier
        self.journal = journal
        # optional repro.faults.FaultPlan: deterministic fault injection;
        # None (the default) keeps every injection site on its zero-cost
        # predicate-only path
        self.faults = faults
        # per-AR fail-open circuit breaker: True for default thresholds,
        # False to disable, or a repro.faults.BreakerPolicy instance
        self.breaker = breaker
        # suspension watchdog: break cyclic mutual suspension immediately
        # instead of waiting for the 10 ms timeout
        self.watchdog = watchdog
        # opt-in: skip monitoring for ARs the lock-discipline analysis
        # proved STATIC_SAFE (repro.analysis.prune); merged with, not
        # replacing, the dynamic whitelist
        self.static_prune = static_prune
        # overload control plane (repro.pressure): True for default
        # policy, a PressurePolicy instance for tuned watermarks, or
        # None (the default) to keep the seed fail-open behavior
        self.pressure = pressure
        # opt-in: conflict-aware machine scheduling — in PREVENTION mode
        # the scheduler deprioritizes runnable threads whose static AR
        # footprints (repro.analysis.footprint) intersect a thread
        # already running on another core, turning suspensions/undos
        # into cheap scheduling decisions
        self.conflict_sched = conflict_sched
        # optional repro.obs.ObsPlane: metrics registry + deterministic
        # VM profiler. A per-run mutable observer like trace/journal —
        # excluded from journal snapshots, and purely read-only with
        # respect to simulation (no cost, scheduling, journal or report
        # changes); None keeps every hook on its is-None predicate
        self.obs = obs

    @property
    def detection_enabled(self):
        return not self.opt.null_syscall

    @property
    def prevention_enabled(self):
        return not self.opt.null_syscall

    def copy(self, **overrides):
        kwargs = {
            "mode": self.mode,
            "opt": self.opt,
            "num_watchpoints": self.num_watchpoints,
            "num_cores": self.num_cores,
            "pause_ns": self.pause_ns,
            "pause_probability": self.pause_probability,
            "suspend_timeout_ns": self.suspend_timeout_ns,
            "whitelist": self.whitelist,
            "whitelist_path": self.whitelist_path,
            "whitelist_reread_ns": self.whitelist_reread_ns,
            "costs": self.costs,
            "seed": self.seed,
            "trap_before": self.trap_before,
            "eager_crosscore": self.eager_crosscore,
            "max_steps": self.max_steps,
            "trace": self.trace,
            "journal": self.journal,
            "faults": self.faults,
            "breaker": self.breaker,
            "watchdog": self.watchdog,
            "static_prune": self.static_prune,
            "pressure": self.pressure,
            "conflict_sched": self.conflict_sched,
            "obs": self.obs,
        }
        kwargs.update(overrides)
        return KivatiConfig(**kwargs)
