"""Execution tracing for violation forensics.

The paper argues Kivati beats testing tools on diagnosability: "Kivati is
able to provide a detailed trace with the thread IDs, address of the
shared variable and program counters of the instructions involved"
(Section 5). This module records the run-time events around atomic
regions — begins/ends, traps, undos, suspensions, timeouts, pauses,
violations — and renders them as a per-thread timeline a developer can
read top to bottom.

Enable by passing ``trace=Trace()`` in :class:`KivatiConfig`; the runtime
and kernel emit into it.
"""


class TraceEvent:
    __slots__ = ("time_ns", "tid", "kind", "details")

    def __init__(self, time_ns, tid, kind, details):
        self.time_ns = time_ns
        self.tid = tid
        self.kind = kind
        self.details = details

    def describe(self):
        detail = " ".join("%s=%s" % (k, v)
                          for k, v in sorted(self.details.items()))
        return "%10.3fus tid%-3d %-12s %s" % (
            self.time_ns / 1e3, self.tid, self.kind, detail)

    def __repr__(self):
        return "TraceEvent(%d, tid=%d, %s)" % (self.time_ns, self.tid,
                                               self.kind)


class Trace:
    """Event recorder with bounded memory."""

    KINDS = ("begin", "end", "clear", "trap", "undo", "suspend", "wake",
             "timeout", "pause", "violation", "miss",
             # robustness plane: injected faults and degradation policies
             "fault", "degrade", "watchdog", "breaker", "resync")

    def __init__(self, max_events=100_000):
        self.events = []
        self.max_events = max_events
        self.dropped = 0

    def emit(self, time_ns, tid, kind, **details):
        if len(self.events) >= self.max_events:
            self.dropped += 1
            return
        self.events.append(TraceEvent(time_ns, tid, kind, details))

    def filter(self, kinds=None, tid=None, ar_id=None):
        """Select events by kind, thread, or AR id."""
        out = []
        for event in self.events:
            if kinds is not None and event.kind not in kinds:
                continue
            if tid is not None and event.tid != tid:
                continue
            if ar_id is not None and event.details.get("ar") != ar_id:
                continue
            out.append(event)
        return out

    def around(self, time_ns, window_ns=5000):
        """Events within ±window of a timestamp (e.g. a violation's)."""
        return [e for e in self.events
                if abs(e.time_ns - time_ns) <= window_ns]

    def render(self, events=None, limit=200):
        """Chronological text listing."""
        events = self.events if events is None else events
        lines = [e.describe() for e in events[:limit]]
        if len(events) > limit:
            lines.append("... %d more events" % (len(events) - limit))
        if self.dropped:
            lines.append("... %d events dropped (max_events=%d)"
                         % (self.dropped, self.max_events))
        return "\n".join(lines)

    def render_violation(self, violation, window_ns=100_000):
        """The forensic view: everything that happened around one
        recorded violation."""
        header = "violation: " + violation.describe()
        nearby = self.around(violation.time_ns, window_ns)
        return header + "\n" + self.render(nearby)

    def __len__(self):
        return len(self.events)
