"""Run orchestration: annotate once, compile once, run under any config."""

from repro.analysis.annotate import annotate
from repro.analysis.normalize import normalize_program
from repro.compiler.codegen import compile_program
from repro.core.config import KivatiConfig
from repro.core.reports import DegradationLog, RunReport, ViolationLog
from repro.faults.plan import FaultInjector
from repro.journal.snapshot import config_snapshot
from repro.machine.machine import Machine
from repro.minic.parser import parse
from repro.minic.typecheck import check
from repro.runtime.userlib import KivatiRuntime


class ProtectedProgram:
    """A mini-C program prepared for execution under Kivati.

    Holds both the annotated binary and an annotation-free binary compiled
    from the same normalized source, so overhead measurements compare
    like-for-like code.
    """

    def __init__(self, source, interprocedural=False,
                 pointer_analysis=False):
        self.source = source
        self.annotation = annotate(source, interprocedural=interprocedural,
                                   pointer_analysis=pointer_analysis)
        self.program = compile_program(
            self.annotation.ast, self.annotation.pinfo,
            self.annotation.ar_table
        )
        self.program.source = source

        vanilla_ast = normalize_program(parse(source))
        self.vanilla_program = compile_program(vanilla_ast, check(vanilla_ast))
        self.vanilla_program.source = source

    @property
    def ar_table(self):
        return self.annotation.ar_table

    @property
    def sync_ar_ids(self):
        return self.annotation.sync_ar_ids

    @property
    def num_ars(self):
        return self.annotation.num_ars

    @property
    def static_safe_ar_ids(self):
        return self.annotation.static_safe_ar_ids

    def run(self, config=None, seed=None, raise_on_deadlock=False,
            schedule_pin=None):
        """Execute under Kivati; returns a RunReport.

        ``schedule_pin`` (a :class:`repro.journal.replay.SchedulePin`)
        forces scheduler decisions to follow a recorded journal; it is
        only meaningful together with a config whose other knobs match
        the recorded run.
        """
        config = config or KivatiConfig()
        if seed is not None:
            config = config.copy(seed=seed)
        log = ViolationLog()
        injector = (FaultInjector(config.faults, config.seed)
                    if config.faults is not None else None)
        degradations = DegradationLog()
        journal = config.journal
        if journal is not None:
            # crash injection targets the journal's own frame boundaries
            journal.faults = injector
            journal.emit(0, -1, "run-start",
                         config=config_snapshot(config, self.source))
        runtime = KivatiRuntime(
            config, self.ar_table, log, self.sync_ar_ids,
            faults=injector, degrade=degradations,
            static_safe_ar_ids=self.annotation.static_safe_ar_ids,
            journal=journal,
            footprints=self.annotation.footprints,
            func_footprints=self.annotation.func_footprints,
            blocking_ar_ids=frozenset(
                ar_id for ar_id, v in self.annotation.prune.verdicts.items()
                if v.blocking),
            coarse_vars=frozenset(
                name for name, size in
                self.annotation.pinfo.global_sizes.items() if size > 1))
        machine = Machine(
            self.program,
            num_cores=config.num_cores,
            num_watchpoints=config.num_watchpoints,
            costs=config.costs,
            runtime=runtime,
            seed=config.seed,
            trap_before=config.trap_before,
            max_steps=config.max_steps,
            faults=injector,
            journal=journal,
            schedule_pin=schedule_pin,
            profiler=config.obs.profiler if config.obs is not None else None,
        )
        try:
            result = machine.run(raise_on_deadlock=raise_on_deadlock)
            if journal is not None:
                journal.emit(result.time_ns, -1, "run-end",
                             output=list(result.output),
                             deadlocked=result.deadlocked,
                             violations=len(log),
                             unprevented=sum(1 for r in log
                                             if not r.prevented),
                             instr_count=result.instr_count)
        finally:
            # on a simulated crash the writer is already torn and closed;
            # on success this flushes the run-end frame
            if journal is not None:
                journal.close()
        if config.obs is not None:
            # fold this run's stats into the obs registry; observation
            # only — the report below is identical with obs on or off
            config.obs.finalize_run(runtime.stats, result)
        return RunReport(result, runtime.stats, log, config, self.ar_table,
                         degradations=degradations,
                         injected=tuple(injector.injected)
                         if injector is not None else (),
                         pressure=runtime.pressure)

    def run_vanilla(self, num_cores=2, costs=None, seed=0,
                    raise_on_deadlock=False, max_steps=200_000_000):
        """Execute the uninstrumented binary; returns a MachineResult."""
        machine = Machine(
            self.vanilla_program,
            num_cores=num_cores,
            costs=costs,
            seed=seed,
            max_steps=max_steps,
        )
        return machine.run(raise_on_deadlock=raise_on_deadlock)

    def overhead(self, config=None, seed=0):
        """Fractional run-time overhead of this config vs vanilla on the
        same seed (e.g. 0.19 for 19%)."""
        config = (config or KivatiConfig()).copy(seed=seed)
        vanilla = self.run_vanilla(num_cores=config.num_cores,
                                   costs=config.costs, seed=seed)
        protected = self.run(config)
        if vanilla.time_ns == 0:
            return 0.0
        return protected.time_ns / vanilla.time_ns - 1.0
