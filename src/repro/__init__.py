"""Kivati reproduction: fast detection and prevention of atomicity violations.

This package reproduces the system described in "Kivati: Fast Detection and
Prevention of Atomicity Violations" (Chew & Lie, EuroSys 2010) as a pure
Python simulation stack:

- :mod:`repro.minic` — a mini-C front end (the language of protected programs)
- :mod:`repro.compiler` — bytecode compiler and the pre-processing memory map
- :mod:`repro.machine` — multicore VM with x86-style trap-after watchpoints
- :mod:`repro.kernel` — the Kivati kernel component (detection + prevention)
- :mod:`repro.runtime` — user-space library with the paper's optimizations
- :mod:`repro.analysis` — the CIL-style static annotator (LSV + AR pairing)
- :mod:`repro.core` — public API: annotate, run, report, train
- :mod:`repro.baselines` — AVIO-like and lockset comparators
- :mod:`repro.workloads` — five application models and the 11-bug corpus
- :mod:`repro.bench` — generators for every table and figure in the paper
"""

from repro.core.api import Kivati, annotate_source, run_protected, run_vanilla
from repro.core.config import KivatiConfig, Mode, OptimizationConfig, OptLevel
from repro.core.reports import RunReport, ViolationRecord

__version__ = "1.0.0"

__all__ = [
    "Kivati",
    "KivatiConfig",
    "Mode",
    "OptLevel",
    "OptimizationConfig",
    "RunReport",
    "ViolationRecord",
    "annotate_source",
    "run_protected",
    "run_vanilla",
    "__version__",
]
