"""Eraser-style lockset data-race checker (second comparator).

Tracks the set of locks held at each access to each shared address; a
location whose candidate lockset becomes empty after accesses from
multiple threads is reported as a potential race. Like the paper's cited
race detectors (RaceFuzzer, FastTrack), this finds data races rather than
atomicity violations, and pays per-access software instrumentation cost.
"""

from repro.analysis.lockmodel import HeldLockTracker
from repro.machine.runtime_iface import BaseRuntime


class RaceReport:
    __slots__ = ("addr", "tids", "time_ns")

    def __init__(self, addr, tids, time_ns):
        self.addr = addr
        self.tids = frozenset(tids)
        self.time_ns = time_ns

    def __repr__(self):
        return "RaceReport(addr=%d, tids=%s)" % (self.addr, sorted(self.tids))


class LocksetRuntime(BaseRuntime):
    wants_all_accesses = True

    PER_ACCESS_COST = 40

    def __init__(self, per_access_cost=None):
        self.per_access_cost = (per_access_cost if per_access_cost is not None
                                else self.PER_ACCESS_COST)
        # held-lock reconstruction is shared with the static analysis via
        # repro.analysis.lockmodel so both sides agree on what a lock is
        self.tracker = HeldLockTracker()
        self.held = self.tracker.held  # tid -> set of lock addrs
        self.candidates = {}  # addr -> (candidate lockset, tids, reported)
        self.races = []
        self.accesses_observed = 0
        self.machine = None

    def attach(self, machine):
        self.machine = machine

    def on_memory_access(self, core, thread, addr, is_write):
        self.accesses_observed += 1
        machine = self.machine
        tid = thread.tid
        # maintain the held-lock set by observing lock-word transitions:
        # an acquire leaves tid+1 in the word, a release leaves 0
        post = machine.memory.words.get(addr, 0)
        outcome = self.tracker.observe_word(tid, addr, post)
        held = self.tracker.locks_of(tid)
        if outcome == "release":
            return self.per_access_cost  # lock word itself is not data

        entry = self.candidates.get(addr)
        if entry is None:
            self.candidates[addr] = [set(held), {tid}, False]
        else:
            cand, tids, reported = entry
            cand &= held
            tids.add(tid)
            # Eraser-style: report only when a *write* leaves the location
            # shared-modified with an empty candidate lockset (read-only
            # post-join accesses do not flag races)
            if is_write and len(tids) > 1 and not cand and not reported:
                entry[2] = True
                self.races.append(RaceReport(addr, tids, core.clock))
        return self.per_access_cost


def run_lockset(program, num_cores=2, costs=None, seed=0,
                per_access_cost=None, max_steps=200_000_000):
    """Run a compiled program under the lockset checker."""
    from repro.machine.machine import Machine

    runtime = LocksetRuntime(per_access_cost)
    machine = Machine(program, num_cores=num_cores, costs=costs,
                      runtime=runtime, seed=seed, max_steps=max_steps)
    result = machine.run()
    return result, runtime
