"""AVIO-style software atomicity-violation detector.

AVIO (Lu et al., ASPLOS 2006) observes *every* shared memory access and
checks each local access pair for an unserializable interleaving. Without
hardware support this means per-access software instrumentation — the
source of the 15x-65x worst-case overheads the paper cites. This
implementation reproduces that cost structure on the simulated machine:
every data access pays an instrumentation cost and updates per-address
access history; unserializable (prev_local, remote, this_local) triples
are reported.

Detection here is post-hoc (testing-tool semantics): violations are
recorded, never prevented.
"""

from repro.machine.runtime_iface import BaseRuntime
from repro.analysis.watchtype import is_unserializable
from repro.minic.ast import AccessKind


class AvioViolation:
    """One detected unserializable interleaving."""

    __slots__ = ("addr", "first_kind", "remote_kind", "second_kind",
                 "local_tid", "remote_tid", "time_ns")

    def __init__(self, addr, first_kind, remote_kind, second_kind,
                 local_tid, remote_tid, time_ns):
        self.addr = addr
        self.first_kind = first_kind
        self.remote_kind = remote_kind
        self.second_kind = second_kind
        self.local_tid = local_tid
        self.remote_tid = remote_tid
        self.time_ns = time_ns

    def __repr__(self):
        return "AvioViolation(addr=%d, (%s,%s,%s))" % (
            self.addr, self.first_kind, self.remote_kind, self.second_kind)


class AvioLikeRuntime(BaseRuntime):
    """Per-access instrumentation runtime."""

    wants_all_accesses = True

    #: software instrumentation cost per access, in ns — calibrated to the
    #: 15x-65x slowdown range the paper reports for this tool class
    PER_ACCESS_COST = 60

    def __init__(self, per_access_cost=None):
        self.per_access_cost = (per_access_cost if per_access_cost is not None
                                else self.PER_ACCESS_COST)
        # addr -> (last_tid, last_kind, prev_local_kind_by_tid)
        self.last_access = {}
        self.prev_local = {}
        self.violations = []
        self.accesses_observed = 0
        self.machine = None

    def attach(self, machine):
        self.machine = machine

    def on_memory_access(self, core, thread, addr, is_write):
        self.accesses_observed += 1
        kind = AccessKind.WRITE if is_write else AccessKind.READ
        tid = thread.tid
        last = self.last_access.get(addr)
        if last is not None:
            last_tid, last_kind = last
            if last_tid != tid:
                # an interleaving: check the previous local access of this
                # thread on this address against the remote one
                prev = self.prev_local.get((addr, tid))
                if prev is not None and is_unserializable(prev, last_kind,
                                                          kind):
                    self.violations.append(AvioViolation(
                        addr, prev, last_kind, kind, tid, last_tid,
                        core.clock,
                    ))
        self.last_access[addr] = (tid, kind)
        self.prev_local[(addr, tid)] = kind
        return self.per_access_cost


def run_avio_like(program, num_cores=2, costs=None, seed=0,
                  per_access_cost=None, max_steps=200_000_000):
    """Run a compiled program under the AVIO-like detector.

    Returns (MachineResult, AvioLikeRuntime).
    """
    from repro.machine.machine import Machine

    runtime = AvioLikeRuntime(per_access_cost)
    machine = Machine(program, num_cores=num_cores, costs=costs,
                      runtime=runtime, seed=seed, max_steps=max_steps)
    result = machine.run()
    return result, runtime
