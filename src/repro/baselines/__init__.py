"""Comparator systems (Section 5 / Section 1).

The paper positions Kivati against software testing tools that instrument
*every* memory access (AVIO, Atomizer, Velodrome, SVD, CTrigger...) and
report 2.2x-72x slowdowns. :mod:`repro.baselines.avio` implements such a
detector on the same virtual machine so the "orders of magnitude"
comparison can be regenerated; :mod:`repro.baselines.lockset` adds a
classic lockset (Eraser-style) race checker as a second comparator.
"""

from repro.baselines.avio import AvioLikeRuntime, run_avio_like
from repro.baselines.ctrigger import ExplorationResult, explore
from repro.baselines.lockset import LocksetRuntime, run_lockset

__all__ = ["AvioLikeRuntime", "ExplorationResult", "LocksetRuntime",
           "explore", "run_avio_like", "run_lockset"]
