"""CTrigger-style interleaving exploration (third comparator).

The paper's related work (Section 5) covers testing systems — CTrigger,
CHESS, RaceFuzzer — that repeatedly execute the program under perturbed
schedules to make rare interleavings manifest, checking each run with a
per-access oracle. They are offline tools: expensive (the 2.2x-72x
range), and they only *find* violations, never prevent them.

This implementation perturbs scheduling two ways per run: a different
seed (start offsets, jitter) and a randomized preemption quantum, then
checks accesses with the AVIO-like oracle. The headline comparison:
total exploration cost vs one Kivati-protected production run.
"""

from repro.baselines.avio import AvioLikeRuntime
from repro.machine.costs import CostModel
from repro.machine.machine import Machine


class ExplorationResult:
    """Outcome of a schedule-exploration campaign."""

    __slots__ = ("runs", "total_time_ns", "violations",
                 "first_violation_run", "accesses_observed")

    def __init__(self, runs, total_time_ns, violations,
                 first_violation_run, accesses_observed):
        self.runs = runs
        self.total_time_ns = total_time_ns
        self.violations = violations
        self.first_violation_run = first_violation_run
        self.accesses_observed = accesses_observed

    @property
    def found(self):
        return bool(self.violations)

    def unique_sites(self):
        """Distinct (address, interleaving pattern) pairs found."""
        return {(v.addr, v.first_kind, v.remote_kind, v.second_kind)
                for v in self.violations}

    def __repr__(self):
        return ("ExplorationResult(runs=%d, found=%d sites, "
                "first at run %s)" % (self.runs, len(self.unique_sites()),
                                      self.first_violation_run))


def explore(program, runs=20, num_cores=2, base_costs=None,
            per_access_cost=None, seed_base=0):
    """Run ``runs`` perturbed executions of ``program`` under the
    per-access oracle; returns an ExplorationResult."""
    base_costs = base_costs or CostModel()
    total_time = 0
    violations = []
    first_run = None
    accesses = 0
    for i in range(runs):
        seed = seed_base + i * 6151
        # perturb the preemption quantum pseudo-randomly per run
        quantum = 1_000 + (seed * 2654435761 % 12) * 700
        costs = base_costs.copy(quantum=quantum)
        runtime = AvioLikeRuntime(per_access_cost)
        machine = Machine(program, num_cores=num_cores, costs=costs,
                          runtime=runtime, seed=seed)
        result = machine.run()
        total_time += result.time_ns
        accesses += runtime.accesses_observed
        if runtime.violations and first_run is None:
            first_run = i + 1
        violations.extend(runtime.violations)
    return ExplorationResult(runs, total_time, violations, first_run,
                             accesses)
