"""Simulated multicore machine with x86-style hardware watchpoints.

The machine executes compiled mini-C bytecode on a configurable number of
cores, each with its own set of debug registers (four by default, matching
Intel/AMD x86). Watchpoint traps are delivered *after* the triggering
instruction commits, exactly the property that makes the paper's x86
prototype hard: the kernel must undo the access to reorder it.

Time is simulated at nanosecond granularity by a discrete-event loop: the
core with the smallest local clock executes the next instruction, paying
costs from a :class:`repro.machine.costs.CostModel`. Blocked cores fast
forward to the next event. Run time is the maximum core clock at halt.
"""

from repro.machine.costs import CostModel
from repro.machine.machine import Machine, MachineResult
from repro.machine.runtime_iface import BaseRuntime
from repro.machine.threads import Thread, ThreadState
from repro.machine.watchpoints import (
    ARCH_SURVEY,
    AccessKind,
    DebugRegisterFile,
    WatchpointSlot,
)

__all__ = [
    "ARCH_SURVEY",
    "AccessKind",
    "BaseRuntime",
    "CostModel",
    "DebugRegisterFile",
    "Machine",
    "MachineResult",
    "Thread",
    "ThreadState",
    "WatchpointSlot",
]
