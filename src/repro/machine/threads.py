"""Thread model."""

import enum

from repro.compiler.bytecode import NUM_REGS
from repro.machine.memory import Memory


class ThreadState(enum.Enum):
    RUNNABLE = "runnable"
    RUNNING = "running"
    SLEEPING = "sleeping"          # sleep() or bug-finding pause
    BLOCKED_LOCK = "blocked_lock"
    BLOCKED_JOIN = "blocked_join"
    BLOCKED_WPSYNC = "blocked_wpsync"  # waiting for cross-core watchpoint sync
    SUSPENDED = "suspended"        # suspended by Kivati (remote thread)
    DONE = "done"


class Frame:
    """One call-stack frame (register window)."""

    __slots__ = ("return_pc", "saved_regs", "result_reg", "saved_fp", "saved_sp")

    def __init__(self, return_pc, saved_regs, result_reg, saved_fp, saved_sp):
        self.return_pc = return_pc
        self.saved_regs = saved_regs
        self.result_reg = result_reg
        self.saved_fp = saved_fp
        self.saved_sp = saved_sp


class Thread:
    """A simulated thread of execution."""

    __slots__ = (
        "tid",
        "regs",
        "pc",
        "sp",
        "fp",
        "frames",
        "state",
        "parent",
        "live_children",
        "rng_state",
        "wake_time",
        "suspend_info",
        "core_affinity",
        "last_core",
        "instr_count",
    )

    def __init__(self, tid, entry_pc, parent=None, seed=0):
        self.tid = tid
        self.regs = [0] * NUM_REGS
        self.pc = entry_pc
        self.sp = Memory.stack_base(tid)
        self.fp = self.sp
        self.frames = []
        self.state = ThreadState.RUNNABLE
        self.parent = parent
        self.live_children = 0
        # splitmix-style tempering: xorshift streams seeded from nearby
        # values are correlated, which would synchronize the random
        # decisions of sibling threads
        z = ((seed & 0xFFFF) << 16 | (tid & 0xFFFF)) & 0xFFFFFFFF
        z = (z + 0x9E3779B9) & 0xFFFFFFFF
        z ^= z >> 16
        z = (z * 0x85EBCA6B) & 0xFFFFFFFF
        z ^= z >> 13
        z = (z * 0xC2B2AE35) & 0xFFFFFFFF
        z ^= z >> 16
        self.rng_state = z or 0x9E3779B9
        self.wake_time = None
        self.suspend_info = None
        self.core_affinity = None
        self.last_core = None
        self.instr_count = 0

    @property
    def call_depth(self):
        return len(self.frames)

    def next_rand(self, bound):
        """Deterministic per-thread xorshift PRNG."""
        x = self.rng_state or 0x9E3779B9
        x ^= (x << 13) & 0xFFFFFFFF
        x ^= x >> 17
        x ^= (x << 5) & 0xFFFFFFFF
        self.rng_state = x
        if bound <= 0:
            return 0
        return x % bound

    def is_blocked(self):
        return self.state in (
            ThreadState.SLEEPING,
            ThreadState.BLOCKED_LOCK,
            ThreadState.BLOCKED_JOIN,
            ThreadState.BLOCKED_WPSYNC,
            ThreadState.SUSPENDED,
        )

    def __repr__(self):
        return "Thread(tid=%d, pc=%d, state=%s)" % (self.tid, self.pc, self.state.value)
