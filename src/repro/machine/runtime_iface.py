"""Interface between the machine and an instrumentation runtime.

The machine delegates every Kivati annotation instruction and every
watchpoint trap to the attached runtime. A runtime method returns the
extra simulated cost in nanoseconds it consumed on the current core; side
effects (blocking threads, arming watchpoints, scheduling timeouts) happen
through the machine's public API.

Three runtimes implement this interface:

- :class:`repro.runtime.userlib.KivatiRuntime` — the real system,
- :class:`repro.baselines.avio.AvioLikeRuntime` — software per-access
  instrumentation baseline,
- the default :class:`BaseRuntime` — inert (vanilla runs).
"""


class BaseRuntime:
    """No-op runtime used for vanilla (uninstrumented) runs."""

    #: When True, the machine calls :meth:`on_memory_access` for every
    #: data-memory access. Expensive; only baselines enable it.
    wants_all_accesses = False

    def attach(self, machine):
        """Called once when the machine is constructed."""
        self.machine = machine

    def on_begin_atomic(self, core, thread, ar_id, addr):
        """Handle a begin_atomic annotation; returns cost in ns."""
        return 0

    def on_end_atomic(self, core, thread, ar_id, second_is_write):
        """Handle an end_atomic annotation. ``second_is_write`` is the
        second local access type passed by the annotation (paper API).
        Returns cost in ns."""
        return 0

    def on_clear_ar(self, core, thread):
        """Handle a clear_ar annotation; returns cost in ns."""
        return 0

    def on_shadow_store(self, core, thread, ar_id, addr):
        """Handle the replicated first-local-write store; returns cost."""
        return 0

    def on_watchpoint_trap(self, core, thread, after_pc, hit_slots, accesses):
        """Handle a debug trap. ``after_pc`` is the committed-instruction
        successor pc (all the hardware reports on x86); ``hit_slots`` are
        the DR6-style slot indices; ``accesses`` is the (addr, is_write)
        list the instruction performed, available to trap-before hardware
        models only. Returns cost in ns."""
        return 0

    def on_kernel_entry(self, core, thread):
        """Called on every kernel entry (syscall, trap, timer interrupt);
        the opportunistic point for lazy cross-core watchpoint sync."""
        return 0

    def on_memory_access(self, core, thread, addr, is_write):
        """Per-access hook (only if wants_all_accesses); returns cost."""
        return 0

    def on_thread_exit(self, core, thread):
        """Called when a thread finishes."""
        return 0

    def on_run_end(self, machine):
        """Called once when the machine halts."""
