"""The simulated multicore machine.

A discrete-event loop drives per-core nanosecond clocks: the core with the
smallest local clock executes the next instruction of its current thread,
paying costs from the CostModel. Timer events (sleeps, Kivati timeouts,
bug-finding pauses) live in a global event queue and fire when simulated
time reaches them.

Watchpoint semantics: before executing a watchable instruction the machine
computes its (address, is_write) access list from the current register
state. With trap-after hardware (x86, the default) the instruction commits
first and the trap handler is then invoked with only the *after* program
counter and the hit slot indices — exactly what real x86 debug hardware
reports — so the kernel must use the pre-processed memory map to find and
undo the access. With ``trap_before=True`` (SPARC-style) the handler runs
before the access commits.
"""

import heapq
import time
from collections import deque

from repro.compiler.bytecode import Op
from repro.errors import (
    DeadlockError,
    DivideByZero,
    MachineError,
    MemoryFault,
    StackOverflow,
    StepLimitExceeded,
)
from repro.machine.costs import CostModel
from repro.machine.memory import Memory
from repro.machine.runtime_iface import BaseRuntime
from repro.machine.threads import Frame, Thread, ThreadState
from repro.machine.watchpoints import DebugRegisterFile


class Core:
    """One simulated CPU core."""

    __slots__ = ("index", "dr", "thread", "clock", "quantum_end", "last_tid",
                 "instr_count", "next_tick")

    def __init__(self, index, num_watchpoints):
        self.index = index
        self.dr = DebugRegisterFile(num_watchpoints)
        self.thread = None
        self.clock = 0
        self.quantum_end = 0
        self.last_tid = None
        self.instr_count = 0
        self.next_tick = 0


class MachineResult:
    """Summary of one program execution."""

    __slots__ = ("time_ns", "output", "instr_count", "deadlocked", "threads",
                 "kernel_entries", "fault", "final_globals")

    def __init__(self, time_ns, output, instr_count, deadlocked, threads,
                 kernel_entries, fault=None, final_globals=None):
        self.time_ns = time_ns
        self.output = output
        self.instr_count = instr_count
        self.deadlocked = deadlocked
        self.threads = threads
        self.kernel_entries = kernel_entries
        self.fault = fault
        # name -> value snapshot of the program's global variables at
        # halt; the chaos suite compares this against a fault-free run
        self.final_globals = final_globals if final_globals is not None else {}

    @property
    def time_seconds(self):
        return self.time_ns / 1e9

    def __repr__(self):
        return "MachineResult(time=%.3fms, instrs=%d, threads=%d%s)" % (
            self.time_ns / 1e6,
            self.instr_count,
            self.threads,
            ", DEADLOCK" if self.deadlocked else "",
        )


class Machine:
    """Executes a compiled program on simulated multicore hardware."""

    def __init__(self, program, num_cores=2, num_watchpoints=4, costs=None,
                 runtime=None, seed=0, trap_before=False, max_steps=200_000_000,
                 faults=None, journal=None, schedule_pin=None,
                 profiler=None):
        self.program = program
        self.instrs = program.instrs
        self.memory = Memory()
        for addr, value in program.global_inits.items():
            self.memory.words[addr] = value
        self.costs = costs or CostModel()
        self.runtime = runtime or BaseRuntime()
        self.trap_before = trap_before
        self.max_steps = max_steps
        self.seed = seed
        # optional repro.faults.FaultInjector; None keeps every injection
        # site on a single attribute-is-None predicate
        self.faults = faults
        # optional repro.journal.JournalRecorder: scheduler decisions are
        # journaled so a flagged run can be replayed pinned to the same
        # schedule; optional SchedulePin enforces a recorded schedule
        self.journal = journal
        self.schedule_pin = schedule_pin
        # optional repro.obs.VMProfiler: deterministic dispatch/watchpoint
        # counters; purely observational (no cost or scheduling effect).
        # Dispatch counting is per-pc into a flat list (aggregated to
        # per-op at export) so the per-instruction hook is a bare
        # ``counts[pc] += 1`` — Enum-keyed dicts hash through Python
        # code and would blow the obsbench overhead budget.
        self.profiler = profiler
        if profiler is not None:
            self._pc_counts = profiler.attach_program(self.instrs)
            self._wall_profiler = profiler if profiler.wall_time else None
        else:
            self._pc_counts = None
            self._wall_profiler = None
        # optional repro.machine.conflictsched.ConflictPolicy, installed
        # by the runtime's attach(); consulted (pure preview) before the
        # schedule pin so journal frames line up between record/replay
        self.conflict_policy = None

        self.cores = [Core(i, num_watchpoints) for i in range(num_cores)]
        for core in self.cores:
            core.next_tick = self.costs.timer_tick
        # Seeded scheduling jitter: real machines never align two cores'
        # instruction streams perfectly (cache misses, interrupts), so a
        # few nanoseconds of deterministic noise is added per context
        # switch. This makes thread interleavings vary with the seed,
        # which the bug-detection experiments (Table 6) rely on.
        self._jit_state = (seed * 1103515245 + 12345) & 0x7FFFFFFF
        self.threads = {}
        self._next_tid = 0
        self.run_queue = deque()
        self.lock_waiters = {}  # lock addr -> deque of tids
        self.output = []
        self.total_instrs = 0
        self.kernel_entries = 0
        self.deadlocked = False
        self.fault = None

        # scheduler-latency EMA (integer ns, deterministic): time between
        # a thread becoming runnable (wake_thread) and being placed on a
        # core. The pressure plane reads this to stretch suspension
        # timeouts and trip the backpressure watermark under overload.
        self.sched_latency_ema = 0
        self._wake_pending = {}

        # event queue: (time, seq, event_id); callbacks in _event_cbs
        self._events = []
        self._event_cbs = {}
        self._event_seq = 0

        main = Thread(self._alloc_tid(), program.entry(), parent=None, seed=seed)
        self.threads[main.tid] = main
        self.run_queue.append(main.tid)
        # tid -> root function name (the conflict scheduler's candidate
        # footprints come from the function a thread was spawned into)
        self.thread_funcs = {main.tid: "main"}

        self.runtime.attach(self)

    # ------------------------------------------------------------------
    # public API used by runtimes
    # ------------------------------------------------------------------

    def now(self):
        """Current simulated time: clock of the earliest core."""
        return min(core.clock for core in self.cores)

    def read_raw(self, addr):
        """Kernel-mode memory read (no watchpoint semantics)."""
        return self.memory.read(addr)

    def write_raw(self, addr, value):
        """Kernel-mode memory write (no watchpoint semantics) — used by
        the undo engine to roll back a remote access."""
        self.memory.write(addr, value)

    def schedule_event(self, time, callback):
        """Schedule ``callback(machine)`` at simulated ``time``; returns an
        event id usable with :meth:`cancel_event`."""
        self._event_seq += 1
        eid = self._event_seq
        self._event_cbs[eid] = callback
        heapq.heappush(self._events, (time, eid))
        return eid

    def cancel_event(self, eid):
        self._event_cbs.pop(eid, None)

    def block_current(self, core, state, wake_time=None, retry_instr=False):
        """Block the thread currently running on ``core``.

        ``retry_instr`` rolls the pc back one instruction so the thread
        re-executes it on wakeup (used when suspending a remote thread at
        its begin_atomic, and when rolling back a trapped access).
        """
        thread = core.thread
        if thread is None:
            raise MachineError("no thread running on core %d" % core.index)
        if retry_instr:
            thread.pc -= 1
        thread.state = state
        thread.wake_time = wake_time
        core.thread = None
        if wake_time is not None:
            tid = thread.tid
            self.schedule_event(wake_time, lambda m: m._timed_wake(tid))

    def block_thread_object(self, thread, state):
        """Block a thread that is not currently on a core (rare)."""
        thread.state = state

    def wake_thread(self, tid):
        """Make a blocked thread runnable again."""
        thread = self.threads.get(tid)
        if thread is None or thread.state in (ThreadState.DONE, ThreadState.RUNNABLE,
                                              ThreadState.RUNNING):
            return False
        thread.state = ThreadState.RUNNABLE
        thread.wake_time = None
        self.run_queue.append(tid)
        self._wake_pending[tid] = self.now()
        return True

    def _timed_wake(self, tid):
        thread = self.threads.get(tid)
        if thread is not None and thread.state == ThreadState.SLEEPING:
            self.wake_thread(tid)

    def set_pc(self, tid, pc):
        self.threads[tid].pc = pc

    def kernel_entry(self, core, thread=None):
        """Record a kernel entry on ``core`` (syscall/trap/interrupt) and
        give the runtime its opportunistic cross-core sync point."""
        self.kernel_entries += 1
        self.runtime.on_kernel_entry(core, thread if thread is not None else core.thread)

    def live_threads(self):
        return [t for t in self.threads.values() if t.state != ThreadState.DONE]

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------

    def _alloc_tid(self):
        tid = self._next_tid
        self._next_tid += 1
        return tid

    def _jitter(self):
        self._jit_state = (self._jit_state * 1103515245 + 12345) & 0x7FFFFFFF
        return (self._jit_state >> 16) & 0x1F

    def _spawn(self, parent, func_index, nargs):
        image = self.program.func_by_index[func_index]
        tid = self._alloc_tid()
        if tid >= 256:
            raise MachineError("too many threads (max 256 per run)")
        child = Thread(tid, image.entry, parent=parent.tid, seed=self.seed)
        for i in range(nargs):
            child.regs[i] = parent.regs[i]
        parent.live_children += 1
        self.threads[child.tid] = child
        self.run_queue.append(child.tid)
        self.thread_funcs[child.tid] = image.name
        return child

    def _thread_exit(self, core, thread):
        thread.state = ThreadState.DONE
        core.thread = None
        if thread.parent is not None:
            parent = self.threads[thread.parent]
            parent.live_children -= 1
            if parent.state == ThreadState.BLOCKED_JOIN and parent.live_children == 0:
                self.wake_thread(parent.tid)
        self.runtime.on_thread_exit(core, thread)

    def _schedule(self, core):
        """Pick the next runnable thread for ``core``; returns True if one
        was placed."""
        tid = None
        choice = None
        if self.conflict_policy is not None:
            # pure preview: consulted before the pin in both recording
            # and replaying runs so its csched frames line up; the queue
            # is only mutated below (record) or by the pin (replay)
            choice = self.conflict_policy.preview(self, core)
            if choice is not None and not isinstance(choice, int):
                # STALL: idle this core one stall quantum so a
                # conflicting atomic region on another core can close;
                # deterministic in replay too (the preview re-decides
                # identically, and no sched frame was recorded here)
                core.clock += self.costs.conflict_stall
                return False
        if self.schedule_pin is not None:
            # replay: prefer the thread the recorded run scheduled at
            # this decision point (removed from the run queue by select)
            tid = self.schedule_pin.select(self, core)
        elif choice is not None:
            # first occurrence — the same entry SchedulePin.select
            # deletes when it replays the journaled frame
            self.run_queue.remove(choice)
            tid = choice
        if tid is None:
            while self.run_queue:
                cand = self.run_queue.popleft()
                if self.threads[cand].state != ThreadState.RUNNABLE:
                    continue
                tid = cand
                break
        if tid is None:
            return False
        thread = self.threads[tid]
        woke = self._wake_pending.pop(tid, None)
        if woke is not None:
            sample = core.clock - woke
            if sample < 0:
                sample = 0
            self.sched_latency_ema = (3 * self.sched_latency_ema
                                      + sample) // 4
        thread.state = ThreadState.RUNNING
        thread.last_core = core.index
        core.thread = thread
        core.quantum_end = core.clock + self.costs.quantum
        if self.journal is not None:
            self.journal.emit(core.clock, tid, "sched", core=core.index,
                              pc=thread.pc)
        if core.last_tid != tid:
            core.clock += self.costs.context_switch + self._jitter()
            core.last_tid = tid
            self.kernel_entry(core, thread)
        else:
            # returning from the idle loop is a kernel exit as well —
            # the core adopts current watchpoint state without a
            # context-switch charge
            self.runtime.on_kernel_entry(core, thread)
        return True

    def _fire_due_events(self, now):
        fired = False
        while self._events and self._events[0][0] <= now:
            _, eid = heapq.heappop(self._events)
            cb = self._event_cbs.pop(eid, None)
            if cb is not None:
                cb(self)
                fired = True
        return fired

    def _next_event_time(self):
        while self._events and self._events[0][1] not in self._event_cbs:
            heapq.heappop(self._events)
        return self._events[0][0] if self._events else None

    def run(self, raise_on_deadlock=False):
        """Run the program to completion; returns a MachineResult."""
        steps = 0
        try:
            while True:
                if all(t.state == ThreadState.DONE for t in self.threads.values()):
                    break
                core = min(self.cores, key=lambda c: c.clock)
                if self._fire_due_events(core.clock):
                    continue
                if core.thread is None or core.thread.state != ThreadState.RUNNING:
                    if core.thread is not None:
                        core.thread = None
                    if not self._schedule(core):
                        # an idle core sits in the kernel idle loop: it
                        # adopts watchpoint state and lets the runtime
                        # release cross-core sync waiters
                        self.runtime.on_kernel_entry(core, None)
                        if self.run_queue:
                            continue
                        if not self._idle_advance(core):
                            self.deadlocked = True
                            if raise_on_deadlock:
                                raise DeadlockError(
                                    "all threads blocked; states: %s"
                                    % {t.tid: t.state.value
                                       for t in self.live_threads()}
                                )
                            break
                        continue
                wall = self._wall_profiler
                if wall is not None:
                    # attribute host time to the about-to-run opcode here
                    # so _execute's hook stays a bare dict increment
                    pc = core.thread.pc
                    if 0 <= pc < len(self.instrs):
                        wall._last_op = self.instrs[pc].op
                    t0 = time.perf_counter_ns()
                    self._execute(core)
                    wall.add_wall_ns(time.perf_counter_ns() - t0)
                else:
                    self._execute(core)
                steps += 1
                if steps >= self.max_steps:
                    raise StepLimitExceeded(
                        "exceeded %d instructions" % self.max_steps
                    )
        except (DivideByZero, StackOverflow, MemoryFault) as exc:
            # A program-level crash: several corpus bugs crash the victim
            # application when the violation manifests. Record and stop.
            self.fault = exc
        self.runtime.on_run_end(self)
        end_time = max(core.clock for core in self.cores)
        words = self.memory.words
        final_globals = {
            name: words.get(addr, 0)
            for name, addr in self.program.global_addrs.items()
        }
        return MachineResult(
            time_ns=end_time,
            output=self.output,
            instr_count=self.total_instrs,
            deadlocked=self.deadlocked,
            threads=len(self.threads),
            kernel_entries=self.kernel_entries,
            fault=self.fault,
            final_globals=final_globals,
        )

    def _idle_advance(self, core):
        """Advance an idle core's clock to the next possible activity.
        Returns False if the whole machine is stuck (deadlock)."""
        candidates = []
        ev = self._next_event_time()
        if ev is not None:
            candidates.append(ev)
        for other in self.cores:
            if other is not core and other.thread is not None:
                candidates.append(other.clock + 1)
        if self.run_queue:
            candidates.append(core.clock + 1)
        if not candidates:
            return False
        core.clock = max(core.clock + 1, min(candidates))
        return True

    # ------------------------------------------------------------------
    # instruction execution
    # ------------------------------------------------------------------

    def _execute(self, core):
        thread = core.thread
        instrs = self.instrs
        pc = thread.pc
        if pc < 0 or pc >= len(instrs):
            raise MachineError("pc out of range: %d (tid %d)" % (pc, thread.tid))
        instr = instrs[pc]
        op = instr.op
        counts = self._pc_counts
        if counts is not None:
            counts[pc] += 1
        regs = thread.regs
        costs = self.costs
        cost = costs.instr
        accesses = None  # list of (addr, is_write) for watchable ops

        # ---- pre-compute watchable accesses (addresses derive from regs) --
        if op is Op.LD:
            accesses = ((regs[instr.b], False),)
        elif op is Op.ST:
            accesses = ((regs[instr.a], True),)
        elif op is Op.CPY:
            accesses = ((regs[instr.b], False), (regs[instr.a], True))
        elif op is Op.STPARAM:
            accesses = ((thread.fp - 1 - instr.a, True),)
        elif op is Op.LOCK:
            addr = regs[instr.a]
            if self.memory.read(addr) == 0:
                accesses = ((addr, False), (addr, True))
            else:
                accesses = ((addr, False),)
        elif op is Op.UNLOCK:
            accesses = ((regs[instr.a], True),)
        elif op is Op.CAS:
            addr = regs[instr.b]
            if self.memory.read(addr) == regs[instr.c]:
                accesses = ((addr, False), (addr, True))
            else:
                accesses = ((addr, False),)
        elif op is Op.AADD:
            addr = regs[instr.b]
            accesses = ((addr, False), (addr, True))
        elif op is Op.CALLIND:
            accesses = ((regs[instr.a], False),)

        # ---- trap-before hardware (SPARC-style ablation) ------------------
        if accesses is not None and self.trap_before:
            hits = self._check_watchpoints(core, thread, accesses)
            if hits and self.faults is not None and self.faults.fires(
                    "machine.trap.drop", core.clock,
                    tid=thread.tid, pc=pc):
                hits = ()
            if hits:
                cost += self.costs.trap
                cost += self.runtime.on_watchpoint_trap(
                    core, thread, None, hits, accesses
                )
                core.clock += cost
                # handler decides: if it suspended the thread, the access
                # never happened and the instruction re-executes on wake.
                if thread.state != ThreadState.RUNNING:
                    core.thread = None
                    return
                # otherwise fall through and commit normally

        # ---- commit -------------------------------------------------------
        thread.pc = pc + 1
        blocked = False
        retried = False

        if op is Op.LD:
            regs[instr.a] = self.memory.read(regs[instr.b])
            cost = costs.mem_instr
        elif op is Op.ST:
            self.memory.write(regs[instr.a], regs[instr.b])
            cost = costs.mem_instr
        elif op is Op.LI:
            regs[instr.a] = instr.b
        elif op is Op.MOV:
            regs[instr.a] = regs[instr.b]
        elif op is Op.ADD:
            regs[instr.a] = regs[instr.b] + regs[instr.c]
        elif op is Op.SUB:
            regs[instr.a] = regs[instr.b] - regs[instr.c]
        elif op is Op.MUL:
            regs[instr.a] = regs[instr.b] * regs[instr.c]
            cost = costs.mul_div
        elif op is Op.DIV:
            if regs[instr.c] == 0:
                raise DivideByZero("division by zero at %s"
                                   % self.program.location(pc))
            regs[instr.a] = regs[instr.b] // regs[instr.c]
            cost = costs.mul_div
        elif op is Op.MOD:
            if regs[instr.c] == 0:
                raise DivideByZero("modulo by zero at %s"
                                   % self.program.location(pc))
            regs[instr.a] = regs[instr.b] % regs[instr.c]
            cost = costs.mul_div
        elif op is Op.EQ:
            regs[instr.a] = 1 if regs[instr.b] == regs[instr.c] else 0
        elif op is Op.NE:
            regs[instr.a] = 1 if regs[instr.b] != regs[instr.c] else 0
        elif op is Op.LT:
            regs[instr.a] = 1 if regs[instr.b] < regs[instr.c] else 0
        elif op is Op.LE:
            regs[instr.a] = 1 if regs[instr.b] <= regs[instr.c] else 0
        elif op is Op.GT:
            regs[instr.a] = 1 if regs[instr.b] > regs[instr.c] else 0
        elif op is Op.GE:
            regs[instr.a] = 1 if regs[instr.b] >= regs[instr.c] else 0
        elif op is Op.AND:
            regs[instr.a] = 1 if (regs[instr.b] and regs[instr.c]) else 0
        elif op is Op.OR:
            regs[instr.a] = 1 if (regs[instr.b] or regs[instr.c]) else 0
        elif op is Op.NOT:
            regs[instr.a] = 0 if regs[instr.b] else 1
        elif op is Op.NEG:
            regs[instr.a] = -regs[instr.b]
        elif op is Op.JMP:
            thread.pc = instr.a
        elif op is Op.JZ:
            if regs[instr.a] == 0:
                thread.pc = instr.b
        elif op is Op.JNZ:
            if regs[instr.a] != 0:
                thread.pc = instr.b
        elif op is Op.LADDR:
            regs[instr.a] = thread.fp - 1 - instr.b
        elif op is Op.CALL:
            self._do_call(thread, instr.a, instr.b, instr.c, pc + 1)
            cost = costs.call
        elif op is Op.CALLIND:
            fidx = self.memory.read(regs[instr.a])
            if not (0 <= fidx < len(self.program.func_by_index)):
                raise MachineError(
                    "indirect call to bad function index %d at %s"
                    % (fidx, self.program.location(pc))
                )
            self._do_call(thread, fidx, 0, 0, pc + 1)
            cost = costs.call + costs.mem_instr
        elif op is Op.RET:
            cost = costs.call
            if not thread.frames:
                self._thread_exit(core, thread)
                core.clock += cost
                self.total_instrs += 1
                core.instr_count += 1
                return
            frame = thread.frames.pop()
            result = regs[0]
            thread.regs = frame.saved_regs
            thread.regs[frame.result_reg] = result
            regs = thread.regs
            thread.sp = frame.saved_sp
            thread.fp = frame.saved_fp
            thread.pc = frame.return_pc
        elif op is Op.ENTER:
            thread.sp -= 1
            self.memory.write(thread.sp, thread.fp)
            thread.fp = thread.sp
            thread.sp -= instr.a
            if thread.sp < Memory.stack_limit(thread.tid):
                raise StackOverflow("thread %d stack overflow" % thread.tid)
        elif op is Op.STPARAM:
            self.memory.write(thread.fp - 1 - instr.a, regs[instr.b])
            cost = costs.mem_instr
        elif op is Op.CPY:
            value = self.memory.read(regs[instr.b])
            self.memory.write(regs[instr.a], value)
            cost = costs.mem_instr * 2
        elif op is Op.SPAWN:
            self._spawn(thread, instr.a, instr.b)
            cost = costs.spawn
            self.kernel_entry(core, thread)
        elif op is Op.JOIN:
            cost = costs.syscall
            self.kernel_entry(core, thread)
            if thread.live_children > 0:
                self.block_current(core, ThreadState.BLOCKED_JOIN)
                blocked = True
        elif op is Op.LOCK:
            addr = regs[instr.a]
            if self.memory.read(addr) == 0:
                self.memory.write(addr, thread.tid + 1)
                cost = costs.lock_uncontended
            else:
                cost = costs.lock_kernel
                self.kernel_entry(core, thread)
                self.lock_waiters.setdefault(addr, deque()).append(thread.tid)
                self.block_current(core, ThreadState.BLOCKED_LOCK,
                                   retry_instr=True)
                blocked = True
                # the acquire will re-execute; deliver its trap then, when
                # the after-pc is meaningful
                retried = True
        elif op is Op.UNLOCK:
            addr = regs[instr.a]
            self.memory.write(addr, 0)
            waiters = self.lock_waiters.get(addr)
            if waiters:
                cost = costs.lock_kernel
                self.kernel_entry(core, thread)
                while waiters:
                    tid = waiters.popleft()
                    if self.wake_thread(tid):
                        break
            else:
                cost = costs.lock_uncontended
        elif op is Op.CAS:
            addr = regs[instr.b]
            old = self.memory.read(addr)
            if old == regs[instr.c]:
                self.memory.write(addr, regs[instr.d])
                regs[instr.a] = 1
            else:
                regs[instr.a] = 0
            cost = costs.lock_uncontended
        elif op is Op.AADD:
            addr = regs[instr.b]
            old = self.memory.read(addr)
            self.memory.write(addr, old + regs[instr.c])
            regs[instr.a] = old
            cost = costs.lock_uncontended
        elif op is Op.SLEEP:
            ns = max(0, regs[instr.a])
            cost = costs.syscall
            self.kernel_entry(core, thread)
            self.block_current(core, ThreadState.SLEEPING,
                               wake_time=core.clock + cost + ns)
            blocked = True
        elif op is Op.YIELD:
            cost = costs.syscall
            self.kernel_entry(core, thread)
            thread.state = ThreadState.RUNNABLE
            self.run_queue.append(thread.tid)
            core.thread = None
            blocked = True
        elif op is Op.OUT:
            self.output.append(regs[instr.a])
        elif op is Op.ALLOC:
            regs[instr.a] = self.memory.alloc(regs[instr.b])
            cost = costs.call
        elif op is Op.RAND:
            regs[instr.a] = thread.next_rand(regs[instr.b])
        elif op is Op.TID:
            regs[instr.a] = thread.tid
        elif op is Op.BEGINAT:
            cost = self.runtime.on_begin_atomic(core, thread, instr.a,
                                                regs[instr.b])
        elif op is Op.ENDAT:
            cost = self.runtime.on_end_atomic(core, thread, instr.a,
                                              instr.b == 1)
        elif op is Op.CLEARAR:
            cost = self.runtime.on_clear_ar(core, thread)
        elif op is Op.SHADOWST:
            cost = self.runtime.on_shadow_store(core, thread, instr.a,
                                                regs[instr.b])
        elif op is Op.HALT:
            self._thread_exit(core, thread)
            core.clock += cost
            self.total_instrs += 1
            core.instr_count += 1
            return
        else:
            raise MachineError("unimplemented op %s" % op)

        self.total_instrs += 1
        core.instr_count += 1
        thread.instr_count += 1

        # ---- periodic timer interrupt: a kernel entry on this core (the
        # opportunistic watchpoint-sync point interrupts provide) ----------
        if core.clock >= core.next_tick:
            tick = self.costs.timer_tick
            if self.faults is not None and self.faults.fires(
                    "machine.timer.jitter", core.clock, core=core.index):
                tick += self.faults.param("machine.timer.jitter", "jitter_ns",
                                          4 * tick)
            core.next_tick = core.clock + tick
            cost += self.costs.timer_tick_cost
            self.runtime.on_kernel_entry(core, thread)

        # ---- per-access baseline hook --------------------------------------
        if accesses is not None and self.runtime.wants_all_accesses:
            for addr, is_write in accesses:
                cost += self.runtime.on_memory_access(core, thread, addr,
                                                      is_write)

        core.clock += cost

        # ---- trap-after watchpoint delivery (x86) ---------------------------
        if accesses is not None and not self.trap_before and not retried:
            hits = self._check_watchpoints(core, thread, accesses)
            if hits:
                faults = self.faults
                if faults is not None and faults.fires(
                        "machine.trap.drop", core.clock,
                        tid=thread.tid, pc=thread.pc):
                    # trap lost in delivery: the access stays committed
                    # and the kernel never hears about it
                    pass
                else:
                    after_pc = thread.pc
                    core.clock += self.costs.trap
                    trap_cost = self.runtime.on_watchpoint_trap(
                        core, thread, after_pc, hits, accesses
                    )
                    core.clock += trap_cost
                    if (faults is not None
                            and faults.fires("machine.trap.duplicate",
                                             core.clock, tid=thread.tid,
                                             pc=after_pc)):
                        # spurious second delivery of the same trap; the
                        # kernel must dedup it
                        core.clock += self.costs.trap
                        core.clock += self.runtime.on_watchpoint_trap(
                            core, thread, after_pc, hits, accesses
                        )

        # ---- annotation handlers may have blocked the thread ---------------
        if thread.state != ThreadState.RUNNING and not blocked:
            if core.thread is thread:
                core.thread = None

        # ---- preemption ------------------------------------------------------
        if (core.thread is thread and thread.state == ThreadState.RUNNING
                and core.clock >= core.quantum_end and self.run_queue):
            thread.state = ThreadState.RUNNABLE
            self.run_queue.append(thread.tid)
            core.thread = None
            core.clock += self.costs.context_switch
            self.kernel_entry(core, thread)

    def _do_call(self, thread, func_index, nargs, result_reg, return_pc):
        image = self.program.func_by_index[func_index]
        frame = Frame(return_pc, thread.regs, result_reg, thread.fp, thread.sp)
        thread.frames.append(frame)
        if len(thread.frames) > 512:
            raise StackOverflow("thread %d call depth exceeded" % thread.tid)
        new_regs = [0] * len(thread.regs)
        for i in range(nargs):
            new_regs[i] = thread.regs[i]
        thread.regs = new_regs
        # push the return address so the kernel can recover call sites
        # (the CALLIND special case reads the top of stack)
        thread.sp -= 1
        self.memory.write(thread.sp, return_pc)
        thread.pc = image.entry

    def _check_watchpoints(self, core, thread, accesses):
        dr = core.dr
        slots = dr.slots
        hits = None
        tid = thread.tid
        for addr, is_write in accesses:
            for slot in slots:
                if slot.enabled and slot.matches(addr, is_write, tid):
                    if hits is None:
                        hits = []
                    if slot.index not in hits:
                        hits.append(slot.index)
        profiler = self.profiler
        if profiler is not None:
            profiler.wp_checks += 1
            profiler.wp_accesses += len(accesses)
            if hits:
                profiler.wp_hit_checks += 1
                profiler.wp_hit_slots += len(hits)
        return hits or ()
