"""Cost model translating simulated events into nanoseconds.

The paper's overhead numbers are dominated by kernel domain crossings
(Section 4.1: "The majority of the run-time overhead can be attributed to
entering the kernel during begin_atomic and end_atomic"). The defaults
below are calibrated to a ~2 GHz x86 machine of the paper's era: ~0.5 ns
per simple instruction, a few hundred ns per syscall round trip, ~1 µs to
service a debug trap.
"""


class CostModel:
    """All costs in simulated nanoseconds."""

    __slots__ = (
        "instr",
        "mem_instr",
        "mul_div",
        "call",
        "syscall",
        "trap",
        "context_switch",
        "conflict_stall",
        "userlib_check",
        "whitelist_check",
        "shadow_store",
        "lock_uncontended",
        "lock_kernel",
        "spawn",
        "quantum",
        "timer_tick",
        "timer_tick_cost",
    )

    def __init__(
        self,
        instr=1,
        mem_instr=2,
        mul_div=4,
        call=3,
        syscall=90,
        trap=450,
        context_switch=400,
        conflict_stall=300,
        userlib_check=6,
        whitelist_check=4,
        shadow_store=4,
        lock_uncontended=12,
        lock_kernel=600,
        spawn=4000,
        quantum=8_000,
        timer_tick=1_000,
        timer_tick_cost=25,
    ):
        self.instr = instr
        self.mem_instr = mem_instr
        self.mul_div = mul_div
        self.call = call
        self.syscall = syscall
        self.trap = trap
        self.context_switch = context_switch
        # conflict-aware scheduling: how long a core idles when
        # every runnable thread conflicts with an atomic region
        # open on another core (repro.machine.conflictsched)
        self.conflict_stall = conflict_stall
        self.userlib_check = userlib_check
        self.whitelist_check = whitelist_check
        self.shadow_store = shadow_store
        self.lock_uncontended = lock_uncontended
        self.lock_kernel = lock_kernel
        self.spawn = spawn
        self.quantum = quantum
        self.timer_tick = timer_tick
        self.timer_tick_cost = timer_tick_cost

    def copy(self, **overrides):
        kwargs = {name: getattr(self, name) for name in self.__slots__}
        kwargs.update(overrides)
        return CostModel(**kwargs)

    def __repr__(self):
        fields = ", ".join(
            "%s=%r" % (name, getattr(self, name)) for name in self.__slots__
        )
        return "CostModel(%s)" % fields
