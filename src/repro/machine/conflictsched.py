"""Conflict-aware machine scheduling (``KivatiConfig(conflict_sched=True)``).

A suspension or undo is Kivati paying at run time for a co-scheduling
decision the static conflict analysis could have vetoed: two threads
whose atomic regions touch the same shared words were placed on
different cores at the same time.  This policy sits in front of the
machine's FIFO run queue and, in PREVENTION mode, picks the first
runnable thread whose static footprint (:mod:`repro.analysis.footprint`)
does *not* intersect the footprints of the atomic regions currently
active on other cores — turning would-be suspensions and undos into
cheap scheduling decisions.

Determinism contract (the reason the policy can be on during replay):

- :meth:`ConflictPolicy.preview` is a pure function of the run queue,
  thread states, per-core running threads and the kernel's active-AR
  tables — it never mutates machine state.  ``Machine._schedule`` runs
  it *before* the schedule pin, in both recording and replaying runs,
  so the ``csched`` journal frames it emits line up frame-for-frame.
- In a recording run the machine removes the chosen tid from the run
  queue (first occurrence — exactly the entry the replaying
  :class:`repro.journal.replay.SchedulePin` deletes when it enforces
  the journaled ``sched`` frame), so the queue evolves identically.
- Every decision the policy influences is journaled through the
  ordinary ``sched`` frame; replay therefore stays pinned without any
  policy-specific machinery.

The policy is a heuristic, not a correctness mechanism: candidate
footprints over-approximate (active ARs plus the thread's whole root
function), and a bounded defer count forces FIFO order when every
candidate conflicts, so starvation is impossible and verdicts are
untouched — only *when* conflicting windows overlap changes.

When every runnable thread conflicts, the policy *stalls* the core for
one quantum instead of knowingly co-scheduling a conflicting thread.
Whether that pays depends on the workload's atomic-window length, so
the stall is adaptive: an episode whose whole stall budget burns
without the remote window closing (it ends in forced FIFO) counts as a
failure, and after :data:`STALL_FAILURE_LIMIT` failures stalling
self-disables for the rest of the run.  The adaptation is a pure
function of the decision history, so record and replay make identical
choices.
"""

from repro.analysis.footprint import Footprint
from repro.machine.threads import ThreadState

#: consecutive times one head-of-queue thread may be deferred before
#: the policy gives up and schedules it FIFO anyway
MAX_DEFERS = 4

#: stall episodes that may end in forced FIFO (the remote window
#: outlived the whole stall budget) before stalling self-disables for
#: the rest of the run — on workloads with long atomic windows a stall
#: only delays the inevitable and perturbs the schedule for nothing
STALL_FAILURE_LIMIT = 3


class _Stall:
    """Sentinel: idle this core briefly instead of scheduling anyone —
    every runnable thread conflicts with an atomic region open on
    another core, so the cheapest move is to let that window close."""

    __slots__ = ()

    def __repr__(self):
        return "STALL"


STALL = _Stall()


class ConflictPolicy:
    """Deprioritizes runnable threads that conflict with running ARs."""

    __slots__ = ("footprints", "func_footprints", "kernel", "stats",
                 "max_defers", "blocking_ar_ids", "stall_enabled",
                 "_defers", "_fp_cache", "_stalled", "_stall_failures")

    def __init__(self, footprints, func_footprints, kernel, stats,
                 max_defers=MAX_DEFERS, blocking_ar_ids=frozenset()):
        self.footprints = footprints or {}
        self.func_footprints = func_footprints or {}
        self.kernel = kernel
        self.stats = stats
        self.max_defers = max_defers
        # ARs whose span contains a potentially blocking call (the W004
        # analysis): a stall waits for the remote window to close, and
        # a blocked window may never close within any stall budget
        self.blocking_ar_ids = frozenset(blocking_ar_ids)
        # per-run static gate: when *most* atomic regions can block,
        # windows routinely outlive any stall budget and stalling only
        # perturbs the schedule — restrict the policy to reordering
        n_ars = len(self.footprints)
        n_blocking = len(self.blocking_ar_ids & frozenset(self.footprints))
        self.stall_enabled = n_ars == 0 or 2 * n_blocking < n_ars
        self._defers = {}  # tid -> consecutive times deferred at head
        # root-function footprints never change mid-run; cache the
        # per-thread candidate base to keep preview cheap
        self._fp_cache = {}
        # adaptive stall: tids with an open stall episode, and how many
        # episodes ended in forced FIFO (= the stall bought nothing)
        self._stalled = set()
        self._stall_failures = 0

    # -- footprint lookups ---------------------------------------------

    def _active_footprint(self, tid):
        """Union of the footprints of ``tid``'s currently-active ARs."""
        table = self.kernel.ar_tables.get(tid)
        if not table:
            return Footprint.EMPTY
        fp = Footprint.EMPTY
        for ar_id in table:
            ar_fp = self.footprints.get(ar_id)
            if ar_fp is not None:
                fp = fp.union(ar_fp)
        return fp

    def _candidate_footprint(self, machine, tid):
        """What ``tid`` may touch if scheduled now: its active ARs plus
        everything its root function can reach (the thread's future)."""
        base = self._fp_cache.get(tid)
        if base is None:
            func = machine.thread_funcs.get(tid)
            base = self.func_footprints.get(func, Footprint.EMPTY)
            self._fp_cache[tid] = base
        return base.union(self._active_footprint(tid))

    # -- the decision --------------------------------------------------

    def preview(self, machine, core):
        """Choose the next tid for ``core`` without touching the queue.

        Returns the chosen tid, the :data:`STALL` sentinel (idle the
        core one stall quantum), or None when nothing is runnable.  Pure
        with respect to machine state; policy-internal defer counters
        and stats advance deterministically from the same inputs in
        recording and replaying runs alike.
        """
        candidates = []
        seen = set()
        threads = machine.threads
        for tid in machine.run_queue:
            if tid in seen:
                continue
            thread = threads.get(tid)
            if thread is None or thread.state != ThreadState.RUNNABLE:
                continue
            seen.add(tid)
            candidates.append(tid)
        if not candidates:
            return None
        head = candidates[0]
        if len(candidates) == 1:
            self._stalled.discard(head)
            self._defers.pop(head, None)
            return head
        # only engage when the machine is oversubscribed: with a core
        # available for every live thread, everything gets co-scheduled
        # regardless of queue order, and deferring would merely idle
        # hardware (it also keeps the one-core-per-thread detection
        # configs bit-identical with the policy installed)
        live = 0
        for thread in threads.values():
            if thread.state in (ThreadState.RUNNABLE, ThreadState.RUNNING):
                live += 1
        if live <= len(machine.cores):
            self._stalled.discard(head)
            self._defers.pop(head, None)
            return head

        running = Footprint.EMPTY
        remote_blocking = False
        for other in machine.cores:
            if other is core or other.thread is None:
                continue
            tid = other.thread.tid
            running = running.union(self._active_footprint(tid))
            table = self.kernel.ar_tables.get(tid)
            if table and not self.blocking_ar_ids.isdisjoint(table):
                remote_blocking = True
        if running.is_empty():
            # no AR is open anywhere else: plain FIFO, and any stall
            # episode trivially resolved
            self._stalled.discard(head)
            self._defers.pop(head, None)
            return head

        if not self._candidate_footprint(machine, head).conflicts_with(
                running):
            # the head's conflict cleared; a stall episode that ends
            # here paid off (the remote window closed while we idled)
            self._stalled.discard(head)
            self._defers.pop(head, None)
            return head
        if self._defers.get(head, 0) >= self.max_defers:
            # the head has waited long enough; force FIFO order so a
            # persistently conflicting thread cannot starve
            if head in self._stalled:
                # the whole stall budget burned and the window is still
                # open: stalling does not fit this workload's AR shape
                self._stalled.discard(head)
                self._stall_failures += 1
            self.stats.conflict_forced_fifo += 1
            self._defers.pop(head, None)
            self._note(machine, core, head, forced=True)
            return head
        for tid in candidates[1:]:
            if not self._candidate_footprint(machine, tid).conflicts_with(
                    running):
                self.stats.conflict_sched_decisions += 1
                self.stats.conflict_defers += 1
                self._defers[head] = self._defers.get(head, 0) + 1
                self._note(machine, core, tid, over=head)
                return tid
        if not self.stall_enabled or remote_blocking:
            # stalling is statically off for this program (most of its
            # ARs can block), or a remote window spans a potentially
            # blocking call right now: idling this core may wait
            # forever, so co-schedule FIFO and let the kernel's
            # suspension machinery arbitrate
            self._defers.pop(head, None)
            return head
        if self._stall_failures >= STALL_FAILURE_LIMIT:
            # stalling kept failing on this run: plain FIFO from here on
            self._defers.pop(head, None)
            return head
        # every runnable thread conflicts: idle the core for one stall
        # quantum so the remote window can close, instead of scheduling
        # a thread that is likely to trap and suspend straight away
        self.stats.conflict_sched_decisions += 1
        self.stats.conflict_defers += 1
        self._defers[head] = self._defers.get(head, 0) + 1
        self._stalled.add(head)
        self._note(machine, core, head, stall=True)
        return STALL

    def _note(self, machine, core, tid, over=None, forced=False,
              stall=False):
        """Journal the deviation (identically in record and replay)."""
        if machine.journal is None:
            return
        payload = {"core": core.index}
        if forced:
            payload["forced"] = True
        elif stall:
            payload["stall"] = True
        else:
            payload["over"] = over
        machine.journal.emit(core.clock, tid, "csched", **payload)


__all__ = ["ConflictPolicy", "MAX_DEFERS", "STALL_FAILURE_LIMIT"]
