"""Conflict-aware machine scheduling (``KivatiConfig(conflict_sched=True)``).

A suspension or undo is Kivati paying at run time for a co-scheduling
decision the static conflict analysis could have vetoed: two threads
whose atomic regions touch the same shared words were placed on
different cores at the same time.  This policy sits in front of the
machine's FIFO run queue and, in PREVENTION mode, picks the first
runnable thread whose static footprint (:mod:`repro.analysis.footprint`)
does *not* intersect the footprints of the atomic regions currently
active on other cores — turning would-be suspensions and undos into
cheap scheduling decisions.

Determinism contract (the reason the policy can be on during replay):

- :meth:`ConflictPolicy.preview` is a pure function of the run queue,
  thread states, per-core running threads and the kernel's active-AR
  tables — it never mutates machine state.  ``Machine._schedule`` runs
  it *before* the schedule pin, in both recording and replaying runs,
  so the ``csched`` journal frames it emits line up frame-for-frame.
- In a recording run the machine removes the chosen tid from the run
  queue (first occurrence — exactly the entry the replaying
  :class:`repro.journal.replay.SchedulePin` deletes when it enforces
  the journaled ``sched`` frame), so the queue evolves identically.
- Every decision the policy influences is journaled through the
  ordinary ``sched`` frame; replay therefore stays pinned without any
  policy-specific machinery.

The policy is a heuristic, not a correctness mechanism: candidate
footprints over-approximate (active ARs plus the thread's whole root
function), and a bounded defer count forces FIFO order when every
candidate conflicts, so starvation is impossible and verdicts are
untouched — only *when* conflicting windows overlap changes.

When every runnable thread conflicts, the policy *stalls* the core for
one quantum instead of knowingly co-scheduling a conflicting thread.
Whether that pays depends on the workload's atomic-window shape, so
stalling runs on an adaptive per-workload *budget*:

- the starting budget comes from the static W004-blocking density —
  a program whose atomic regions frequently span potentially blocking
  calls gets little or no budget, because those windows routinely
  outlive any stall (this subsumes the old binary on/off gate);
- the budget starts at zero outright when the majority of the
  program's statically conflicting AR pairs are witnessed only by
  *coarse* variables — whole arrays standing in for element accesses
  (``a[k]`` collapses to ``a`` in a footprint).  Lock striping and
  per-thread slot arrays make such pairs phantom conflicts: the
  elements are usually disjoint at run time, so idling a core on that
  evidence buys nothing and merely perturbs the schedule;
- a stall *episode* (first stall for a queue head until that head is
  scheduled) is judged by what the machine's own pain counters do from
  the moment the core started idling until shortly *after* the head
  resumes (a probation window of a few scheduling decisions): the
  damage a bad stall causes — the resumed window overlapping a
  conflicting one and suspending or undoing — lands just after the
  episode closes, not during the idle itself, so episodes are judged
  on probation rather than at close;
- a failed episode (pain during idle or probation, or an episode that
  burned its whole defer allowance and ended in forced FIFO) shrinks
  the budget by one and counts ``conflict_stall_failures``; an episode
  that survives probation earns the budget back (capped at the
  starting value);
- at budget zero, stalling is off for the rest of the run and the
  policy is reordering-only.

The budget is a pure function of the decision history and the pain
counters, and a replay re-executes the run in full — so record and
replay make identical choices.
"""

from repro.analysis.footprint import Footprint
from repro.machine.threads import ThreadState

#: consecutive times one head-of-queue thread may be deferred before
#: the policy gives up and schedules it FIFO anyway
MAX_DEFERS = 4

#: starting stall budget for a program with no blocking atomic regions;
#: the budget tapers linearly with W004-blocking density and hits zero
#: at 50% (where the old binary gate used to switch stalling off)
STALL_BUDGET_MAX = 3

#: scheduling decisions a closed stall episode stays on probation: new
#: pain inside this window retroactively fails the episode (a bad
#: stall's damage lands when the delayed head resumes, not while the
#: core idles)
PROBATION_PREVIEWS = 2


class _Stall:
    """Sentinel: idle this core briefly instead of scheduling anyone —
    every runnable thread conflicts with an atomic region open on
    another core, so the cheapest move is to let that window close."""

    __slots__ = ()

    def __repr__(self):
        return "STALL"


STALL = _Stall()


class ConflictPolicy:
    """Deprioritizes runnable threads that conflict with running ARs."""

    __slots__ = ("footprints", "func_footprints", "kernel", "stats",
                 "max_defers", "blocking_ar_ids", "coarse_vars",
                 "initial_stall_budget", "stall_budget", "_defers",
                 "_fp_cache", "_stalled", "_episode_pain", "_probation")

    def __init__(self, footprints, func_footprints, kernel, stats,
                 max_defers=MAX_DEFERS, blocking_ar_ids=frozenset(),
                 coarse_vars=frozenset()):
        self.footprints = footprints or {}
        self.func_footprints = func_footprints or {}
        self.kernel = kernel
        self.stats = stats
        self.max_defers = max_defers
        # ARs whose span contains a potentially blocking call (the W004
        # analysis): a stall waits for the remote window to close, and
        # a blocked window may never close within any stall budget
        self.blocking_ar_ids = frozenset(blocking_ar_ids)
        # variables the footprint analysis tracks only at array
        # granularity (element accesses collapse to the base name)
        self.coarse_vars = frozenset(coarse_vars)
        # adaptive stall budget, seeded from static blocking density:
        # full at density 0, zero from density 0.5 up (where the old
        # binary gate used to switch stalling off)
        n_ars = len(self.footprints)
        n_blocking = len(self.blocking_ar_ids & frozenset(self.footprints))
        density = (n_blocking / n_ars) if n_ars else 0.0
        self.initial_stall_budget = max(
            0, int(round(STALL_BUDGET_MAX * (1.0 - 2.0 * density))))
        if self._phantom_conflict_majority():
            # most conflict evidence is whole-array stand-ins for
            # element accesses (lock striping, per-thread slots): the
            # windows a stall would wait out are usually disjoint at
            # run time, so never pay an idle core for them
            self.initial_stall_budget = 0
        self.stall_budget = self.initial_stall_budget
        self._defers = {}  # tid -> consecutive times deferred at head
        # root-function footprints never change mid-run; cache the
        # per-thread candidate base to keep preview cheap
        self._fp_cache = {}
        # open stall episodes: heads currently stalled for, and the
        # pain counter (suspensions+undos) when each episode opened
        self._stalled = set()
        self._episode_pain = {}
        # closed episodes still on probation: head -> (pain when the
        # episode opened, preview calls left in the window)
        self._probation = {}

    def _phantom_conflict_majority(self):
        """True when most statically conflicting AR pairs are witnessed
        only by coarse (array-granular) variables.

        Such a pair usually touches *different* elements at run time —
        the footprint just cannot say which — so its conflicts are
        phantoms of the analysis granularity, not of the program."""
        if not self.coarse_vars:
            return False
        pairs = phantom = 0
        ids = sorted(self.footprints)
        for i, a in enumerate(ids):
            fa = self.footprints[a]
            for b in ids[i + 1:]:
                fb = self.footprints[b]
                if not fa.conflicts_with(fb):
                    continue
                pairs += 1
                vars_ = fa.conflict_vars(fb)
                if (vars_ and vars_ <= self.coarse_vars
                        and not (fa.wild or fb.wild)):
                    phantom += 1
        return pairs > 0 and phantom * 2 > pairs

    # -- footprint lookups ---------------------------------------------

    def _active_footprint(self, tid):
        """Union of the footprints of ``tid``'s currently-active ARs."""
        table = self.kernel.ar_tables.get(tid)
        if not table:
            return Footprint.EMPTY
        fp = Footprint.EMPTY
        for ar_id in table:
            ar_fp = self.footprints.get(ar_id)
            if ar_fp is not None:
                fp = fp.union(ar_fp)
        return fp

    def _candidate_footprint(self, machine, tid):
        """What ``tid`` may touch if scheduled now: its active ARs plus
        everything its root function can reach (the thread's future)."""
        base = self._fp_cache.get(tid)
        if base is None:
            func = machine.thread_funcs.get(tid)
            base = self.func_footprints.get(func, Footprint.EMPTY)
            self._fp_cache[tid] = base
        return base.union(self._active_footprint(tid))

    # -- stall episodes ------------------------------------------------

    def _pain(self):
        """The machine's own cost signal: work lost to conflicts."""
        return self.stats.suspensions + self.stats.undos

    def _fail_episode(self):
        self.stall_budget -= 1
        self.stats.conflict_stall_failures += 1

    def _close_episode(self, head, failed=False):
        """End ``head``'s stall episode (if one is open).

        An episode that burned its whole defer allowance and ended in
        forced FIFO fails on the spot.  Every other close goes on
        *probation* instead of being judged immediately: a bad stall's
        damage — the delayed head resuming straight into a conflicting
        window and suspending or undoing — shows up in the pain
        counters just *after* the head is rescheduled, so the episode
        is only credited once :data:`PROBATION_PREVIEWS` further
        scheduling decisions pass without new pain since the episode
        opened (see :meth:`_tick_probation`)."""
        self._defers.pop(head, None)
        if head not in self._stalled:
            return
        self._stalled.discard(head)
        opened_at = self._episode_pain.pop(head, None)
        if failed:
            self._fail_episode()
        elif opened_at is not None:
            self._probation[head] = (opened_at, PROBATION_PREVIEWS)

    def _tick_probation(self):
        """Advance probation windows by one scheduling decision.

        Pain since an episode opened fails it retroactively; surviving
        the window earns back a point a failure cost (capped at the
        starting budget)."""
        if not self._probation:
            return
        pain = self._pain()
        expired = []
        for head, (opened_at, left) in self._probation.items():
            if pain > opened_at:
                self._fail_episode()
                expired.append(head)
            elif left <= 1:
                if 0 < self.stall_budget < self.initial_stall_budget:
                    self.stall_budget += 1
                expired.append(head)
            else:
                self._probation[head] = (opened_at, left - 1)
        for head in expired:
            del self._probation[head]

    # -- the decision --------------------------------------------------

    def preview(self, machine, core):
        """Choose the next tid for ``core`` without touching the queue.

        Returns the chosen tid, the :data:`STALL` sentinel (idle the
        core one stall quantum), or None when nothing is runnable.  Pure
        with respect to machine state; policy-internal defer counters
        and stats advance deterministically from the same inputs in
        recording and replaying runs alike.
        """
        self._tick_probation()
        candidates = []
        seen = set()
        threads = machine.threads
        for tid in machine.run_queue:
            if tid in seen:
                continue
            thread = threads.get(tid)
            if thread is None or thread.state != ThreadState.RUNNABLE:
                continue
            seen.add(tid)
            candidates.append(tid)
        if not candidates:
            return None
        head = candidates[0]
        if len(candidates) == 1:
            self._close_episode(head)
            return head
        # only engage when the machine is oversubscribed: with a core
        # available for every live thread, everything gets co-scheduled
        # regardless of queue order, and deferring would merely idle
        # hardware (it also keeps the one-core-per-thread detection
        # configs bit-identical with the policy installed)
        live = 0
        for thread in threads.values():
            if thread.state in (ThreadState.RUNNABLE, ThreadState.RUNNING):
                live += 1
        if live <= len(machine.cores):
            self._close_episode(head)
            return head

        running = Footprint.EMPTY
        remote_blocking = False
        for other in machine.cores:
            if other is core or other.thread is None:
                continue
            tid = other.thread.tid
            running = running.union(self._active_footprint(tid))
            table = self.kernel.ar_tables.get(tid)
            if table and not self.blocking_ar_ids.isdisjoint(table):
                remote_blocking = True
        if running.is_empty():
            # no AR is open anywhere else: plain FIFO; the remote
            # window closed, so any open episode resolves on its merits
            self._close_episode(head)
            return head

        if not self._candidate_footprint(machine, head).conflicts_with(
                running):
            # the head's conflict cleared; the episode closes and is
            # judged by whether pain accumulated while the core idled
            self._close_episode(head)
            return head
        if self._defers.get(head, 0) >= self.max_defers:
            # the head has waited long enough; force FIFO order so a
            # persistently conflicting thread cannot starve.  A stall
            # episode ending here burned its whole defer allowance with
            # the window still open — an unconditional failure
            self._close_episode(head, failed=True)
            self.stats.conflict_forced_fifo += 1
            self._note(machine, core, head, forced=True)
            return head
        for tid in candidates[1:]:
            if not self._candidate_footprint(machine, tid).conflicts_with(
                    running):
                self.stats.conflict_sched_decisions += 1
                self.stats.conflict_defers += 1
                self._defers[head] = self._defers.get(head, 0) + 1
                self._note(machine, core, tid, over=head)
                return tid
        if self.stall_budget <= 0 or remote_blocking:
            # the adaptive budget is exhausted (statically zero for
            # blocking-heavy programs, or drained by failed episodes),
            # or a remote window spans a potentially blocking call
            # right now: idling this core may wait forever, so
            # co-schedule FIFO and let the kernel's suspension
            # machinery arbitrate
            self._defers.pop(head, None)
            return head
        # every runnable thread conflicts: idle the core for one stall
        # quantum so the remote window can close, instead of scheduling
        # a thread that is likely to trap and suspend straight away
        self.stats.conflict_sched_decisions += 1
        self.stats.conflict_defers += 1
        self._defers[head] = self._defers.get(head, 0) + 1
        if head not in self._stalled:
            self._stalled.add(head)
            # a head re-stalling while its last episode is still on
            # probation folds into one longer episode: keep the older
            # pain reference so damage between the two is not excused
            prior = self._probation.pop(head, None)
            self._episode_pain[head] = (prior[0] if prior is not None
                                        else self._pain())
        self._note(machine, core, head, stall=True)
        return STALL

    def _note(self, machine, core, tid, over=None, forced=False,
              stall=False):
        """Journal the deviation (identically in record and replay)."""
        if machine.journal is None:
            return
        payload = {"core": core.index}
        if forced:
            payload["forced"] = True
        elif stall:
            payload["stall"] = True
        else:
            payload["over"] = over
        machine.journal.emit(core.clock, tid, "csched", **payload)


__all__ = ["ConflictPolicy", "MAX_DEFERS", "PROBATION_PREVIEWS",
           "STALL_BUDGET_MAX"]
