"""Per-core hardware debug registers (watchpoints).

Models the x86 DR0-DR3/DR7 facility: each core owns ``num_slots``
watchpoint slots (four on Intel and AMD), each configured with an address,
a size and the access kinds to trap on. Traps are delivered *after* the
triggering instruction commits ("type: After" in the paper's Table 1); a
``trap_before`` switch models SPARC-style hardware for ablation studies.

Cross-core consistency is the kernel's job (Section 3.2): the kernel keeps
one logical watchpoint state and cores adopt it lazily on kernel entry.
The hardware model here therefore exposes an ``epoch`` — the machine bumps
it whenever the logical state changes and each core records the epoch it
has synced to.
"""

from repro.minic.ast import AccessKind

#: Table 1 of the paper: survey of hardware watchpoint support.
ARCH_SURVEY = [
    {"arch": "x86", "support": True, "number": 4, "type": "After"},
    {"arch": "SPARC", "support": True, "number": 2, "type": "Before"},
    {"arch": "MIPS", "support": True, "number": 1, "type": "Depends on inst."},
    {"arch": "ARM", "support": True, "number": 2, "type": "After"},
    {"arch": "PowerPC", "support": True, "number": 1, "type": ""},
]

X86_NUM_WATCHPOINTS = 4


class WatchpointSlot:
    """Hardware view of one debug register pair (address + control bits)."""

    __slots__ = ("index", "enabled", "addr", "size", "watch_read",
                 "watch_write", "suppressed_tids")

    def __init__(self, index):
        self.index = index
        self.enabled = False
        self.addr = 0
        self.size = 1
        self.watch_read = False
        self.watch_write = False
        # Threads for which delivery is suppressed (third optimization of
        # Section 3.4: the kernel disables the watchpoint while the local
        # thread that owns the AR is running; modelled as a per-slot set
        # consulted at match time instead of per-context-switch rewrites).
        self.suppressed_tids = None

    def configure(self, addr, size, watch_read, watch_write, suppressed_tids=None):
        self.enabled = True
        self.addr = addr
        self.size = size
        self.watch_read = watch_read
        self.watch_write = watch_write
        self.suppressed_tids = suppressed_tids

    def disable(self):
        self.enabled = False
        self.suppressed_tids = None

    def matches(self, addr, is_write, tid):
        if not self.enabled:
            return False
        if not (self.addr <= addr < self.addr + self.size):
            return False
        if is_write and not self.watch_write:
            return False
        if not is_write and not self.watch_read:
            return False
        if self.suppressed_tids is not None and tid in self.suppressed_tids:
            return False
        return True


class DebugRegisterFile:
    """One core's set of watchpoint slots."""

    __slots__ = ("slots", "synced_epoch")

    def __init__(self, num_slots=X86_NUM_WATCHPOINTS):
        self.slots = [WatchpointSlot(i) for i in range(num_slots)]
        self.synced_epoch = 0

    def __len__(self):
        return len(self.slots)

    def any_enabled(self):
        for slot in self.slots:
            if slot.enabled:
                return True
        return False

    def check(self, addr, is_write, tid):
        """Return indices of slots hit by an access (the DR6 status bits)."""
        hits = []
        for slot in self.slots:
            if slot.matches(addr, is_write, tid):
                hits.append(slot.index)
        return hits

    def adopt(self, logical_slots, epoch, faults=None):
        """Copy the kernel's logical watchpoint state into this core
        (the lazy cross-core update of Section 3.2).

        With a fault injector attached, ``machine.dr.slot_fail`` makes
        one slot silently fail to arm — the hardware analog of a write
        to DR7 that doesn't take; the kernel's consistency check catches
        and re-arms it on a later kernel entry.
        """
        failed_index = None
        if faults is not None and faults.fires("machine.dr.slot_fail", 0,
                                               epoch=epoch):
            failed_index = (faults.fired_count("machine.dr.slot_fail") - 1) \
                % len(self.slots)
        for mine, theirs in zip(self.slots, logical_slots):
            mine.enabled = theirs.enabled and mine.index != failed_index
            mine.addr = theirs.addr
            mine.size = theirs.size
            mine.watch_read = theirs.watch_read
            mine.watch_write = theirs.watch_write
            mine.suppressed_tids = theirs.suppressed_tids
        self.synced_epoch = epoch

    def consistent_with(self, logical_slots):
        """Whether this core's hardware state matches the kernel's
        logical state (the degradation plane's resync check)."""
        for mine, theirs in zip(self.slots, logical_slots):
            if (mine.enabled != theirs.enabled
                    or mine.addr != theirs.addr
                    or mine.size != theirs.size
                    or mine.watch_read != theirs.watch_read
                    or mine.watch_write != theirs.watch_write
                    or mine.suppressed_tids != theirs.suppressed_tids):
                return False
        return True


__all__ = [
    "ARCH_SURVEY",
    "AccessKind",
    "DebugRegisterFile",
    "WatchpointSlot",
    "X86_NUM_WATCHPOINTS",
]
