"""Word-addressed shared memory."""

from repro.compiler.program import GLOBALS_BASE, HEAP_BASE, STACK_BASE, STACK_WORDS
from repro.errors import MemoryFault


class Memory:
    """Sparse word-addressed memory shared by all threads.

    Uninitialized words read as 0. Addresses below GLOBALS_BASE form a
    guard page: any access faults, which catches null-pointer dereferences
    in mini-C programs (several of the corpus bugs crash this way when the
    atomicity violation actually manifests).
    """

    __slots__ = ("words", "heap_next", "limit")

    def __init__(self):
        self.words = {}
        self.heap_next = HEAP_BASE
        self.limit = STACK_BASE + (1 << 22)

    def _check(self, addr):
        if addr < GLOBALS_BASE or addr >= self.limit:
            raise MemoryFault(addr)

    def read(self, addr):
        self._check(addr)
        return self.words.get(addr, 0)

    def write(self, addr, value):
        self._check(addr)
        self.words[addr] = value

    def alloc(self, nwords):
        """Bump-allocate ``nwords`` fresh heap words; returns base address."""
        if nwords <= 0:
            nwords = 1
        addr = self.heap_next
        self.heap_next += nwords
        if self.heap_next >= STACK_BASE:
            raise MemoryFault(addr, "heap exhausted")
        return addr

    @staticmethod
    def stack_base(tid):
        """Highest address (exclusive) of a thread's stack region."""
        return STACK_BASE + (tid + 1) * STACK_WORDS

    @staticmethod
    def stack_limit(tid):
        """Lowest valid address of a thread's stack region."""
        return STACK_BASE + tid * STACK_WORDS
