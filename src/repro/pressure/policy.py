"""Tunable knobs of the overload control plane.

All thresholds are expressed in simulated nanoseconds; benchmark configs
(repro.bench.scale) divide the OS-scale constants by SCALE the same way
they scale the suspension timeout, so a policy built for a real 10 ms
timeout works unchanged at bench scale once its *_ns fields are scaled.
"""

from repro.errors import ConfigError


class PressurePolicy:
    """Configuration of :class:`repro.pressure.plane.PressurePlane`.

    Component switches:

    - ``arbiter``: slot-pressure arbitration — on slot exhaustion a
      violation-history-weighted, LRU-tiebroken arbiter may preempt a
      quieter slot instead of failing the new AR open.
    - ``quarantine``: ARs that repeatedly trip the circuit breaker or
      blow the suspension timeout are quarantined into sampled
      monitoring (1-in-N entries, N adapted by AIMD) instead of running
      permanently fail-open.
    - ``admission``: begin_atomic sheds *monitoring* (never correctness)
      while the suspended-thread count or the measured scheduler latency
      sits above its watermark.
    - ``adaptive_timeout``: the suspension timeout stretches with
      measured scheduler latency so overloaded schedulers do not convert
      every suspension into a spurious timeout.
    """

    __slots__ = (
        "arbiter",
        "quarantine",
        "quarantine_after_trips",
        "sample_initial_n",
        "sample_max_n",
        "release_streak",
        "admission",
        "suspended_watermark",
        "latency_watermark_ns",
        "adaptive_timeout",
        "latency_ref_ns",
        "timeout_max_scale",
        "leak_age_ns",
        "leak_scan_ns",
        "max_history",
    )

    def __init__(self, arbiter=True, quarantine=True,
                 quarantine_after_trips=2, sample_initial_n=4,
                 sample_max_n=64, release_streak=3, admission=True,
                 suspended_watermark=8, latency_watermark_ns=1_000_000,
                 adaptive_timeout=True, latency_ref_ns=20_000,
                 timeout_max_scale=8, leak_age_ns=1_000_000,
                 leak_scan_ns=250_000, max_history=256):
        if quarantine_after_trips < 1:
            raise ConfigError("quarantine_after_trips must be >= 1")
        if not (1 <= sample_initial_n <= sample_max_n):
            raise ConfigError("need 1 <= sample_initial_n <= sample_max_n")
        if release_streak < 1:
            raise ConfigError("release_streak must be >= 1")
        if suspended_watermark < 1:
            raise ConfigError("suspended_watermark must be >= 1")
        if latency_watermark_ns < 1 or latency_ref_ns < 1:
            raise ConfigError("latency watermarks must be positive")
        if timeout_max_scale < 1:
            raise ConfigError("timeout_max_scale must be >= 1")
        if leak_age_ns < 1 or leak_scan_ns < 1:
            raise ConfigError("leak thresholds must be positive")
        if max_history < 1:
            raise ConfigError("max_history must be >= 1")
        self.arbiter = arbiter
        self.quarantine = quarantine
        self.quarantine_after_trips = quarantine_after_trips
        self.sample_initial_n = sample_initial_n
        self.sample_max_n = sample_max_n
        self.release_streak = release_streak
        self.admission = admission
        self.suspended_watermark = suspended_watermark
        self.latency_watermark_ns = latency_watermark_ns
        self.adaptive_timeout = adaptive_timeout
        self.latency_ref_ns = latency_ref_ns
        self.timeout_max_scale = timeout_max_scale
        self.leak_age_ns = leak_age_ns
        self.leak_scan_ns = leak_scan_ns
        self.max_history = max_history

    def copy(self, **overrides):
        kwargs = {name: getattr(self, name) for name in self.__slots__}
        kwargs.update(overrides)
        return PressurePolicy(**kwargs)

    def fleet_watermarks(self, workers):
        """Queue-depth watermarks for fleet-level backpressure
        (repro.fleet.supervisor), derived from the same signal this
        policy uses in-process: ``suspended_watermark`` is "how much
        queued-behind-the-plane work is tolerable per execution unit".

        Returns ``(shed_depth, reject_depth)`` in pending jobs: at
        ``shed_depth`` the supervisor sheds *monitoring* (per-job replay
        verification) first; only at ``reject_depth`` does it shed jobs
        themselves — the same monitoring-before-correctness ordering as
        in-process admission control.
        """
        per_worker = max(1, self.suspended_watermark)
        shed = per_worker * max(1, workers)
        return shed, 4 * shed

    def __repr__(self):
        on = [n for n in ("arbiter", "quarantine", "admission",
                          "adaptive_timeout") if getattr(self, n)]
        return "PressurePolicy(%s)" % ", ".join(on)
