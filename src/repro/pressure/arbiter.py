"""Slot-pressure arbitration.

When begin_atomic finds every watchpoint register in use, the seed
behavior was unconditional fail-open ("miss", Table 8). The arbiter
instead weighs the incoming AR against the current slot tenants: ARs
with a violation history are the ones worth a hardware watchpoint, so a
hot incoming AR may preempt a slot whose tenants never produced a
violation. Ties (equal priority) keep the incumbents and are broken in
the victim choice by LRU — among equally quiet slots the least recently
used one is offered up first.

Preemption is visible degradation, never silent: the victims become
zombies (their late end_atomic still records violations, flagged
unprevented), a DegradationRecord is filed for both outcomes, and every
decision is journaled.
"""


class SlotArbiter:
    """Violation-history-weighted, LRU-tiebroken slot arbitration."""

    __slots__ = ("viol_counts",)

    def __init__(self):
        #: ar_id -> violations recorded for that AR this run
        self.viol_counts = {}

    def note_violation(self, ar_id):
        self.viol_counts[ar_id] = self.viol_counts.get(ar_id, 0) + 1

    def priority(self, ar_id):
        """An AR's claim to a hardware slot: its violation history."""
        return self.viol_counts.get(ar_id, 0)

    def slot_priority(self, slot):
        """A slot defends itself with its hottest tenant."""
        return max((self.priority(ar.ar_id) for ar in slot.ars), default=0)

    def choose_victim(self, slots):
        """Pick the preemption candidate among ``slots``.

        Only plain monitoring slots are candidates: a slot with
        suspended threads is actively *preventing* and a containment
        slot is mid-rollback — preempting either would trade correctness
        for coverage, which the plane never does. Returns
        ``(slot, priority)`` or ``(None, None)``.
        """
        victim = None
        victim_key = None
        for slot in slots:
            if (not slot.enabled or slot.lazily_freed or slot.suspended
                    or slot.containment_owner is not None
                    or not slot.ars):
                continue
            key = (self.slot_priority(slot), slot.last_use_ns, slot.index)
            if victim_key is None or key < victim_key:
                victim = slot
                victim_key = key
        if victim is None:
            return None, None
        return victim, victim_key[0]
