"""Overload control plane (DESIGN.md §10).

Kivati's prevention guarantees hinge on scarce resources — 4 debug
registers per core, bounded AR tables, a 10 ms suspension timeout — and
the paper never asks what happens when a workload exhausts them. This
package answers: slot-pressure arbitration (who keeps a watchpoint when
demand exceeds supply), AR quarantine (sampled monitoring instead of
permanent fail-open), and admission control / adaptive timeouts driven
by measured scheduler latency. Monitoring is shed under pressure;
correctness never is.
"""

from repro.pressure.arbiter import SlotArbiter
from repro.pressure.plane import PressurePlane
from repro.pressure.policy import PressurePolicy
from repro.pressure.quarantine import QuarantineEntry, QuarantineManager

__all__ = ["PressurePlane", "PressurePolicy", "QuarantineEntry",
           "QuarantineManager", "SlotArbiter"]
