"""AR quarantine: sampled monitoring for pathologically hot regions.

The seed's circuit breaker fails an AR open for an exponentially growing
backoff window — under sustained pressure that converges to *zero*
detection coverage for exactly the regions most likely to harbor bugs.
Quarantine replaces the open-ended fail-open with a sampled tier: a
quarantined AR is still monitored 1-in-N of the time, with N adapted by
an AIMD rule on observed pressure (multiplicative increase when a
monitored entry times out or trips the breaker again, additive decrease
on every clean monitored end). When N has decayed back to 1 and a
streak of clean ends follows, the AR is released to full monitoring.

Every decision is a deterministic function of the entry count and the
pressure events, so replaying a journal reproduces the same sampling
choices without any extra recorded state.
"""


class QuarantineEntry:
    """Adaptive sampling state for one quarantined AR."""

    __slots__ = ("ar_id", "n", "entered_at", "entries", "monitored",
                 "skipped", "increases", "decreases", "clean_streak",
                 "monitored_since_increase", "released", "released_at")

    def __init__(self, ar_id, n, entered_at):
        self.ar_id = ar_id
        self.n = n
        self.entered_at = entered_at
        self.entries = 0
        self.monitored = 0
        self.skipped = 0
        self.increases = 0
        self.decreases = 0
        self.clean_streak = 0
        self.monitored_since_increase = 0
        self.released = False
        self.released_at = None

    @property
    def settled(self):
        """The AIMD loop reached a steady state: released, or at least
        one monitored entry happened after the last N increase (the AR
        is operating at its current sampling rate, not still climbing)."""
        return (self.released or self.increases == 0
                or self.monitored_since_increase > 0)

    def __repr__(self):
        state = "released" if self.released else "n=%d" % self.n
        return "QuarantineEntry(ar=%d, %s, %d/%d monitored)" % (
            self.ar_id, state, self.monitored, self.entries)


class QuarantineManager:
    """Tracks pressure strikes per AR and the quarantined population."""

    __slots__ = ("policy", "strikes", "entries")

    def __init__(self, policy):
        self.policy = policy
        #: ar_id -> pressure events (breaker trips + suspension
        #: timeouts) seen while *not* quarantined
        self.strikes = {}
        #: ar_id -> QuarantineEntry (kept after release for reporting)
        self.entries = {}

    def is_quarantined(self, ar_id):
        entry = self.entries.get(ar_id)
        return entry is not None and not entry.released

    def active(self):
        return [e for e in self.entries.values() if not e.released]

    def admit(self, ar_id):
        """Sampling decision for a begin_atomic of a quarantined AR:
        ``"monitor"`` for the 1-in-N monitored entries, ``"skip"``
        otherwise. Caller must have checked :meth:`is_quarantined`."""
        entry = self.entries[ar_id]
        entry.entries += 1
        if (entry.entries - 1) % entry.n == 0:
            entry.monitored += 1
            entry.monitored_since_increase += 1
            return "monitor"
        entry.skipped += 1
        return "skip"

    def note_pressure(self, ar_id, now):
        """A breaker trip or suspension timeout hit ``ar_id``.

        Returns ``("enter", n)`` when this strike quarantines the AR,
        ``("increase", n)`` when an already-quarantined AR takes the
        multiplicative hit, or None while the AR is still below the
        strike threshold.
        """
        entry = self.entries.get(ar_id)
        if entry is not None and not entry.released:
            grown = min(entry.n * 2, self.policy.sample_max_n)
            entry.n = grown
            entry.increases += 1
            entry.monitored_since_increase = 0
            entry.clean_streak = 0
            return "increase", grown
        strikes = self.strikes.get(ar_id, 0) + 1
        self.strikes[ar_id] = strikes
        if strikes < self.policy.quarantine_after_trips:
            return None
        self.strikes[ar_id] = 0
        entry = QuarantineEntry(ar_id, self.policy.sample_initial_n, now)
        self.entries[ar_id] = entry
        return "enter", entry.n

    def note_clean_end(self, ar_id, now):
        """A monitored entry of a quarantined AR ended without pressure.

        Returns ``("release", 1)`` when the additive decrease has
        brought N to 1 and the clean streak clears the release bar,
        ``("decrease", n)`` for an ordinary additive step, or None for
        non-quarantined ARs.
        """
        entry = self.entries.get(ar_id)
        if entry is None or entry.released:
            return None
        if entry.n > 1:
            entry.n -= 1
            entry.decreases += 1
            return "decrease", entry.n
        entry.clean_streak += 1
        if entry.clean_streak >= self.policy.release_streak:
            entry.released = True
            entry.released_at = now
            return "release", 1
        return "decrease", 1

    @property
    def converged(self):
        """True when every quarantine entry has settled (acceptance
        criterion for the soak harness)."""
        return all(e.settled for e in self.entries.values())
