"""The per-run pressure plane: arbiter + quarantine + backpressure.

One PressurePlane instance lives for one protected run (like the
circuit breaker), shared by the user library and the kernel. It holds
only deterministic state — violation counts, quarantine sampling
counters, a bounded decision history — so two runs of the same
(program, config, seed) make identical pressure decisions, which is
what lets `kivati replay` reproduce them frame-for-frame.
"""

from repro.pressure.arbiter import SlotArbiter
from repro.pressure.policy import PressurePolicy
from repro.pressure.quarantine import QuarantineManager


class PressurePlane:
    """Overload control state for one protected run."""

    __slots__ = ("policy", "arbiter", "quarantine", "history",
                 "history_dropped")

    def __init__(self, policy=None):
        self.policy = policy if policy is not None else PressurePolicy()
        self.arbiter = SlotArbiter()
        self.quarantine = QuarantineManager(self.policy)
        #: bounded decision history (same discipline as the trace ring
        #: buffer: drop-on-full, count what was dropped) so long soaks
        #: cannot grow memory without bound
        self.history = []
        self.history_dropped = 0

    # ------------------------------------------------------------------
    # bounded history
    # ------------------------------------------------------------------

    def note(self, time_ns, component, action, **detail):
        if len(self.history) >= self.policy.max_history:
            self.history_dropped += 1
            return
        self.history.append((time_ns, component, action,
                             tuple(sorted(detail.items()))))

    # ------------------------------------------------------------------
    # arbiter facade
    # ------------------------------------------------------------------

    def note_violation(self, ar_id):
        self.arbiter.note_violation(ar_id)

    def priority(self, ar_id):
        return self.arbiter.priority(ar_id)

    def choose_victim(self, slots):
        return self.arbiter.choose_victim(slots)

    # ------------------------------------------------------------------
    # quarantine facade
    # ------------------------------------------------------------------

    def is_quarantined(self, ar_id):
        return self.policy.quarantine and self.quarantine.is_quarantined(
            ar_id)

    def admit_quarantined(self, ar_id):
        return self.quarantine.admit(ar_id)

    def note_pressure(self, ar_id, now):
        if not self.policy.quarantine:
            return None
        action = self.quarantine.note_pressure(ar_id, now)
        if action is not None:
            self.note(now, "quarantine", action[0], ar=ar_id, n=action[1])
        return action

    def note_clean_end(self, ar_id, now):
        if not self.policy.quarantine:
            return None
        action = self.quarantine.note_clean_end(ar_id, now)
        if action is not None:
            self.note(now, "quarantine", action[0], ar=ar_id, n=action[1])
        return action

    # ------------------------------------------------------------------
    # backpressure: admission control + adaptive suspension timeout
    # ------------------------------------------------------------------

    def shed_reason(self, suspended_count, latency_ema_ns):
        """Non-None when begin_atomic admission control should shed this
        entry's monitoring: the returned string names the watermark that
        tripped."""
        if not self.policy.admission:
            return None
        if suspended_count >= self.policy.suspended_watermark:
            return "suspended-watermark"
        if latency_ema_ns >= self.policy.latency_watermark_ns:
            return "latency-watermark"
        return None

    def timeout_multiplier(self, latency_ema_ns):
        """Integer multiplier for the suspension timeout: 1 at nominal
        scheduler latency, growing linearly with the measured EMA up to
        ``timeout_max_scale``."""
        if not self.policy.adaptive_timeout:
            return 1
        scale = latency_ema_ns // self.policy.latency_ref_ns
        if scale < 1:
            return 1
        return min(int(scale) + 1, self.policy.timeout_max_scale)

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------

    @property
    def quarantine_converged(self):
        return self.quarantine.converged

    def describe(self):
        active = self.quarantine.active()
        released = [e for e in self.quarantine.entries.values()
                    if e.released]
        return ("pressure: %d quarantined (%d released), converged=%s, "
                "history=%d (+%d dropped)"
                % (len(active), len(released), self.quarantine_converged,
                   len(self.history), self.history_dropped))
