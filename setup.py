"""Setup shim for environments without the `wheel` package, where PEP 660
editable installs (`pip install -e .`) cannot build a wheel. With this
file present, `pip install -e . --no-build-isolation --no-use-pep517`
works fully offline. Configuration lives in pyproject.toml."""

from setuptools import setup

setup()
