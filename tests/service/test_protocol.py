"""Framing-layer tests: the daemon's first line of defense against
hostile input. Every malformed input must become a ProtocolError with a
stable kind — never a hang, a huge allocation, or a stray exception."""

import socket
import struct

import pytest

from repro.errors import ProtocolError
from repro.service.protocol import (ERROR_KINDS, MAX_FRAME_BYTES,
                                    canonical_bytes, error_response,
                                    ok_response, recv_frame, send_frame)


@pytest.fixture()
def pair():
    a, b = socket.socketpair()
    yield a, b
    a.close()
    b.close()


def test_roundtrip(pair):
    a, b = pair
    frame = {"op": "ping", "nested": {"x": [1, 2, 3]}, "s": "text"}
    send_frame(a, frame)
    assert recv_frame(b) == frame


def test_multiple_frames_in_sequence(pair):
    a, b = pair
    for i in range(5):
        send_frame(a, {"op": "ping", "i": i})
    for i in range(5):
        assert recv_frame(b) == {"op": "ping", "i": i}


def test_canonical_bytes_is_deterministic():
    assert (canonical_bytes({"b": 1, "a": 2})
            == canonical_bytes({"a": 2, "b": 1})
            == b'{"a":2,"b":1}')


def test_clean_eof_reads_as_none(pair):
    a, b = pair
    a.close()
    assert recv_frame(b) is None


def test_eof_mid_header_is_protocol_error(pair):
    a, b = pair
    a.sendall(b"\x00\x00")  # half a length header
    a.close()
    with pytest.raises(ProtocolError) as excinfo:
        recv_frame(b)
    assert excinfo.value.kind == "malformed-frame"


def test_eof_mid_payload_is_protocol_error(pair):
    a, b = pair
    a.sendall(struct.pack(">I", 100) + b"only-a-few-bytes")
    a.close()
    with pytest.raises(ProtocolError) as excinfo:
        recv_frame(b)
    assert excinfo.value.kind == "malformed-frame"


def test_garbage_payload_is_protocol_error(pair):
    a, b = pair
    garbage = b"\xff\xfenot json at all"
    a.sendall(struct.pack(">I", len(garbage)) + garbage)
    with pytest.raises(ProtocolError) as excinfo:
        recv_frame(b)
    assert excinfo.value.kind == "malformed-frame"


def test_non_object_payload_is_protocol_error(pair):
    a, b = pair
    payload = b"[1,2,3]"
    a.sendall(struct.pack(">I", len(payload)) + payload)
    with pytest.raises(ProtocolError) as excinfo:
        recv_frame(b)
    assert "not an object" in str(excinfo.value)


def test_oversized_length_prefix_rejected_without_allocation(pair):
    a, b = pair
    a.sendall(struct.pack(">I", MAX_FRAME_BYTES + 1))
    with pytest.raises(ProtocolError) as excinfo:
        recv_frame(b)
    assert "exceeds cap" in str(excinfo.value)


def test_send_frame_refuses_oversized_payload(pair):
    a, _ = pair
    with pytest.raises(ProtocolError):
        send_frame(a, {"blob": "x" * (MAX_FRAME_BYTES + 1)})


def test_error_response_shape():
    resp = error_response("poison", "quarantined", request_id="r1")
    assert resp == {"ok": False, "request_id": "r1",
                    "error": {"kind": "poison", "message": "quarantined"}}
    for kind in ERROR_KINDS:
        assert error_response(kind, "m")["error"]["kind"] == kind


def test_error_response_rejects_unknown_kind():
    with pytest.raises(ProtocolError):
        error_response("made-up-kind", "nope")


def test_ok_response_shape():
    assert ok_response("r2", pong=True) == {"ok": True, "request_id": "r2",
                                            "pong": True}
    assert ok_response() == {"ok": True}
