"""Daemon robustness tests: one warm in-process daemon shared by the
happy-path and hostile-input tests, plus small dedicated daemons for the
scenarios that change pool state (overload, drain, recycling).

Workers use the ``fork`` start method for the same reason the fleet
tests do: cheap pools for tier-1. The spawn path is exercised by the CI
service smoke (``kivati service bench --smoke``).
"""

import os
import socket
import struct
import threading
import time

import pytest

from repro.bench.scale import bench_config
from repro.bench.servicebench import MICRO_SOURCE, micro_spec
from repro.core.config import Mode
from repro.fleet.jobs import digest_of
from repro.fleet.worker import execute_job
from repro.pressure.policy import PressurePolicy
from repro.service import (KivatiDaemon, ServiceClient, ServicePolicy,
                           send_frame, recv_frame)

CONFIG = bench_config(mode=Mode.PREVENTION)


def _policy(**kwargs):
    kwargs.setdefault("workers", 2)
    kwargs.setdefault("start_method", "fork")
    kwargs.setdefault("heartbeat_s", 0.2)
    kwargs.setdefault("poll_s", 0.005)
    kwargs.setdefault("retry_backoff_s", 0.01)
    kwargs.setdefault("warm_sources", (MICRO_SOURCE,))
    return ServicePolicy(**kwargs)


@pytest.fixture(scope="module")
def daemon(tmp_path_factory):
    root = tmp_path_factory.mktemp("svc")
    d = KivatiDaemon(str(root / "kivati.sock"), _policy(),
                     journal_root=str(root / "journals"))
    d.start()
    yield d
    d.stop()


@pytest.fixture()
def client(daemon):
    with ServiceClient(daemon.socket_path, timeout=60.0) as c:
        yield c


def _result_digest(result):
    return digest_of({"job_id": result["job_id"], "kind": result["kind"],
                      "ok": result["ok"], "payload": result["payload"]})


# ----------------------------------------------------------------------
# happy path
# ----------------------------------------------------------------------

def test_ping(client):
    response = client.ping()
    assert response["ok"] and response["pong"]
    assert response["draining"] is False


def test_submit_matches_inline_execution(client, tmp_path):
    spec = micro_spec(CONFIG, "basic", 11)
    response = client.submit(spec, request_id="req-basic")
    assert response["ok"] and response["request_id"] == "req-basic"
    result = response["result"]
    assert result["ok"] and result["attempt"] == 0
    inline = execute_job(spec.as_dict(), journal_dir=str(tmp_path))
    assert _result_digest(result) == _result_digest(inline)


def test_same_spec_is_deterministic_across_workers(client):
    spec = micro_spec(CONFIG, "det", 12)
    digests = set()
    workers = set()
    for i in range(4):
        response = client.submit(spec)
        digests.add(_result_digest(response["result"]))
        workers.add(response["result"]["worker_id"])
    assert len(digests) == 1


def test_post_response_verification_runs(daemon, client):
    before = daemon.stats.verifications
    client.submit(micro_spec(CONFIG, "verified", 13))
    deadline = time.perf_counter() + 10.0
    while time.perf_counter() < deadline:
        if daemon.stats.verifications > before:
            break
        time.sleep(0.02)
    assert daemon.stats.verifications > before
    assert daemon.stats.verification_failures == 0


def test_checker_verify_backend_verifies_without_replay(tmp_path):
    policy = _policy(workers=1, verify_backend="checker")
    d = KivatiDaemon(str(tmp_path / "s.sock"), policy,
                     journal_root=str(tmp_path / "j"))
    d.start()
    try:
        with ServiceClient(d.socket_path, timeout=60.0) as c:
            response = c.submit(micro_spec(CONFIG, "ck-backend", 14))
        assert response["ok"]
        deadline = time.perf_counter() + 10.0
        while time.perf_counter() < deadline:
            if d.stats.verifications:
                break
            time.sleep(0.02)
        assert d.stats.verifications > 0
        assert d.stats.verification_failures == 0
    finally:
        d.stop()


def test_unknown_verify_backend_rejected():
    from repro.errors import ConfigError
    with pytest.raises(ConfigError):
        _policy(verify_backend="osmosis")


def test_stats_op_reports_pool(client):
    response = client.stats()
    assert response["ok"]
    assert response["pool"]["workers"] == 2
    assert set(response["stats"]) >= {"requests_accepted", "retries",
                                      "workers_crashed"}


def test_events_op_returns_log(client):
    response = client.events(limit=5)
    assert response["ok"]
    assert isinstance(response["events"], list)


# ----------------------------------------------------------------------
# hostile input
# ----------------------------------------------------------------------

def test_unknown_op(daemon, client):
    response = client.request({"op": "self-destruct"})
    assert not response["ok"]
    assert response["error"]["kind"] == "unknown-op"
    assert daemon.stats.unknown_ops >= 1


def test_invalid_spec_rejected_structurally(client):
    response = client.request({"op": "submit",
                               "spec": {"job_id": "x", "kind": "run"}})
    assert not response["ok"]
    assert response["error"]["kind"] == "invalid-spec"


def test_unservable_kind_rejected(client):
    spec = micro_spec(CONFIG, "sneaky", 1).as_dict()
    spec["kind"] = "suite"
    response = client.request({"op": "submit", "spec": spec})
    assert not response["ok"]
    assert response["error"]["kind"] == "invalid-spec"
    assert "suite" in response["error"]["message"]


def test_malformed_frame_answered_then_closed(daemon):
    before = daemon.stats.malformed_frames
    sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    sock.settimeout(10.0)
    sock.connect(daemon.socket_path)
    garbage = b"this is not json"
    sock.sendall(struct.pack(">I", len(garbage)) + garbage)
    response = recv_frame(sock)
    assert not response["ok"]
    assert response["error"]["kind"] == "malformed-frame"
    # the connection is closed after the error...
    assert recv_frame(sock) is None
    sock.close()
    assert daemon.stats.malformed_frames == before + 1
    # ...and the daemon still serves
    with ServiceClient(daemon.socket_path) as c:
        assert c.ping()["ok"]


def test_client_disconnect_mid_request_absorbed(daemon):
    before = daemon.stats.client_disconnects
    sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    sock.connect(daemon.socket_path)
    send_frame(sock, {"op": "submit",
                      "spec": micro_spec(CONFIG, "ghost", 5).as_dict(),
                      "deadline_s": 30.0})
    sock.close()  # hang up before the answer
    deadline = time.perf_counter() + 15.0
    while time.perf_counter() < deadline:
        if daemon.stats.client_disconnects > before:
            break
        time.sleep(0.02)
    assert daemon.stats.client_disconnects > before
    with ServiceClient(daemon.socket_path) as c:
        assert c.ping()["ok"]


# ----------------------------------------------------------------------
# deadlines, crash retry, poison
# ----------------------------------------------------------------------

def test_live_but_stuck_worker_hits_deadline_and_is_recycled(daemon,
                                                             client):
    spec = micro_spec(CONFIG, "stuck", 6)
    spec.params["stall_s"] = 30.0  # heartbeats stay fresh; no result
    before_recycled = daemon.pool.workers_recycled
    started = time.perf_counter()
    response = client.submit(spec, deadline_s=0.6)
    elapsed = time.perf_counter() - started
    assert not response["ok"]
    assert response["error"]["kind"] == "deadline"
    assert elapsed < 10.0
    assert daemon.pool.workers_recycled > before_recycled
    assert any(e["kind"] == "recycle" and e.get("reason") == "deadline"
               for e in daemon.events)
    # the pool healed: the next request is served normally
    assert client.submit(micro_spec(CONFIG, "after-stuck", 7))["ok"]


def test_crash_drill_retried_on_fresh_worker(daemon, client):
    spec = micro_spec(CONFIG, "crashy", 8)
    spec.params["crash"] = {"at_frame": 3, "torn": 1}
    before = daemon.stats.as_dict()
    response = client.submit(spec, deadline_s=60.0)
    after = daemon.stats.as_dict()
    assert response["ok"]
    result = response["result"]
    assert result["ok"] and result["attempt"] == 1
    assert after["workers_crashed"] == before["workers_crashed"] + 1
    assert after["retries"] == before["retries"] + 1
    assert after["frames_salvaged"] > before["frames_salvaged"]
    # the retry ran without the drill: digest equals the clean run
    clean = client.submit(micro_spec(CONFIG, "crashy", 8))
    assert _result_digest(clean["result"]) == _result_digest(result)
    # both the kill and the retry are in the service log
    kinds = [e["kind"] for e in daemon.events
             if e.get("job_id") == "crashy"]
    assert "recovery" in kinds and "retry" in kinds


def test_poison_job_quarantined_after_bounded_kills(daemon, client):
    spec = micro_spec(CONFIG, "toxic", 9)
    spec.params["poison"] = True
    before = daemon.stats.as_dict()
    response = client.submit(spec, deadline_s=60.0)
    after = daemon.stats.as_dict()
    assert not response["ok"]
    assert response["error"]["kind"] == "poison"
    assert (after["workers_crashed"]
            == before["workers_crashed"] + daemon.policy.poison_kills)
    assert after["poison_quarantined"] == before["poison_quarantined"] + 1
    assert any(e["kind"] == "poison-quarantine" for e in daemon.events)
    # resubmission is rejected at admission: no more workers burned
    crashed = daemon.stats.workers_crashed
    again = client.submit(spec)
    assert not again["ok"] and again["error"]["kind"] == "poison"
    assert daemon.stats.workers_crashed == crashed
    assert daemon.stats.requests_rejected_poison >= 1
    # and the daemon still serves clean work
    assert client.submit(micro_spec(CONFIG, "after-toxic", 10))["ok"]


# ----------------------------------------------------------------------
# overload, recycling, drain (dedicated daemons)
# ----------------------------------------------------------------------

def test_overload_rejects_only_above_reject_watermark(tmp_path):
    policy = _policy(workers=1,
                     pressure=PressurePolicy(suspended_watermark=1))
    d = KivatiDaemon(str(tmp_path / "s.sock"), policy,
                     journal_root=str(tmp_path / "j"))
    d.start()
    try:
        responses = []
        lock = threading.Lock()

        def one(i):
            spec = micro_spec(CONFIG, "load-%d" % i, 40 + i)
            spec.params["stall_s"] = 0.4
            with ServiceClient(d.socket_path, timeout=60.0) as c:
                r = c.submit(spec, deadline_s=30.0)
            with lock:
                responses.append(r)

        n = policy.reject_depth + 3
        threads = [threading.Thread(target=one, args=(i,))
                   for i in range(n)]
        for t in threads:
            t.start()
            time.sleep(0.02)  # queue builds while worker 0 stalls
        for t in threads:
            t.join()
        rejected = [r for r in responses
                    if not r["ok"] and r["error"]["kind"] == "overloaded"]
        completed = [r for r in responses if r["ok"]]
        assert len(responses) == n            # zero lost
        assert rejected, "no request was shed at the reject watermark"
        assert completed, "admission control rejected everything"
        assert d.stats.requests_rejected_overload == len(rejected)
    finally:
        d.stop()


def test_jobs_cap_recycles_idle_worker(tmp_path):
    policy = _policy(workers=1, max_jobs_per_worker=1)
    d = KivatiDaemon(str(tmp_path / "s.sock"), policy,
                     journal_root=str(tmp_path / "j"))
    d.start()
    try:
        with ServiceClient(d.socket_path) as c:
            first = c.submit(micro_spec(CONFIG, "cap-0", 1))
            second = c.submit(micro_spec(CONFIG, "cap-1", 2))
        assert first["ok"] and second["ok"]
        assert d.pool.workers_recycled >= 1
        assert first["result"]["worker_id"] != second["result"]["worker_id"]
        assert any(e["kind"] == "recycle" and "cap" in e.get("reason", "")
                   for e in d.events)
    finally:
        d.stop()


def test_drain_finishes_inflight_and_removes_socket(tmp_path):
    d = KivatiDaemon(str(tmp_path / "s.sock"), _policy(workers=1),
                     journal_root=str(tmp_path / "j"))
    d.start()
    inflight = {}

    def slow_submit():
        spec = micro_spec(CONFIG, "inflight", 3)
        spec.params["stall_s"] = 0.5
        with ServiceClient(d.socket_path, timeout=60.0) as c:
            inflight["response"] = c.submit(spec, deadline_s=30.0)

    t = threading.Thread(target=slow_submit)
    t.start()
    time.sleep(0.15)  # let it reach a worker
    # a connection opened before the drain sees a structured rejection
    late = ServiceClient(d.socket_path, timeout=10.0)
    late.ping()
    d.initiate_drain("test")
    rejected = late.submit(micro_spec(CONFIG, "too-late", 4))
    assert not rejected["ok"]
    assert rejected["error"]["kind"] == "draining"
    late.close()
    assert d.wait_drained(timeout=60.0)
    t.join(timeout=10.0)
    assert inflight["response"]["ok"], "in-flight request lost by drain"
    assert not os.path.exists(d.socket_path)
    assert d.stats.requests_rejected_draining >= 1
