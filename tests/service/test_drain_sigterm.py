"""End-to-end drain test against a real ``kivati serve`` process:
SIGTERM mid-load must finish the in-flight request, flush and remove the
socket, and exit 0 — the exact contract the CI drain smoke holds."""

import os
import signal
import subprocess
import sys
import threading
import time

import pytest

from repro.bench.scale import bench_config
from repro.bench.servicebench import micro_spec
from repro.core.config import Mode
from repro.service import ServiceClient, wait_for_socket

CONFIG = bench_config(mode=Mode.PREVENTION)


@pytest.fixture()
def serve_proc(tmp_path):
    socket_path = str(tmp_path / "kivati.sock")
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [p for p in (env.get("PYTHONPATH"),) if p]
        + [os.path.join(os.path.dirname(__file__), "..", "..", "src")])
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve", "--socket",
         socket_path, "--workers", "1", "--start-method", "fork"],
        env=env, stdout=subprocess.PIPE, stderr=subprocess.STDOUT)
    try:
        wait_for_socket(socket_path, timeout=60.0)
        yield proc, socket_path
    finally:
        if proc.poll() is None:
            proc.kill()
        proc.wait(timeout=10.0)


def test_sigterm_mid_load_drains_clean(serve_proc):
    proc, socket_path = serve_proc
    inflight = {}

    def slow_submit():
        spec = micro_spec(CONFIG, "mid-drain", 3)
        spec.params["stall_s"] = 1.0
        with ServiceClient(socket_path, timeout=60.0) as client:
            inflight["response"] = client.submit(spec, deadline_s=30.0)

    thread = threading.Thread(target=slow_submit)
    thread.start()
    time.sleep(0.3)  # the request is in flight on the worker
    proc.send_signal(signal.SIGTERM)
    assert proc.wait(timeout=60.0) == 0, proc.stdout.read().decode()
    thread.join(timeout=30.0)
    response = inflight.get("response")
    assert response is not None, "in-flight request got no answer"
    assert response["ok"], response
    assert response["result"]["job_id"] == "mid-drain"
    assert not os.path.exists(socket_path), "drain left the socket behind"


def test_sigterm_idle_exits_zero(serve_proc):
    proc, socket_path = serve_proc
    proc.send_signal(signal.SIGTERM)
    assert proc.wait(timeout=60.0) == 0
    assert not os.path.exists(socket_path)
