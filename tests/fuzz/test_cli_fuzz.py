"""`kivati fuzz ...` surface: exit codes, artifacts, --strict."""

import json
import os

import pytest

from repro.cli import main


def test_fuzz_gen_is_deterministic(capsys):
    assert main(["fuzz", "gen", "--seed", "9"]) == 0
    first = capsys.readouterr().out
    assert main(["fuzz", "gen", "--seed", "9"]) == 0
    assert capsys.readouterr().out == first
    assert "void main()" in first


def test_fuzz_gen_writes_file(tmp_path, capsys):
    out = str(tmp_path / "prog.c")
    assert main(["fuzz", "gen", "--seed", "3", "--out", out]) == 0
    capsys.readouterr()
    with open(out) as f:
        assert "void main()" in f.read()


def test_fuzz_run_small_campaign_exits_zero(tmp_path, capsys):
    corpus = str(tmp_path / "corpus")
    code = main(["fuzz", "run", "--programs", "4", "--base-seed", "1",
                 "--drill-every", "0", "--no-fix", "--corpus", corpus])
    out = capsys.readouterr().out
    assert code == 0
    assert "fuzz campaign: 4 programs" in out


def test_fuzz_run_strict_exits_three_on_archived_divergence(tmp_path,
                                                            capsys):
    # drills only diverge when the dropped trigger actually fired; at
    # base seed 2 the first program is known to trip its watchpoint
    corpus = str(tmp_path / "corpus")
    code = main(["fuzz", "run", "--programs", "2", "--base-seed", "2",
                 "--drill-every", "1", "--minimize-tests", "60",
                 "--no-fix", "--strict", "--corpus", corpus])
    capsys.readouterr()
    assert code == 3
    assert [d for d in os.listdir(corpus) if not d.startswith(".")]


def test_fuzz_fix_reports_verified_fix(tmp_path, capsys):
    racy = tmp_path / "racy.c"
    racy.write_text("""
int g0 = 0;
void worker() { int t = 0; t = g0; t = t + 1; g0 = t; }
void main() { spawn worker(); spawn worker(); join(); output(g0); }
""")
    code = main(["fuzz", "fix", str(racy), "--seed", "2"])
    captured = capsys.readouterr()
    assert code == 0
    assert "fix verified" in captured.err
    # stdout carries the patched source (pipeable into a file)
    assert "lock(&fixlk);" in captured.out


def test_fuzz_bench_smoke_writes_valid_artifact(tmp_path, capsys):
    out = str(tmp_path / "BENCH_fuzz.json")
    corpus = str(tmp_path / "corpus")
    code = main(["fuzz", "bench", "--smoke", "--corpus", corpus,
                 "--out", out])
    capsys.readouterr()
    assert code == 0
    with open(out) as f:
        payload = json.load(f)
    assert payload["schema"] == "kivati-fuzzbench/v1"
    assert payload["campaign"]["lost"] == 0
    assert payload["campaign"]["unarchived"] == []

    from repro.bench.fuzzbench import validate
    assert validate(payload) == []
