"""ddmin unit tests: pure predicates, no oracle in the loop."""

import pytest

from repro.fuzz.minimize import (canonical, count_statements, minimize)

PROGRAM = """
int g0 = 0;
int g1 = 0;

void worker0() {
    int t = 0;
    t = g0;
    t = t + 1;
    g0 = t + 2;
    g1 = 5;
}

void worker1() {
    int u = 0;
    u = g1;
}

void main() {
    spawn worker0();
    spawn worker1();
    join();
    output(g0);
}
"""


def test_minimize_keeps_predicate_true_and_shrinks():
    # interesting = "still assigns to g0 somewhere"
    result = minimize(PROGRAM, lambda text: "g0 =" in text)
    assert "g0 =" in result.source
    assert result.minimized_lines < result.original_lines
    assert result.statements_after < result.statements_before
    # everything not needed for the predicate is gone
    assert "g1" not in result.source


def test_minimize_result_is_canonical_and_valid():
    result = minimize(PROGRAM, lambda text: "spawn worker0" in text)
    assert result.source == canonical(result.source)
    assert count_statements(result.source) >= 1


def test_minimize_raises_on_non_diverging_input():
    with pytest.raises(ValueError):
        minimize(PROGRAM, lambda text: False)


def test_minimize_respects_test_budget():
    calls = [0]

    def predicate(text):
        calls[0] += 1
        return "g0 =" in text

    result = minimize(PROGRAM, predicate, max_tests=5)
    # the initial confirmation call is not budgeted; everything else is
    assert result.tests <= 6


LOOPED = """
int g0 = 0;

void worker0() {
    int i = 0;
    while (i < 64) {
        g0 = g0 + 1;
        i = i + 1;
    }
}

void main() {
    spawn worker0();
    join();
}
"""


def test_loop_bounds_shrink_toward_one():
    result = minimize(LOOPED, lambda text: "g0 = g0 + 1" in text)
    assert "64" not in result.source


CONDITIONAL = """
int g0 = 0;

void worker0() {
    int t = 0;
    if (t % 2 == 0) {
        g0 = 2;
    }
}

void main() {
    spawn worker0();
    join();
}
"""


def test_if_scaffolding_unwraps():
    result = minimize(CONDITIONAL, lambda text: "g0 = 2" in text)
    assert "if" not in result.source


EMPTY_SPAWNS = """
int g0 = 0;

void worker0() {
}

void worker1() {
    g0 = 1;
}

void main() {
    spawn worker0();
    spawn worker0();
    spawn worker1();
    join();
}
"""


def test_empty_spawns_drop_with_their_functions():
    # ddmin alone cannot remove a spawn/empty-function pair; the
    # cleanup pass must, when the predicate allows it
    result = minimize(EMPTY_SPAWNS, lambda text: "g0 = 1" in text)
    assert "worker0" not in result.source


def test_thread_requiring_predicate_keeps_spawns():
    result = minimize(EMPTY_SPAWNS,
                      lambda text: text.count("spawn") >= 3
                      and "g0 = 1" in text)
    assert result.source.count("spawn") == 3
