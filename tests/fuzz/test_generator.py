"""Generator determinism and the by-construction validity property.

Two contracts pinned here:

- *determinism*: ``generate_source(params, seed)`` is a pure function —
  the same pair yields byte-identical source in this process, in a
  fresh subprocess, and under different ``PYTHONHASHSEED`` values;
- *validity*: every generated program parses, typechecks, and
  terminates under an adversarial schedule sweep (the generator only
  emits counted loops and non-nested single-lock critical sections, so
  a campaign deadlock or step-wall abort is a finding, not noise).
"""

import os
import subprocess
import sys
from random import Random

from hypothesis import given, settings, strategies as st

from repro.core.config import KivatiConfig, Mode
from repro.core.session import ProtectedProgram
from repro.fuzz.generator import DISCIPLINES, FuzzParams, generate_source
from repro.minic.parser import parse
from repro.minic.typecheck import check

SRC = os.path.join(os.path.dirname(__file__), "..", "..", "src")


def test_same_seed_same_source():
    params = FuzzParams(threads=3, lock_discipline="mixed",
                        sync_fraction=0.25)
    assert generate_source(params, 42) == generate_source(params, 42)


def test_different_seeds_differ():
    params = FuzzParams()
    sources = {generate_source(params, seed) for seed in range(8)}
    assert len(sources) > 1


def test_sampled_params_roundtrip():
    params = FuzzParams.sampled(Random(7))
    rebuilt = FuzzParams.from_dict(params.as_dict())
    assert rebuilt.as_dict() == params.as_dict()


_CHILD = r"""
import json, sys
sys.path.insert(0, %r)
from repro.fuzz.generator import FuzzParams, generate_source
params = FuzzParams.from_dict(json.loads(sys.argv[1]))
sys.stdout.write(generate_source(params, int(sys.argv[2])))
"""


def _subprocess_source(params, seed, hashseed):
    """Generate in a fresh interpreter with a pinned PYTHONHASHSEED."""
    import json

    env = dict(os.environ)
    env["PYTHONHASHSEED"] = hashseed
    out = subprocess.run(
        [sys.executable, "-c", _CHILD % os.path.abspath(SRC),
         json.dumps(params.as_dict()), str(seed)],
        capture_output=True, text=True, env=env, check=True)
    return out.stdout


def test_byte_identical_across_processes_and_hash_seeds():
    params = FuzzParams(threads=4, shared_vars=2, lock_discipline="mixed",
                        sync_fraction=0.5, cond_rate=0.3)
    local = generate_source(params, 1234)
    assert _subprocess_source(params, 1234, "0") == local
    assert _subprocess_source(params, 1234, "424242") == local


@st.composite
def fuzz_params(draw):
    return FuzzParams(
        threads=draw(st.integers(min_value=2, max_value=4)),
        shared_vars=draw(st.integers(min_value=1, max_value=3)),
        read_set=draw(st.integers(min_value=1, max_value=2)),
        write_set=draw(st.integers(min_value=1, max_value=2)),
        sharing_rate=draw(st.sampled_from((0.5, 0.8, 1.0))),
        lock_discipline=draw(st.sampled_from(DISCIPLINES)),
        sync_fraction=draw(st.sampled_from((0.0, 0.25, 0.5))),
        ops_per_thread=draw(st.integers(min_value=1, max_value=4)),
        iters=draw(st.integers(min_value=1, max_value=4)),
        pad_rate=draw(st.sampled_from((0.3, 0.6, 0.9))),
        cond_rate=draw(st.sampled_from((0.0, 0.15, 0.3))),
    )


@settings(max_examples=25, deadline=None)
@given(params=fuzz_params(), seed=st.integers(min_value=0, max_value=10**6))
def test_every_generated_program_typechecks_and_terminates(params, seed):
    source = generate_source(params, seed)
    check(parse(source))  # valid by construction
    # termination by construction: counted loops only, so the program
    # must finish well under the step wall on an arbitrary schedule
    program = ProtectedProgram(source)
    result = program.run(KivatiConfig(
        num_cores=2, seed=seed % 17, mode=Mode.BUG_FINDING,
        max_steps=200_000)).result
    assert not result.deadlocked
