"""Corpus atomicity: temp+rename publication and torn-state salvage."""

import json
import os

import pytest

from repro.core.config import KivatiConfig
from repro.core.session import ProtectedProgram
from repro.fuzz.archive import (CASE_FILES, TMP_PREFIX, archive_case,
                                case_name, load_corpus, salvage_corpus)
from repro.journal.format import read_journal
from repro.journal.replay import record_run

SOURCE = """
int g0 = 0;
void worker0() { g0 = g0 + 1; }
void main() { spawn worker0(); join(); }
"""


@pytest.fixture
def recorded():
    program = ProtectedProgram(SOURCE)
    _, recorder = record_run(program, KivatiConfig(num_cores=2, seed=1))
    return recorder


def test_archive_publishes_complete_case(tmp_path, recorded):
    corpus = str(tmp_path / "corpus")
    name = case_name("reverify", "fz0001", 77)
    meta = {"kinds": ["reverify"], "run_seed": 77}
    path = archive_case(corpus, name, meta, SOURCE, SOURCE,
                        recorded.events)
    for filename in CASE_FILES:
        assert os.path.isfile(os.path.join(path, filename))
    # no staging residue after a clean publish
    assert not [e for e in os.listdir(corpus) if e.startswith(TMP_PREFIX)]
    cases = load_corpus(corpus)
    assert [c.name for c in cases] == [name]
    assert cases[0].meta == meta
    # the archived journal is a real journal, CRC frames and all
    read = read_journal(os.path.join(path, "run.journal"))
    assert not read.torn
    assert len(read.events) == len(recorded.events)


def test_archive_overwrites_existing_case(tmp_path, recorded):
    corpus = str(tmp_path / "corpus")
    name = case_name("reverify", "fz0001", 77)
    archive_case(corpus, name, {"v": 1}, SOURCE, SOURCE, recorded.events)
    archive_case(corpus, name, {"v": 2}, SOURCE, SOURCE, recorded.events)
    (case,) = load_corpus(corpus)
    assert case.meta == {"v": 2}


def test_torn_archive_is_salvaged_not_loaded(tmp_path, recorded):
    corpus = str(tmp_path / "corpus")
    archive_case(corpus, "good-case", {"ok": True}, SOURCE, SOURCE,
                 recorded.events)
    # simulate a crash mid-archive: staging directory left behind with
    # a half-written case inside
    torn = os.path.join(corpus, TMP_PREFIX + "dead-case.12345")
    os.makedirs(torn)
    with open(os.path.join(torn, "meta.json"), "w") as f:
        f.write('{"half": ')  # truncated JSON — never parsed
    # loaders skip torn state entirely
    assert [c.name for c in load_corpus(corpus)] == ["good-case"]
    # salvage removes it and reports what it removed
    removed = salvage_corpus(corpus)
    assert removed == [TMP_PREFIX + "dead-case.12345"]
    assert not os.path.isdir(torn)
    assert salvage_corpus(corpus) == []


def test_incomplete_case_directory_is_skipped(tmp_path, recorded):
    corpus = str(tmp_path / "corpus")
    archive_case(corpus, "good-case", {"ok": True}, SOURCE, SOURCE,
                 recorded.events)
    # a directory without meta.json is not a case
    os.makedirs(os.path.join(corpus, "stray-dir"))
    assert [c.name for c in load_corpus(corpus)] == ["good-case"]


def test_salvage_missing_corpus_is_empty(tmp_path):
    assert salvage_corpus(str(tmp_path / "never-created")) == []


def test_meta_json_is_stable_and_sorted(tmp_path, recorded):
    corpus = str(tmp_path / "corpus")
    path = archive_case(corpus, "case", {"b": 1, "a": 2}, SOURCE, SOURCE,
                        recorded.events)
    with open(os.path.join(path, "meta.json")) as f:
        text = f.read()
    assert text.index('"a"') < text.index('"b"')
    assert json.loads(text) == {"a": 2, "b": 1}
