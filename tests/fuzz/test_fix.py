"""Fix synthesis: replay pinning plus seed-sweep verification."""

from repro.core.config import KivatiConfig, Mode
from repro.core.session import ProtectedProgram
from repro.fuzz.fix import FIX_LOCK, synthesize_fix
from repro.minic.parser import parse
from repro.minic.typecheck import check

# classic load/add/store atomicity violation on g0, no locks at all
RACY = """
int g0 = 0;

void worker() {
    int t = 0;
    t = g0;
    t = t + 1;
    g0 = t;
}

void main() {
    spawn worker();
    spawn worker();
    join();
    output(g0);
}
"""


def _violating_seed(config):
    program = ProtectedProgram(RACY)
    for seed in range(60):
        report = program.run(config, seed=seed)
        if any(str(r.var).startswith("g0") for r in report.violations):
            return seed
    raise AssertionError("no violating seed found for the racy program")


def test_synthesized_fix_is_replay_verified():
    config = KivatiConfig(num_cores=3, mode=Mode.BUG_FINDING,
                          max_steps=100_000)
    seed = _violating_seed(config)
    outcome = synthesize_fix(RACY, config, seed)
    assert outcome.verified
    assert outcome.replay_ok and outcome.sweep_ok
    assert outcome.victims == ["g0"]
    assert outcome.strategy is not None
    # the fixed program is valid mini-C and actually introduces a lock
    check(parse(outcome.fixed_source))
    assert FIX_LOCK in outcome.fixed_source
    # the fix holds on a fresh run at the original violating seed
    fixed = ProtectedProgram(outcome.fixed_source)
    report = fixed.run(config, seed=seed)
    assert not [r for r in report.violations
                if str(r.var).startswith("g0")]


def test_fix_payload_is_json_safe_and_complete():
    import json

    config = KivatiConfig(num_cores=3, mode=Mode.BUG_FINDING,
                          max_steps=100_000)
    outcome = synthesize_fix(RACY, config, _violating_seed(config))
    payload = outcome.as_payload()
    json.dumps(payload)
    assert payload["verified"] is True
    assert payload["attempts"]
    assert all("strategy" in a for a in payload["attempts"])


def test_non_violating_program_yields_no_fix():
    config = KivatiConfig(num_cores=2, mode=Mode.BUG_FINDING,
                          max_steps=100_000)
    quiet = "int g0 = 0;\nvoid main() { g0 = 1; output(g0); }\n"
    outcome = synthesize_fix(quiet, config, 1)
    assert not outcome.verified
    assert outcome.victims == []
    assert "no violation" in outcome.detail
