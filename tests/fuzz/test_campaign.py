"""End-to-end campaign invariants on small, fixed-seed campaigns."""

import json
import os

from repro.fuzz.archive import load_corpus
from repro.fuzz.campaign import (CampaignSpec, build_specs,
                                 generate_programs, run_campaign)


def test_generated_program_list_is_deterministic():
    spec = CampaignSpec(n_programs=6, base_seed=3)
    first = generate_programs(spec)
    second = generate_programs(spec)
    assert [p.source for p in first] == [p.source for p in second]
    assert [p.run_seed for p in first] == [p.run_seed for p in second]
    # seeds stride apart so program schedules decorrelate
    assert len({p.run_seed for p in first}) == 6


def test_job_specs_cover_every_program():
    spec = CampaignSpec(n_programs=5, base_seed=1, drill_every=2)
    programs = generate_programs(spec)
    specs = build_specs(spec, programs)
    assert len(specs) == 5
    assert all(js.kind == "fuzz" for js in specs)
    drills = [js for js in specs if js.params.get("drill")]
    assert len(drills) == sum(1 for p in programs if p.drill) == 2


def test_small_campaign_loses_no_jobs_and_archives_divergences(tmp_path):
    corpus = str(tmp_path / "corpus")
    spec = CampaignSpec(n_programs=8, base_seed=1, workers=0,
                        drill_every=4, minimize_tests=40,
                        corpus_dir=corpus, fix=False)
    result = run_campaign(spec)
    assert result.lost == []
    assert result.unarchived == []
    assert len(result.programs) == 8
    # every reported divergence became an archived corpus case
    assert len(result.archived) == len(result.divergences)
    cases = load_corpus(corpus)
    assert sorted(c.name for c in cases) == sorted(result.archived)
    for case in cases:
        meta = case.meta
        assert meta["kinds"]
        assert os.path.isfile(os.path.join(case.path, "minimized.c"))
        assert os.path.isfile(os.path.join(case.path, "run.journal"))


def test_campaign_results_are_worker_count_independent(tmp_path):
    inline = run_campaign(CampaignSpec(
        n_programs=6, base_seed=2, workers=0, drill_every=0, fix=False))
    sharded = run_campaign(CampaignSpec(
        n_programs=6, base_seed=2, workers=2, drill_every=0, fix=False))
    key = lambda r: sorted((d["program_id"], tuple(d["kinds"]))
                           for d in r.divergences)
    assert key(inline) == key(sharded)
    assert inline.confirmed == sharded.confirmed
    assert inline.lost == sharded.lost == []


def test_campaign_payload_shape(tmp_path):
    spec = CampaignSpec(n_programs=4, base_seed=1, workers=0,
                        drill_every=0, fix=False)
    payload = run_campaign(spec).as_payload()
    json.dumps(payload)  # must be plain JSON
    assert payload["programs"] == 4
    assert payload["lost"] == 0
    assert payload["ok"] is True
    assert payload["rounds"] == 1
    assert payload["violation_history"] == {}


def test_campaign_rebinning_rounds_pin_results(tmp_path):
    """Splitting the batch into violation-history-rebinned rounds is
    pure scheduling: divergences, confirmed programs and per-job
    payloads must match the single-round campaign exactly."""
    single = run_campaign(CampaignSpec(
        n_programs=6, base_seed=2, workers=0, drill_every=0, fix=False))
    rounds = run_campaign(CampaignSpec(
        n_programs=6, base_seed=2, workers=0, drill_every=0, fix=False,
        rounds=3))
    key = lambda r: sorted((d["program_id"], tuple(d["kinds"]))
                           for d in r.divergences)
    assert key(single) == key(rounds)
    assert single.confirmed == rounds.confirmed
    assert rounds.lost == []
    # per-job digest pin: every job payload is bit-identical
    assert set(single.fleet.results) == set(rounds.fleet.results)
    for job_id, result in single.fleet.results.items():
        assert rounds.fleet.results[job_id].payload == result.payload
    # the accumulated history is exactly the fold of every job's
    # violated ARs — proof the feedback loop saw the real violations
    expected = {}
    for result in single.fleet.results.values():
        for ar in result.payload.get("violated_ars", ()):
            expected[ar] = expected.get(ar, 0) + 1
    assert rounds.history == expected
