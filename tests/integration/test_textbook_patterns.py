"""Textbook concurrency patterns under the VM and under Kivati.

These are the classic kata — Peterson's lock, bounded producer/consumer,
barrier phases, readers/writer handoff — exercising the machine's memory
semantics and demonstrating that Kivati's prevention never breaks
correctly-synchronized algorithms (including ones synchronized by plain
flags rather than the lock builtins).
"""

import pytest

from repro.core.config import KivatiConfig, OptLevel
from repro.core.session import ProtectedProgram

PETERSON = """
int flag0 = 0;
int flag1 = 0;
int turn = 0;
int counter = 0;

void thread0(int n) {
    int i = 0;
    while (i < n) {
        flag0 = 1;
        turn = 1;
        while (flag1 == 1 && turn == 1) { yield(); }
        int t = counter;
        counter = t + 1;
        flag0 = 0;
        i = i + 1;
    }
}

void thread1(int n) {
    int i = 0;
    while (i < n) {
        flag1 = 1;
        turn = 0;
        while (flag0 == 1 && turn == 0) { yield(); }
        int t = counter;
        counter = t + 1;
        flag1 = 0;
        i = i + 1;
    }
}

void main() {
    spawn thread0(15);
    spawn thread1(15);
    join();
    output(counter);
}
"""

BOUNDED_BUFFER = """
int buf[4];
int count = 0;
int in_pos = 0;
int out_pos = 0;
int m = 0;
int produced = 0;
int consumed = 0;

void producer(int n) {
    int i = 0;
    while (i < n) {
        int done = 0;
        while (done == 0) {
            lock(&m);
            if (count < 4) {
                buf[in_pos % 4] = i + 1;
                in_pos = in_pos + 1;
                count = count + 1;
                produced = produced + 1;
                done = 1;
            }
            unlock(&m);
            if (done == 0) { sleep(500); }
        }
        i = i + 1;
    }
}

void consumer(int n) {
    int i = 0;
    int total = 0;
    while (i < n) {
        int got = 0;
        while (got == 0) {
            lock(&m);
            if (count > 0) {
                total = total + buf[out_pos % 4];
                out_pos = out_pos + 1;
                count = count - 1;
                consumed = consumed + 1;
                got = 1;
            }
            unlock(&m);
            if (got == 0) { sleep(500); }
        }
        i = i + 1;
    }
    output(total);
}

void main() {
    spawn producer(12);
    spawn consumer(12);
    join();
    output(produced);
    output(consumed);
}
"""

PHASED_BARRIER = """
int arrivals = 0;
int phase = 0;
int log_sum = 0;

void barrier_wait(int nthreads) {
    int my_phase = phase;
    int arrived = atomic_add(&arrivals, 1);
    if (arrived == nthreads - 1) {
        arrivals = 0;
        phase = my_phase + 1;
    } else {
        while (phase == my_phase) { sleep(300); }
    }
}

void worker(int id, int nthreads, int phases) {
    int p = 0;
    while (p < phases) {
        atomic_add(&log_sum, id + p);
        barrier_wait(nthreads);
        p = p + 1;
    }
}

void main() {
    spawn worker(1, 3, 4);
    spawn worker(2, 3, 4);
    spawn worker(3, 3, 4);
    join();
    output(log_sum);
    output(phase);
}
"""

CASES = [
    ("peterson", PETERSON, [30]),
    ("bounded-buffer", BOUNDED_BUFFER,
     [sum(range(1, 13)), 12, 12]),
    ("phased-barrier", PHASED_BARRIER,
     [sum(id_ + p for id_ in (1, 2, 3) for p in range(4)), 4]),
]

_CACHE = {}


def protect(src):
    pp = _CACHE.get(src)
    if pp is None:
        pp = ProtectedProgram(src)
        _CACHE[src] = pp
    return pp


@pytest.mark.parametrize("name,src,expected", CASES,
                         ids=[c[0] for c in CASES])
def test_pattern_vanilla(name, src, expected):
    pp = protect(src)
    for seed in (0, 1):
        result = pp.run_vanilla(seed=seed)
        assert result.output == expected, (name, seed, result.output)
        assert not result.deadlocked


@pytest.mark.parametrize("name,src,expected", CASES,
                         ids=[c[0] for c in CASES])
@pytest.mark.parametrize("opt", [OptLevel.BASE, OptLevel.OPTIMIZED],
                         ids=["base", "optimized"])
def test_pattern_protected(name, src, expected, opt):
    pp = protect(src)
    config = KivatiConfig(opt=opt, suspend_timeout_ns=15_000)
    for seed in (0, 1):
        report = pp.run(config, seed=seed)
        assert report.output == expected, (name, opt, seed, report.output)
        assert not report.result.deadlocked
