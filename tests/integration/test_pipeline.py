"""Cross-module pipeline integration tests."""

import pytest

from repro.core.config import KivatiConfig, OptLevel
from repro.core.session import ProtectedProgram
from repro.minic.parser import parse
from repro.minic.pretty import pretty
from repro.workloads.catalog import workload_suite


@pytest.mark.parametrize(
    "workload", workload_suite(scale=0.1), ids=lambda w: w.name
)
def test_annotated_output_reparses(workload):
    """The pretty-printed annotated program must be parseable again
    (modulo the annotation pseudo-statements, which we strip)."""
    pp = ProtectedProgram(workload.source)
    text = pretty(pp.annotation.ast)
    stripped = "\n".join(
        line for line in text.splitlines()
        if not line.strip().startswith(("begin_atomic(", "end_atomic(",
                                        "clear_ar(", "__shadow_store("))
    )
    reparsed = parse(stripped)
    assert reparsed.func("main") is not None


def test_stats_invariants_across_configs():
    """Structural invariants of the statistics, across configurations."""
    workload = workload_suite(scale=0.1)[0]
    pp = ProtectedProgram(workload.source)
    for opt in (OptLevel.BASE, OptLevel.SYNCVARS, OptLevel.OPTIMIZED):
        report = pp.run(
            KivatiConfig(opt=opt, suspend_timeout_ns=10_000), seed=2
        )
        s = report.stats
        assert s.begin_syscalls <= s.begin_calls
        assert s.end_syscalls <= s.end_calls
        assert s.clear_syscalls <= s.clear_calls
        assert s.traps == s.local_traps + s.remote_traps + s.stale_traps \
            + s.lazy_reconciles or s.traps >= s.remote_traps
        assert s.monitored_ars + s.missed_ars <= s.begin_calls
        # whitelist checks happen at begins and ends alike
        assert s.whitelist_hits <= s.begin_calls + s.end_calls
        assert s.undos <= s.remote_traps
        assert s.violations == len(report.violations)
        assert s.suspend_timeouts <= s.suspensions


def test_violation_ar_ids_always_resolvable():
    src = """
    int x = 0;
    void local_thread() {
        int t = x;
        sleep(40000);
        x = t + 1;
    }
    void remote_thread() {
        sleep(15000);
        x = 99;
    }
    void main() {
        spawn local_thread();
        spawn remote_thread();
        join();
    }
    """
    pp = ProtectedProgram(src)
    report = pp.run(KivatiConfig(opt=OptLevel.BASE), seed=1)
    assert report.violations
    for violation in report.violations:
        info = pp.ar_table[violation.ar_id]
        assert info.var == violation.var
        assert info.func == violation.func


def test_seed_sweep_never_corrupts_apps():
    """Protection must preserve app semantics across many seeds (the
    paper's core safety claim: Kivati never introduces new errors)."""
    workload = workload_suite(scale=0.1)[3]  # TPC-W, the most contended
    pp = ProtectedProgram(workload.source)
    for seed in range(6):
        report = pp.run(
            KivatiConfig(opt=OptLevel.OPTIMIZED, suspend_timeout_ns=10_000),
            seed=seed,
        )
        assert workload.check_output(report.output), (seed, report.output)
