"""Smoke-run the example scripts (the cheap ones) in-process."""

import importlib.util
import os
import sys

import pytest

EXAMPLES = os.path.join(os.path.dirname(__file__), "..", "..", "examples")


def load_example(name):
    path = os.path.abspath(os.path.join(EXAMPLES, name))
    spec = importlib.util.spec_from_file_location("example_" + name[:-3],
                                                  path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_quickstart_runs(capsys):
    load_example("quickstart.py").main()
    out = capsys.readouterr().out
    assert "the increment was lost" in out
    assert "reordered after the atomic region" in out
    assert "violation:" in out


def test_protect_web_server_runs(capsys):
    load_example("protect_web_server.py").main()
    out = capsys.readouterr().out
    assert "vanilla:" in out
    assert "optimized" in out
    assert "Kivati broke the app" not in out


def test_train_whitelist_runs(capsys):
    load_example("train_whitelist.py").main()
    out = capsys.readouterr().out
    assert "whitelist written" in out
    assert "false positives:" in out


@pytest.mark.slow
def test_find_the_bug_runs(capsys):
    load_example("find_the_bug.py").main()
    out = capsys.readouterr().out
    assert "DETECTED" in out


def test_sharper_analysis_runs(capsys):
    load_example("sharper_analysis.py").main()
    out = capsys.readouterr().out
    assert out.count("violation(s) reported") == 4
    assert "forensic timeline" in out
