"""PressurePolicy validation and copy semantics."""

import pytest

from repro.errors import ConfigError
from repro.pressure import PressurePolicy


def test_defaults_validate():
    policy = PressurePolicy()
    assert policy.arbiter and policy.quarantine
    assert policy.admission and policy.adaptive_timeout
    assert 1 <= policy.sample_initial_n <= policy.sample_max_n


@pytest.mark.parametrize("kwargs", [
    {"quarantine_after_trips": 0},
    {"sample_initial_n": 0},
    {"sample_initial_n": 8, "sample_max_n": 4},
    {"release_streak": 0},
    {"suspended_watermark": 0},
    {"latency_watermark_ns": 0},
    {"latency_ref_ns": -5},
    {"timeout_max_scale": 0},
    {"leak_age_ns": 0},
    {"leak_scan_ns": 0},
    {"max_history": 0},
])
def test_invalid_knobs_rejected(kwargs):
    with pytest.raises(ConfigError):
        PressurePolicy(**kwargs)


def test_copy_overrides_one_field_and_keeps_the_rest():
    policy = PressurePolicy(sample_max_n=32, release_streak=5)
    clone = policy.copy(sample_max_n=16)
    assert clone.sample_max_n == 16
    assert clone.release_streak == 5
    assert policy.sample_max_n == 32  # original untouched


def test_copy_validates_overrides():
    with pytest.raises(ConfigError):
        PressurePolicy().copy(leak_age_ns=0)
