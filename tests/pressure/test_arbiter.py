"""SlotArbiter unit tests: priority accumulation, victim choice, LRU
tiebreak, and the slots it must never preempt."""

from repro.kernel.state import KernelSlot
from repro.pressure import SlotArbiter


class _AR:
    def __init__(self, ar_id):
        self.ar_id = ar_id


def _slot(index, ar_ids=(1,), last_use=0):
    slot = KernelSlot(index)
    slot.enabled = True
    slot.ars = [_AR(a) for a in ar_ids]
    slot.last_use_ns = last_use
    return slot


def test_priority_accumulates_per_ar():
    arb = SlotArbiter()
    assert arb.priority(7) == 0
    arb.note_violation(7)
    arb.note_violation(7)
    arb.note_violation(9)
    assert arb.priority(7) == 2
    assert arb.priority(9) == 1
    assert arb.priority(8) == 0


def test_slot_defends_with_its_hottest_tenant():
    arb = SlotArbiter()
    arb.note_violation(2)
    arb.note_violation(2)
    slot = _slot(0, ar_ids=(1, 2, 3))
    assert arb.slot_priority(slot) == 2


def test_choose_victim_prefers_lowest_priority():
    arb = SlotArbiter()
    arb.note_violation(1)
    hot = _slot(0, ar_ids=(1,))
    quiet = _slot(1, ar_ids=(2,))
    victim, prio = arb.choose_victim([hot, quiet])
    assert victim is quiet
    assert prio == 0


def test_lru_breaks_priority_ties():
    arb = SlotArbiter()
    older = _slot(0, ar_ids=(1,), last_use=100)
    newer = _slot(1, ar_ids=(2,), last_use=200)
    victim, _prio = arb.choose_victim([newer, older])
    assert victim is older


def test_index_breaks_full_ties_deterministically():
    arb = SlotArbiter()
    a = _slot(0, ar_ids=(1,), last_use=100)
    b = _slot(1, ar_ids=(2,), last_use=100)
    victim, _prio = arb.choose_victim([b, a])
    assert victim is a


def test_protected_slots_are_never_candidates():
    arb = SlotArbiter()
    disabled = _slot(0)
    disabled.enabled = False
    lazy = _slot(1)
    lazy.lazily_freed = True
    suspended = _slot(2)
    suspended.suspended = [object()]
    containment = _slot(3)
    containment.containment_owner = 5
    empty = _slot(4, ar_ids=())
    victim, prio = arb.choose_victim(
        [disabled, lazy, suspended, containment, empty])
    assert victim is None and prio is None


def test_victim_found_among_mixed_slots():
    arb = SlotArbiter()
    suspended = _slot(0)
    suspended.suspended = [object()]
    plain = _slot(1, ar_ids=(4,), last_use=50)
    victim, prio = arb.choose_victim([suspended, plain])
    assert victim is plain
    assert prio == 0
