"""Quarantine AIMD unit tests: strike threshold, sampled admission,
multiplicative increase, additive decrease, release, convergence."""

from repro.pressure import PressurePolicy, QuarantineManager


def _mgr(**overrides):
    kwargs = dict(quarantine_after_trips=2, sample_initial_n=4,
                  sample_max_n=16, release_streak=3)
    kwargs.update(overrides)
    return QuarantineManager(PressurePolicy(**kwargs))


def test_enters_after_strike_threshold():
    mgr = _mgr()
    assert mgr.note_pressure(1, now=100) is None
    assert not mgr.is_quarantined(1)
    assert mgr.note_pressure(1, now=200) == ("enter", 4)
    assert mgr.is_quarantined(1)
    assert mgr.entries[1].entered_at == 200
    # strike counter reset on entry
    assert mgr.strikes[1] == 0


def test_strikes_are_per_ar():
    mgr = _mgr()
    mgr.note_pressure(1, now=0)
    assert mgr.note_pressure(2, now=0) is None
    assert not mgr.is_quarantined(2)


def test_admission_samples_one_in_n():
    mgr = _mgr(quarantine_after_trips=1, sample_initial_n=4)
    mgr.note_pressure(1, now=0)
    decisions = [mgr.admit(1) for _ in range(8)]
    assert decisions == ["monitor", "skip", "skip", "skip",
                         "monitor", "skip", "skip", "skip"]
    entry = mgr.entries[1]
    assert entry.monitored == 2 and entry.skipped == 6


def test_pressure_on_quarantined_ar_doubles_n_capped():
    mgr = _mgr(quarantine_after_trips=1, sample_initial_n=4, sample_max_n=16)
    mgr.note_pressure(1, now=0)
    assert mgr.note_pressure(1, now=1) == ("increase", 8)
    assert mgr.note_pressure(1, now=2) == ("increase", 16)
    assert mgr.note_pressure(1, now=3) == ("increase", 16)  # capped
    assert mgr.entries[1].increases == 3


def test_clean_ends_decrease_additively_then_release():
    mgr = _mgr(quarantine_after_trips=1, sample_initial_n=3,
               release_streak=2)
    mgr.note_pressure(1, now=0)
    assert mgr.note_clean_end(1, now=10) == ("decrease", 2)
    assert mgr.note_clean_end(1, now=20) == ("decrease", 1)
    # n == 1: clean streak builds toward release
    assert mgr.note_clean_end(1, now=30) == ("decrease", 1)
    assert mgr.note_clean_end(1, now=40) == ("release", 1)
    assert not mgr.is_quarantined(1)
    entry = mgr.entries[1]
    assert entry.released and entry.released_at == 40


def test_pressure_resets_clean_streak():
    mgr = _mgr(quarantine_after_trips=1, sample_initial_n=1,
               release_streak=3)
    mgr.note_pressure(1, now=0)
    mgr.note_clean_end(1, now=1)
    mgr.note_clean_end(1, now=2)
    mgr.note_pressure(1, now=3)  # streak back to zero, n doubled
    assert mgr.entries[1].clean_streak == 0
    mgr.note_clean_end(1, now=4)  # n 2 -> 1
    mgr.note_clean_end(1, now=5)
    mgr.note_clean_end(1, now=6)
    assert mgr.note_clean_end(1, now=7) == ("release", 1)


def test_clean_end_of_unquarantined_ar_is_noop():
    mgr = _mgr()
    assert mgr.note_clean_end(1, now=0) is None


def test_settled_and_converged():
    mgr = _mgr(quarantine_after_trips=1)
    mgr.note_pressure(1, now=0)
    # no increases yet: settled by definition
    assert mgr.entries[1].settled and mgr.converged
    mgr.note_pressure(1, now=1)
    assert not mgr.entries[1].settled and not mgr.converged
    # a monitored entry at the new rate settles it again
    mgr.admit(1)
    assert mgr.entries[1].settled and mgr.converged


def test_released_entry_can_be_requarantined():
    mgr = _mgr(quarantine_after_trips=2, sample_initial_n=2,
               release_streak=1)
    mgr.note_pressure(1, now=0)
    mgr.note_pressure(1, now=1)
    mgr.note_clean_end(1, now=2)
    assert mgr.note_clean_end(1, now=3) == ("release", 1)
    # post-release pressure counts as fresh strikes, not an increase
    assert mgr.note_pressure(1, now=4) is None
    assert mgr.note_pressure(1, now=5) == ("enter", 2)
    assert mgr.is_quarantined(1)
