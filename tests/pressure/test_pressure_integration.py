"""Pressure plane end-to-end: slot exhaustion under the arbiter, the
arbiter-disabled regression baseline, quarantine engagement, journal
replay, and chaos-schedule survival (ISSUE 4 satellite 3)."""

import pytest

from repro.bench.soakbench import SLOT_PRESSURE_SRC
from repro.core.config import KivatiConfig, Mode, OptLevel
from repro.core.session import ProtectedProgram
from repro.journal.recorder import JournalRecorder
from repro.pressure import PressurePolicy


@pytest.fixture(scope="module")
def pressure_program():
    return ProtectedProgram(SLOT_PRESSURE_SRC)


def _config(**overrides):
    kwargs = dict(opt=OptLevel.BASE, mode=Mode.PREVENTION, num_cores=4,
                  pressure=PressurePolicy(admission=False))
    kwargs.update(overrides)
    return KivatiConfig(**kwargs)


# ----------------------------------------------------------------------
# slot exhaustion: >4 concurrent watchpoint-demanding ARs per core
# ----------------------------------------------------------------------

@pytest.mark.parametrize("seed", [0, 1, 2])
def test_arbiter_preempts_for_hot_ar_and_denies_quiet_ones(
        pressure_program, seed):
    journal = JournalRecorder()
    report = pressure_program.run(_config(journal=journal, seed=seed))
    stats = report.stats
    assert report.result.output == [25]
    assert not report.result.deadlocked
    # the quiet flood exceeds the 4 watchpoints: denials are recorded
    assert stats.arbiter_denials > 0
    # the hot AR earned priority in burst 1 and preempts in burst 2
    assert stats.arbiter_preemptions >= 1
    # every decision is journaled with its priorities
    arbiter_events = [e for e in journal.events if e.kind == "arbiter"]
    assert len(arbiter_events) == (stats.arbiter_preemptions
                                   + stats.arbiter_denials)
    preempts = [e for e in arbiter_events
                if e.payload["action"] == "preempt"]
    assert preempts and all(
        e.payload["prio"] > e.payload["victim_prio"] for e in preempts)
    denies = [e for e in arbiter_events if e.payload["action"] == "deny"]
    assert all(e.payload["prio"] <= e.payload["victim_prio"]
               for e in denies)
    # preemption is visible degradation: a DegradationRecord per event
    assert len(report.degradations.of_kind("arbiter-preempt")) \
        == stats.arbiter_preemptions
    assert len(report.degradations.of_kind("arbiter-deny")) \
        == stats.arbiter_denials


def test_arbiter_disabled_baseline_fails_open(pressure_program):
    """Regression baseline: without the arbiter the same workload just
    misses (seed behavior), with zero arbiter activity on record."""
    journal = JournalRecorder()
    report = pressure_program.run(_config(
        pressure=PressurePolicy(arbiter=False, admission=False),
        journal=journal, seed=0))
    stats = report.stats
    assert report.result.output == [25]
    assert stats.missed_ars > 0
    assert stats.arbiter_preemptions == 0 and stats.arbiter_denials == 0
    assert not any(e.kind == "arbiter" for e in journal.events)


def test_preempted_victims_become_zombies_not_lost(pressure_program):
    """A preempted AR keeps detection: its tenants go through the zombie
    path (late end_atomic still records violations) instead of
    vanishing."""
    journal = JournalRecorder()
    report = pressure_program.run(_config(journal=journal, seed=0))
    zombifies = sum(1 for e in journal.events if e.kind == "zombify")
    assert zombifies >= report.stats.arbiter_preemptions >= 1


def test_pressure_decisions_are_deterministic(pressure_program):
    j1, j2 = JournalRecorder(), JournalRecorder()
    r1 = pressure_program.run(_config(journal=j1, seed=1))
    r2 = pressure_program.run(_config(journal=j2, seed=1))
    assert r1.stats.as_dict() == r2.stats.as_dict()
    assert [e.key() for e in j1.events] == [e.key() for e in j2.events]


# ----------------------------------------------------------------------
# chaos: the workload completes under every fault schedule with the
# pressure plane on, and invariant 5 holds (decisions journaled, slot
# accounting balanced)
# ----------------------------------------------------------------------

def test_slot_exhaustion_survives_every_chaos_schedule(pressure_program):
    from repro.faults.chaos import builtin_schedules, run_chaos_case

    config = _config()
    failures = []
    for schedule in builtin_schedules():
        if schedule.needs_whitelist_file:
            continue  # whitelist corruption needs an on-disk whitelist
        case = run_chaos_case(pressure_program, schedule.plan, seed=1,
                              config=config)
        if not case.ok:
            failures.append("%s: %s" % (schedule.name,
                                        "; ".join(case.problems)))
    assert not failures, failures


# ----------------------------------------------------------------------
# quarantine engages on real suspension pressure
# ----------------------------------------------------------------------

def test_quarantine_engages_under_tight_timeouts():
    from repro.faults.chaos import CHAOS_SRC

    program = ProtectedProgram(CHAOS_SRC)
    journal = JournalRecorder()
    config = KivatiConfig(
        opt=OptLevel.BASE, mode=Mode.PREVENTION, seed=3,
        suspend_timeout_ns=300,
        pressure=PressurePolicy(quarantine_after_trips=1,
                                adaptive_timeout=False, admission=False),
        journal=journal)
    report = program.run(config)
    stats = report.stats
    assert stats.quarantined_ars > 0
    # sampling actually happened: some entries monitored, some skipped
    assert stats.quarantine_monitored > 0
    assert stats.quarantine_sampled_skips > 0
    # quarantine transitions and sampling decisions are journaled
    actions = {e.payload["action"] for e in journal.events
               if e.kind == "quarantine"}
    assert "enter" in actions
    assert "skip" in actions or "monitor" in actions
    # the plane reports through the run report
    assert report.pressure is not None
    assert report.pressure.quarantine.entries


def test_quarantined_ar_bypasses_breaker_fail_open():
    """Quarantine replaces the breaker's permanent fail-open: a
    quarantined AR still gets monitored entries (1-in-N), where the
    breaker alone would skip it for the whole backoff window."""
    from repro.faults.chaos import CHAOS_SRC

    program = ProtectedProgram(CHAOS_SRC)
    config = KivatiConfig(
        opt=OptLevel.BASE, mode=Mode.PREVENTION, seed=3,
        suspend_timeout_ns=300,
        pressure=PressurePolicy(quarantine_after_trips=1,
                                sample_initial_n=2,
                                adaptive_timeout=False, admission=False))
    report = program.run(config)
    entries = report.pressure.quarantine.entries
    assert entries
    assert any(e.monitored > 0 for e in entries.values())


# ----------------------------------------------------------------------
# journal: pressure events replay frame-for-frame, survive crashes
# ----------------------------------------------------------------------

@pytest.fixture(scope="module")
def recorded_pressure_run(pressure_program):
    from repro.journal.replay import record_run

    return record_run(pressure_program, _config(), seed=1)


def test_pressure_run_replays_deterministically(pressure_program,
                                                recorded_pressure_run):
    from repro.journal.replay import replay_run

    report, recorder = recorded_pressure_run
    assert any(e.kind == "arbiter" for e in recorder.events)
    result = replay_run(pressure_program, recorder)
    assert result.ok, result.describe()
    assert result.verdicts_match


def test_pressure_run_recovers_after_crash(pressure_program,
                                           recorded_pressure_run,
                                           tmp_path):
    from repro.journal.format import JournalWriter
    from repro.journal.recovery import crash_at_frame, recover

    _report, recorder = recorded_pressure_run
    # crash beyond the first arbiter decision so the salvaged prefix
    # includes pressure events
    first_arbiter = next(i for i, e in enumerate(recorder.events)
                         if e.kind == "arbiter")
    frame = min(first_arbiter + 5, len(recorder.events) - 1)
    path = str(tmp_path / "pressure-crash.journal")
    crash = crash_at_frame(pressure_program, _config(seed=1), frame,
                           JournalWriter(path))
    assert crash is not None
    result = recover(pressure_program, path)
    assert result.ok, result.describe()
    assert len(result.salvaged) == frame
    assert any(e.kind == "arbiter" for e in result.salvaged)


# ----------------------------------------------------------------------
# pressure off: bit-identical to the seed behavior
# ----------------------------------------------------------------------

def test_pressure_off_leaves_no_trace(pressure_program):
    journal = JournalRecorder()
    report = pressure_program.run(_config(pressure=None, journal=journal,
                                          seed=0))
    stats = report.stats
    assert report.pressure is None
    for name in ("arbiter_preemptions", "arbiter_denials",
                 "quarantined_ars", "quarantine_monitored",
                 "quarantine_sampled_skips", "admission_sheds",
                 "timeout_extensions", "slots_leaked", "slots_reclaimed"):
        assert getattr(stats, name) == 0, name
    assert not any(e.kind in ("arbiter", "quarantine", "pressure")
                   for e in journal.events)
    # suspend events carry no tmult field when the plane is off (journal
    # byte-compatibility with pre-pressure recordings)
    assert not any("tmult" in e.payload for e in journal.events
                   if e.kind == "suspend")
