"""PressurePlane facade: watermarks, adaptive timeout, bounded history,
policy gating."""

from repro.pressure import PressurePlane, PressurePolicy


def test_shed_reason_suspended_watermark():
    plane = PressurePlane(PressurePolicy(suspended_watermark=4,
                                         latency_watermark_ns=10_000))
    assert plane.shed_reason(3, 0) is None
    assert plane.shed_reason(4, 0) == "suspended-watermark"


def test_shed_reason_latency_watermark():
    plane = PressurePlane(PressurePolicy(suspended_watermark=100,
                                         latency_watermark_ns=10_000))
    assert plane.shed_reason(0, 9_999) is None
    assert plane.shed_reason(0, 10_000) == "latency-watermark"


def test_admission_disabled_never_sheds():
    plane = PressurePlane(PressurePolicy(admission=False,
                                         suspended_watermark=1,
                                         latency_watermark_ns=1))
    assert plane.shed_reason(10**6, 10**9) is None


def test_timeout_multiplier_scales_linearly_and_saturates():
    plane = PressurePlane(PressurePolicy(latency_ref_ns=1_000,
                                         timeout_max_scale=4))
    assert plane.timeout_multiplier(0) == 1
    assert plane.timeout_multiplier(999) == 1
    assert plane.timeout_multiplier(1_000) == 2
    assert plane.timeout_multiplier(3_500) == 4
    assert plane.timeout_multiplier(10**9) == 4  # saturates


def test_timeout_multiplier_disabled_is_identity():
    plane = PressurePlane(PressurePolicy(adaptive_timeout=False,
                                         latency_ref_ns=1))
    assert plane.timeout_multiplier(10**9) == 1


def test_history_is_bounded_and_counts_drops():
    plane = PressurePlane(PressurePolicy(max_history=3))
    for i in range(5):
        plane.note(i, "test", "event", n=i)
    assert len(plane.history) == 3
    assert plane.history_dropped == 2
    assert "(+2 dropped)" in plane.describe()


def test_quarantine_facade_gated_by_policy():
    plane = PressurePlane(PressurePolicy(quarantine=False))
    assert plane.note_pressure(1, 0) is None
    assert plane.note_pressure(1, 1) is None
    assert not plane.is_quarantined(1)
    assert plane.note_clean_end(1, 2) is None


def test_quarantine_decisions_land_in_history():
    plane = PressurePlane(PressurePolicy(quarantine_after_trips=1))
    plane.note_pressure(5, 100)
    assert any(component == "quarantine" and action == "enter"
               for _t, component, action, _d in plane.history)


def test_converged_with_no_entries():
    assert PressurePlane().quarantine_converged
