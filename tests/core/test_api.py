"""Public API tests."""

import pytest

from repro import (
    Kivati,
    KivatiConfig,
    Mode,
    OptLevel,
    OptimizationConfig,
    annotate_source,
    run_protected,
    run_vanilla,
)
from repro.core.session import ProtectedProgram
from repro.errors import ConfigError

SRC = """
int x = 0;
void bump() {
    int t = x;
    x = t + 1;
}
void main() {
    bump();
    bump();
    output(x);
}
"""


def test_annotate_source_returns_text_and_registry():
    text, result = annotate_source(SRC)
    assert "begin_atomic(" in text
    assert result.num_ars >= 1


def test_run_protected_and_vanilla_agree_on_sequential_code():
    vanilla = run_vanilla(SRC)
    report = run_protected(SRC)
    assert vanilla.output == report.output == [2]


def test_facade_caches_programs():
    kivati = Kivati()
    pp1 = kivati.protect(SRC)
    pp2 = kivati.protect(SRC)
    assert pp1 is pp2


def test_facade_run_with_overrides():
    kivati = Kivati(KivatiConfig(opt=OptLevel.BASE))
    report = kivati.run(SRC, seed=2, opt=OptLevel.OPTIMIZED)
    assert report.output == [2]
    assert report.config.opt.o1_userspace


def test_overhead_positive_for_instrumented_code():
    kivati = Kivati(KivatiConfig(opt=OptLevel.BASE))
    assert kivati.overhead(SRC) > 0


def test_protected_program_exposes_registry():
    pp = ProtectedProgram(SRC)
    assert set(pp.ar_table) == set(
        info.ar_id for info in pp.ar_table.values())
    assert pp.num_ars == len(pp.ar_table)


def test_config_validation():
    with pytest.raises(ConfigError):
        KivatiConfig(num_watchpoints=0)
    with pytest.raises(ConfigError):
        KivatiConfig(num_cores=0)
    with pytest.raises(ConfigError):
        KivatiConfig(pause_probability=1.5)
    with pytest.raises(ConfigError):
        KivatiConfig(suspend_timeout_ns=0)
    with pytest.raises(ConfigError):
        KivatiConfig(suspend_timeout_ns="10ms")
    assert KivatiConfig(suspend_timeout_ns=1).suspend_timeout_ns == 1


def test_config_copy_overrides():
    config = KivatiConfig(seed=1)
    other = config.copy(seed=9, mode=Mode.BUG_FINDING)
    assert other.seed == 9
    assert other.mode == Mode.BUG_FINDING
    assert config.seed == 1


def test_opt_levels_map_to_flags():
    base = OptimizationConfig.from_level(OptLevel.BASE)
    assert not any([base.o1_userspace, base.o2_lazy_free,
                    base.o3_local_disable, base.o4_syncvars])
    full = OptimizationConfig.from_level(OptLevel.OPTIMIZED)
    assert all([full.o1_userspace, full.o2_lazy_free,
                full.o3_local_disable, full.o4_syncvars])
    null = OptimizationConfig.from_level(OptLevel.NULL_SYSCALL)
    assert null.null_syscall


def test_null_syscall_disables_detection_flags():
    config = KivatiConfig(opt=OptLevel.NULL_SYSCALL)
    assert not config.detection_enabled
    assert not config.prevention_enabled


def test_report_summary_and_crossings():
    report = run_protected(SRC, KivatiConfig(opt=OptLevel.BASE))
    assert "crossings" in report.summary()
    assert report.crossings_per_second() > 0
    assert report.false_positives() == report.violated_ars()
