"""Exception hierarchy tests."""

import pytest

from repro import errors


def test_hierarchy():
    assert issubclass(errors.LexError, errors.MiniCError)
    assert issubclass(errors.ParseError, errors.MiniCError)
    assert issubclass(errors.TypeError_, errors.MiniCError)
    assert issubclass(errors.MiniCError, errors.ReproError)
    assert issubclass(errors.MemoryFault, errors.MachineError)
    assert issubclass(errors.DeadlockError, errors.MachineError)
    assert issubclass(errors.StepLimitExceeded, errors.MachineError)
    assert issubclass(errors.MachineError, errors.ReproError)
    assert issubclass(errors.ConfigError, errors.ReproError)
    assert issubclass(errors.WorkloadError, errors.ReproError)


def test_minic_error_position_formatting():
    err = errors.ParseError("boom", 7, 3)
    assert "line 7:3" in str(err)
    assert err.line == 7 and err.col == 3
    plain = errors.ParseError("boom")
    assert "line" not in str(plain)


def test_memory_fault_carries_address():
    err = errors.MemoryFault(42)
    assert err.address == 42
    assert "42" in str(err)


def test_catching_base_covers_everything():
    for exc in (errors.LexError("x"), errors.MemoryFault(1),
                errors.ConfigError("c"), errors.CompileError("k")):
        with pytest.raises(errors.ReproError):
            raise exc
