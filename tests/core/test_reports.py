"""Violation record / log / run-report unit tests."""

from repro.core.reports import RunReport, ViolationLog, ViolationRecord
from repro.minic.ast import AccessKind

R = AccessKind.READ
W = AccessKind.WRITE


def make_record(ar_id=1, prevented=True):
    return ViolationRecord(
        ar_id=ar_id, var="x", func="f", addr=1024, local_tid=1, remote_tid=2,
        first_kind=R, remote_kind=W, second_kind=W, remote_pc=17,
        remote_location="g+2 (line 9)", local_line_first=3,
        local_line_second=5, time_ns=12_000, prevented=prevented,
    )


def test_interleaving_string():
    assert make_record().interleaving == "(R, W, W)"


def test_describe_mentions_everything_the_paper_logs():
    text = make_record().describe()
    # "records the thread IDs, address of the shared variable and program
    # counters of the accesses" (Section 2.2)
    assert "tid 1" in text and "tid 2" in text
    assert "1024" in text
    assert "g+2" in text
    assert "(R, W, W)" in text


def test_unprevented_marker():
    assert "NOT PREVENTED" in make_record(prevented=False).describe()
    assert "NOT PREVENTED" not in make_record(prevented=True).describe()


def test_log_unique_ar_counting():
    log = ViolationLog()
    log.add(make_record(1))
    log.add(make_record(1))
    log.add(make_record(2))
    assert len(log) == 3
    assert log.violated_ar_ids() == {1, 2}
    assert len(log.for_ar(1)) == 2


def test_false_positive_excludes_known_bugs():
    log = ViolationLog()
    log.add(make_record(1))
    log.add(make_record(2))

    class FakeResult:
        time_ns = 1_000_000
        output = []

    report = RunReport(FakeResult(), None, log, None, {})
    assert report.false_positives(buggy_ar_ids={2}) == {1}
    assert report.false_positives() == {1, 2}


def test_degradation_log_bounded_with_drop_counter():
    from repro.core.reports import DegradationLog, DegradationRecord

    log = DegradationLog(max_records=3)
    for i in range(5):
        log.add(DegradationRecord("arbiter-deny", time_ns=i, ar=i))
    assert len(log) == 3
    assert log.dropped == 2
    # the retained prefix is the oldest records (drop-on-full, like the
    # trace ring buffer's eviction accounting)
    assert [r.time_ns for r in log.records] == [0, 1, 2]
    assert log.kinds() == {"arbiter-deny"}
