"""CLI tests."""

import pytest

from repro.cli import main

SRC = """
int x = 0;
void main() {
    int t = x;
    x = t + 1;
    output(x);
}
"""


@pytest.fixture
def program_file(tmp_path):
    path = tmp_path / "prog.c"
    path.write_text(SRC)
    return str(path)


def test_annotate_command(program_file, capsys):
    assert main(["annotate", program_file]) == 0
    out = capsys.readouterr().out
    assert "begin_atomic(" in out
    assert "atomic regions" in out


def test_run_command(program_file, capsys):
    assert main(["run", program_file]) == 0
    out = capsys.readouterr().out
    assert "output: [1]" in out


def test_vanilla_command(program_file, capsys):
    assert main(["vanilla", program_file]) == 0
    out = capsys.readouterr().out
    assert "output: [1]" in out


def test_run_with_options(program_file, capsys):
    assert main(["run", program_file, "--opt", "base", "--seed", "3",
                 "--watchpoints", "2"]) == 0
    assert "output: [1]" in capsys.readouterr().out


def test_apps_command(capsys):
    assert main(["apps"]) == 0
    out = capsys.readouterr().out
    for name in ("NSS", "VLC", "Webstone", "TPC-W", "SPEC OMP"):
        assert name in out


def test_table_command_static(capsys):
    assert main(["table", "1"]) == 0
    out = capsys.readouterr().out
    assert "x86" in out


def test_table_command_rejects_unknown(capsys):
    assert main(["table", "42"]) == 2


def test_bugs_single_id(capsys):
    assert main(["bugs", "19938", "--bug-finding", "--attempts", "15"]) == 0
    out = capsys.readouterr().out
    assert "19938" in out
