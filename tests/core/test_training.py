"""Whitelist training tests."""

from repro.core.config import KivatiConfig, Mode, OptLevel
from repro.core.session import ProtectedProgram
from repro.core.training import TrainingResult, train

# a program with a benign racy counter: violations occur but the program
# is correct by design (Figure 5 spirit)
BENIGN = """
int stats = 0;
int done = 0;

void racy_count(int n) {
    int i = 0;
    while (i < n) {
        int pad = 0;
        int acc = i;
        while (pad < 12) { acc = acc * 3 + pad; pad = pad + 1; }
        int t = stats;
        stats = t + 1;
        i = i + 1;
    }
    atomic_add(&done, 1);
}

void main() {
    spawn racy_count(20);
    spawn racy_count(20);
    join();
    output(done);
}
"""


def config(mode=Mode.PREVENTION):
    return KivatiConfig(mode=mode, opt=OptLevel.OPTIMIZED,
                        suspend_timeout_ns=10_000, pause_ns=20_000,
                        pause_probability=0.3)


def test_training_accumulates_whitelist():
    pp = ProtectedProgram(BENIGN)
    result = train(pp, config(), iterations=6)
    assert isinstance(result, TrainingResult)
    assert len(result.iterations) == 6
    # something benign must have been flagged at least once
    assert sum(result.iterations) >= 1
    assert len(result.whitelist) == sum(result.iterations)


def test_training_converges():
    pp = ProtectedProgram(BENIGN)
    result = train(pp, config(), iterations=8)
    # late iterations should find nothing new
    assert result.iterations[-1] == 0
    assert result.converged_after is not None


def test_trained_whitelist_silences_false_positives():
    pp = ProtectedProgram(BENIGN)
    result = train(pp, config(Mode.BUG_FINDING), iterations=8)
    trained = result.whitelist
    final = pp.run(config().copy(whitelist=trained), seed=4242)
    assert final.false_positives() - set(trained) == set()


def test_buggy_ars_never_whitelisted():
    pp = ProtectedProgram(BENIGN)
    stats_ars = [i for i, info in pp.ar_table.items()
                 if info.var == "stats"]
    result = train(pp, config(Mode.BUG_FINDING), iterations=6,
                   buggy_ar_ids=stats_ars)
    assert not (set(result.whitelist) & set(stats_ars))
