"""Execution-trace forensics tests."""

from repro.core.config import KivatiConfig, OptLevel
from repro.core.session import ProtectedProgram
from repro.core.tracing import Trace

RACY = """
int x = 0;
void local_thread() {
    int t = x;
    sleep(40000);
    x = t + 1;
}
void remote_thread() {
    sleep(15000);
    x = 99;
}
void main() {
    spawn local_thread();
    spawn remote_thread();
    join();
    output(x);
}
"""


def run_traced(src=RACY, **over):
    trace = Trace()
    pp = ProtectedProgram(src)
    report = pp.run(KivatiConfig(opt=OptLevel.BASE, trace=trace, **over),
                    seed=1)
    return trace, report


def test_trace_records_lifecycle_events():
    trace, report = run_traced()
    kinds = {e.kind for e in trace.events}
    assert {"begin", "end", "trap", "undo", "suspend", "wake",
            "violation"} <= kinds


def test_trace_event_ordering_is_chronological_per_thread():
    trace, _ = run_traced()
    for tid in {e.tid for e in trace.events}:
        times = [e.time_ns for e in trace.filter(tid=tid)]
        assert times == sorted(times)


def test_trace_filter_by_ar():
    trace, report = run_traced()
    violation = next(iter(report.violations))
    events = trace.filter(ar_id=violation.ar_id)
    assert any(e.kind == "begin" for e in events)
    assert any(e.kind == "violation" for e in events)


def test_violation_forensics_renders_context():
    trace, report = run_traced()
    violation = next(iter(report.violations))
    text = trace.render_violation(violation)
    assert "violation:" in text
    assert "undo" in text
    assert "suspend" in text


def test_trace_bounded_memory():
    trace = Trace(max_events=3)
    for i in range(10):
        trace.emit(i, 0, "begin", ar=1)
    assert len(trace) == 3
    assert trace.dropped == 7
    assert "dropped" in trace.render()


def test_untraced_run_unaffected():
    pp = ProtectedProgram(RACY)
    plain = pp.run(KivatiConfig(opt=OptLevel.BASE), seed=1)
    traced, report = run_traced()
    assert report.output == plain.output
    assert report.time_ns == plain.time_ns
