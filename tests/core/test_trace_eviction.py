"""Ring-buffer eviction must be observable (ISSUE 3 satellite): a trace
that dropped events has to say so in KivatiStats and the RunReport."""

from repro.core.config import KivatiConfig, Mode, OptLevel
from repro.core.session import ProtectedProgram
from repro.core.tracing import Trace

SRC = """
int x = 0;

void worker() {
    int i = 0;
    while (i < 5) {
        int t = x;
        x = t + 1;
        i = i + 1;
    }
}

void main() {
    spawn worker();
    spawn worker();
    join();
    output(x);
}
"""


def _run(trace):
    pp = ProtectedProgram(SRC)
    return pp.run(KivatiConfig(opt=OptLevel.BASE, mode=Mode.PREVENTION,
                               trace=trace))


def test_eviction_is_counted_and_reported():
    trace = Trace(max_events=3)
    report = _run(trace)
    assert trace.dropped > 0
    assert report.stats.trace_dropped_events == trace.dropped
    assert "trace_dropped=%d" % trace.dropped in report.summary()
    assert "ring buffer full" in report.summary()


def test_no_eviction_stays_silent():
    report = _run(Trace())
    assert report.stats.trace_dropped_events == 0
    assert "trace_dropped" not in report.summary()
    report = _run(None)
    assert report.stats.trace_dropped_events == 0
