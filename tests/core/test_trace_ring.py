"""Boundary tests for the ``Trace`` ring buffer (obs satellite):
dropped-count accuracy at the exact-capacity and capacity+1 edges, and
PYTHONHASHSEED-independent event ordering in the rendered output."""

import os
import subprocess
import sys

from repro.core.tracing import Trace


def _fill(trace, n):
    for i in range(n):
        trace.emit(i * 10, i % 3, "begin", ar=i, addr=1000 + i)


def test_exact_capacity_drops_nothing():
    trace = Trace(max_events=5)
    _fill(trace, 5)
    assert len(trace) == 5
    assert trace.dropped == 0
    assert "dropped" not in trace.render()


def test_capacity_plus_one_drops_exactly_one():
    trace = Trace(max_events=5)
    _fill(trace, 6)
    assert len(trace) == 5
    assert trace.dropped == 1
    assert "1 events dropped (max_events=5)" in trace.render()


def test_eviction_order_keeps_earliest_events():
    # the buffer favors the run's beginning: once full, later emits are
    # counted and discarded, never silently swapped in
    trace = Trace(max_events=3)
    _fill(trace, 10)
    assert [e.time_ns for e in trace.events] == [0, 10, 20]
    assert trace.dropped == 7


def test_dropped_counter_survives_many_overflows():
    trace = Trace(max_events=1)
    _fill(trace, 100)
    assert len(trace) == 1
    assert trace.dropped == 99


def test_filter_and_around_see_only_retained_events():
    trace = Trace(max_events=4)
    _fill(trace, 8)
    assert len(trace.filter(kinds=("begin",))) == 4
    assert len(trace.around(0, window_ns=1000)) == 4


_RENDER_SCRIPT = """\
from repro.core.tracing import Trace

trace = Trace(max_events=4)
for i in range(6):
    trace.emit(i * 7, i % 2, "trap",
               ar=i, addr=2000 + i, zkey=i, akey=-i, mkey=i * i)
print(trace.render())
"""


def _render_under_hashseed(seed):
    env = dict(os.environ, PYTHONHASHSEED=seed,
               PYTHONPATH=os.pathsep.join(sys.path))
    return subprocess.run(
        [sys.executable, "-c", _RENDER_SCRIPT], env=env,
        capture_output=True, text=True, check=True).stdout


def test_render_is_hashseed_independent():
    # details dicts are rendered via sorted() and events live in an
    # append-ordered list, so the forensic listing must be byte-stable
    # across interpreter hash randomization
    outputs = {_render_under_hashseed(seed) for seed in ("0", "12345")}
    assert len(outputs) == 1
    out = outputs.pop()
    assert "akey" in out
    assert "2 events dropped (max_events=4)" in out
