"""Simulated-clock accounting: runtime must equal the sum of modelled
costs for deterministic single-threaded programs."""

from repro.compiler.bytecode import Op
from repro.compiler.codegen import compile_program
from repro.machine.costs import CostModel
from repro.machine.machine import Machine
from repro.minic.parser import parse


def test_straightline_time_is_sum_of_instruction_costs():
    src = """
    int g = 0;
    void main() {
        g = 1;
        g = g + 2;
        output(g);
    }
    """
    costs = CostModel(timer_tick=10**9)  # no ticks during this tiny run
    program = compile_program(parse(src))
    machine = Machine(program, num_cores=1, costs=costs)
    result = machine.run(raise_on_deadlock=True)

    expected = costs.context_switch  # initial schedule of main
    for instr in program.instrs:
        op = instr.op
        if op in (Op.LD, Op.ST):
            expected += costs.mem_instr
        elif op in (Op.MUL, Op.DIV, Op.MOD):
            expected += costs.mul_div
        elif op in (Op.CALL, Op.RET, Op.ALLOC):
            expected += costs.call
        else:
            expected += costs.instr
    # scheduling jitter adds a bounded few ns at the context switch
    assert 0 <= result.time_ns - expected <= 31


def test_sleep_duration_accounted_exactly():
    src = "void main() { sleep(123456); }"
    costs = CostModel(timer_tick=10**9)
    machine = Machine(compile_program(parse(src)), num_cores=1, costs=costs)
    result = machine.run(raise_on_deadlock=True)
    assert result.time_ns >= 123456
    assert result.time_ns <= 123456 + 10_000


def test_timer_ticks_charged():
    src = """
    void main() {
        int i = 0;
        while (i < 2000) { i = i + 1; }
    }
    """
    fast = Machine(compile_program(parse(src)), num_cores=1,
                   costs=CostModel(timer_tick=10**9)).run()
    ticked = Machine(compile_program(parse(src)), num_cores=1,
                     costs=CostModel(timer_tick=1000,
                                     timer_tick_cost=100)).run()
    assert ticked.time_ns > fast.time_ns
    # roughly one tick charge per tick interval
    extra = ticked.time_ns - fast.time_ns
    approx_ticks = fast.time_ns // 1000
    assert extra >= approx_ticks * 100 * 0.5


def test_instruction_counts_match_across_cost_models():
    src = """
    void main() {
        int i = 0;
        while (i < 100) { i = i + 1; }
    }
    """
    a = Machine(compile_program(parse(src)), costs=CostModel(instr=1)).run()
    b = Machine(compile_program(parse(src)), costs=CostModel(instr=9)).run()
    assert a.instr_count == b.instr_count
