"""ISA edge-case tests."""

import pytest

from repro.compiler.codegen import compile_program
from repro.errors import MachineError, StackOverflow
from repro.machine.machine import Machine
from repro.minic.parser import parse


def run(src, **kwargs):
    machine = Machine(compile_program(parse(src)), **kwargs)
    return machine.run(raise_on_deadlock=True)


def test_deep_recursion_overflows_cleanly():
    result = run("""
    int depth(int n) {
        if (n == 0) { return 0; }
        return depth(n - 1) + 1;
    }
    void main() { output(depth(100000)); }
    """)
    assert isinstance(result.fault, StackOverflow)


def test_indirect_call_bad_index_raises():
    src = """
    int hook = 9999;
    void main() { invoke(&hook); }
    """
    machine = Machine(compile_program(parse(src)))
    with pytest.raises(MachineError):
        machine.run()


def test_negative_modulo_matches_python():
    assert run("""
    void main() {
        int a = 0 - 7;
        output(a % 3);
        output(a / 3);
    }
    """).output == [-7 % 3, -7 // 3]


def test_unlock_without_waiters_is_cheap_noop():
    result = run("""
    int m = 0;
    void main() {
        lock(&m);
        unlock(&m);
        lock(&m);
        unlock(&m);
        output(m);
    }
    """)
    assert result.output == [0]


def test_lock_word_holds_owner_tid_plus_one():
    result = run("""
    int m = 0;
    void main() {
        lock(&m);
        output(m);
        unlock(&m);
        output(m);
    }
    """)
    assert result.output == [1, 0]  # main is tid 0


def test_yield_allows_peer_progress():
    result = run("""
    int turn = 0;
    void ping(int n) {
        int i = 0;
        while (i < n) {
            while (turn != 0) { yield(); }
            output(1);
            turn = 1;
            i = i + 1;
        }
    }
    void pong(int n) {
        int i = 0;
        while (i < n) {
            while (turn != 1) { yield(); }
            output(2);
            turn = 0;
            i = i + 1;
        }
    }
    void main() {
        spawn ping(3);
        spawn pong(3);
        join();
    }
    """, num_cores=1)
    assert result.output == [1, 2, 1, 2, 1, 2]


def test_nested_spawn_join_hierarchy():
    result = run("""
    int total = 0;
    void leafw(int v) { atomic_add(&total, v); }
    void mid(int v) {
        spawn leafw(v);
        spawn leafw(v);
        join();
        atomic_add(&total, 100);
    }
    void main() {
        spawn mid(1);
        spawn mid(2);
        join();
        output(total);
    }
    """)
    assert result.output == [1 + 1 + 2 + 2 + 200]


def test_output_order_single_thread_is_program_order():
    result = run("""
    void main() {
        int i = 0;
        while (i < 5) { output(i); i = i + 1; }
    }
    """)
    assert result.output == [0, 1, 2, 3, 4]


def test_alloc_in_threads_is_disjoint():
    result = run("""
    int ok = 0;
    void w(int v) {
        int *p = alloc(4);
        p[0] = v;
        p[3] = v * 2;
        sleep(5000);
        if (p[0] == v && p[3] == v * 2) {
            atomic_add(&ok, 1);
        }
    }
    void main() {
        spawn w(5);
        spawn w(7);
        spawn w(9);
        join();
        output(ok);
    }
    """)
    assert result.output == [3]
