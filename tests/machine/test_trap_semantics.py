"""Hardware trap-delivery semantics at machine level (without Kivati)."""

from repro.compiler.bytecode import Op
from repro.compiler.codegen import compile_program
from repro.machine.machine import Machine
from repro.machine.runtime_iface import BaseRuntime
from repro.minic.parser import parse


class RecordingRuntime(BaseRuntime):
    """Arms a watchpoint directly and records delivered traps."""

    def __init__(self, watch_addr_name, watch_read, watch_write):
        self.name = watch_addr_name
        self.watch_read = watch_read
        self.watch_write = watch_write
        self.traps = []

    def attach(self, machine):
        self.machine = machine
        addr = machine.program.global_addr(self.name)
        for core in machine.cores:
            core.dr.slots[0].configure(addr, 1, self.watch_read,
                                       self.watch_write)

    def on_watchpoint_trap(self, core, thread, after_pc, hit_slots, accesses):
        self.traps.append((thread.tid, after_pc, tuple(hit_slots),
                           tuple(accesses)))
        return 0


def run_with_watch(src, name, watch_read=True, watch_write=True,
                   trap_before=False):
    program = compile_program(parse(src))
    runtime = RecordingRuntime(name, watch_read, watch_write)
    machine = Machine(program, runtime=runtime, trap_before=trap_before)
    result = machine.run(raise_on_deadlock=True)
    return program, runtime, result


SRC = """
int x = 0;
void main() {
    x = 5;
    int t = x;
    output(t);
}
"""


def test_trap_after_reports_successor_pc():
    program, runtime, result = run_with_watch(SRC, "x")
    assert result.output == [5]
    assert len(runtime.traps) == 2  # the write and the read
    for tid, after_pc, slots, accesses in runtime.traps:
        assert slots == (0,)
        # the after-pc must map back through the memory map
        faulting = program.memory_map.faulting_pc(after_pc)
        assert faulting == after_pc - 1
        assert program.instrs[faulting].op in (Op.LD, Op.ST)


def test_kind_filtering_write_only():
    _, runtime, _ = run_with_watch(SRC, "x", watch_read=False,
                                   watch_write=True)
    assert len(runtime.traps) == 1


def test_kind_filtering_read_only():
    _, runtime, _ = run_with_watch(SRC, "x", watch_read=True,
                                   watch_write=False)
    assert len(runtime.traps) == 1


def test_trap_before_fires_with_accesses_only():
    class BeforeRuntime(RecordingRuntime):
        def on_watchpoint_trap(self, core, thread, after_pc, hit_slots,
                               accesses):
            self.traps.append((after_pc, tuple(accesses)))
            # disarm so the instruction commits on the (non-)retry
            for c in self.machine.cores:
                c.dr.slots[0].disable()
            return 0

    program = compile_program(parse(SRC))
    runtime = BeforeRuntime("x", True, True)
    machine = Machine(program, runtime=runtime, trap_before=True)
    result = machine.run(raise_on_deadlock=True)
    assert result.output == [5]
    after_pc, accesses = runtime.traps[0]
    # trap-before: no after-pc (the instruction has not committed)
    assert after_pc is None
    assert accesses  # the hardware knows the would-be accesses


def test_unwatched_addresses_never_trap():
    src = """
    int x = 0;
    int y = 0;
    void main() {
        y = 1;
        y = y + 1;
        output(y);
    }
    """
    _, runtime, result = run_with_watch(src, "x")
    assert result.output == [2]
    assert runtime.traps == []
