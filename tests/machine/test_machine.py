"""Machine-level behaviour: scheduling, events, determinism, faults."""

import pytest

from repro.compiler.codegen import compile_program
from repro.errors import DeadlockError, MemoryFault, StepLimitExceeded
from repro.machine.costs import CostModel
from repro.machine.machine import Machine
from repro.machine.threads import ThreadState
from repro.minic.parser import parse


def build(src):
    return compile_program(parse(src))


def run(src, **kwargs):
    machine = Machine(build(src), **kwargs)
    return machine.run(raise_on_deadlock=True), machine


def test_runs_are_deterministic_per_seed():
    src = """
    int total = 0;
    void w(int n) {
        int i = 0;
        while (i < n) { atomic_add(&total, rand(5)); i = i + 1; }
    }
    void main() { spawn w(50); spawn w(50); join(); output(total); }
    """
    r1, _ = run(src, seed=11)
    r2, _ = run(src, seed=11)
    r3, _ = run(src, seed=12)
    assert r1.output == r2.output
    assert r1.time_ns == r2.time_ns
    assert r1.instr_count == r2.instr_count
    # different seeds change program-visible randomness
    assert r1.output != r3.output or r1.time_ns != r3.time_ns


def test_null_pointer_dereference_sets_fault():
    result, _ = run("""
    int *p;
    void main() { output(*p); }
    """)
    assert isinstance(result.fault, MemoryFault)
    assert result.output == []


def test_deadlock_detected():
    src = """
    int a = 0;
    int b = 0;
    void t1() { lock(&a); sleep(5000); lock(&b); unlock(&b); unlock(&a); }
    void t2() { lock(&b); sleep(5000); lock(&a); unlock(&a); unlock(&b); }
    void main() { spawn t1(); spawn t2(); join(); }
    """
    with pytest.raises(DeadlockError):
        run(src)
    machine = Machine(build(src))
    result = machine.run(raise_on_deadlock=False)
    assert result.deadlocked


def test_step_limit_guards_infinite_loops():
    with pytest.raises(StepLimitExceeded):
        run("void main() { while (1) { } }", max_steps=10_000)


def test_more_threads_than_cores_all_complete():
    result, _ = run("""
    int done = 0;
    void w(int n) {
        int i = 0;
        int acc = 0;
        while (i < n) { acc = acc + i; i = i + 1; }
        atomic_add(&done, 1);
    }
    void main() {
        spawn w(100); spawn w(100); spawn w(100);
        spawn w(100); spawn w(100); spawn w(100);
        join();
        output(done);
    }
    """, num_cores=2)
    assert result.output == [6]
    assert result.threads == 7


def test_single_core_machine_works():
    result, _ = run("""
    int x = 0;
    void w() { x = x + 1; }
    void main() { spawn w(); spawn w(); join(); output(x); }
    """, num_cores=1)
    assert result.output == [2]


def test_two_cores_run_in_parallel():
    # two pure-compute threads should take about half the serial time
    src = """
    void w(int n) {
        int i = 0;
        int acc = 1;
        while (i < n) { acc = (acc * 3 + i) % 997; i = i + 1; }
    }
    void main() { spawn w(3000); spawn w(3000); join(); }
    """
    serial, _ = run(src, num_cores=1)
    parallel, _ = run(src, num_cores=2)
    assert parallel.time_ns < serial.time_ns * 0.7


def test_time_advances_with_sleep():
    result, _ = run("void main() { sleep(1000000); }")
    assert result.time_ns >= 1_000_000


def test_contended_lock_blocks_and_wakes():
    result, machine = run("""
    int m = 0;
    int order[4];
    int pos = 0;
    void w(int id) {
        lock(&m);
        order[pos] = id;
        pos = pos + 1;
        sleep(20000);
        unlock(&m);
    }
    void main() {
        spawn w(1);
        spawn w(2);
        join();
        output(order[0] + order[1] * 10);
        output(pos);
    }
    """)
    assert result.output[1] == 2
    assert sorted(divmod(result.output[0], 10)) in ([1, 2],)
    assert all(t.state == ThreadState.DONE for t in machine.threads.values())


def test_kernel_entries_counted():
    result, _ = run("void main() { sleep(100); sleep(100); }")
    assert result.kernel_entries >= 2


def test_cost_model_scales_runtime():
    src = "void main() { int i = 0; while (i < 1000) { i = i + 1; } }"
    fast, _ = run(src, costs=CostModel(instr=1))
    slow, _ = run(src, costs=CostModel(instr=4))
    assert slow.time_ns > fast.time_ns * 2


def test_event_scheduling_and_cancel():
    machine = Machine(build("void main() { sleep(50000); }"))
    fired = []
    eid1 = machine.schedule_event(1000, lambda m: fired.append(1))
    eid2 = machine.schedule_event(2000, lambda m: fired.append(2))
    machine.cancel_event(eid2)
    machine.run()
    assert fired == [1]
