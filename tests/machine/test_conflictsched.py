"""Conflict-aware scheduling: policy decisions, determinism, snapshots.

The policy's contract has three legs, each pinned here:

- the *decision* logic (stub-machine unit tests): oversubscription gate,
  reorder over a conflicting head, bounded defers forcing FIFO, the
  all-conflict stall, and the adaptive stall self-disable;
- *transparency* when inert: with a core per thread the policy must not
  change a single journal frame;
- *replayability* when active: a conflict-scheduled recording replays
  pinned, csched frames and all, and a version-2 snapshot (predating
  ``conflict_sched``) still rebuilds a config.
"""

from collections import deque

import pytest

from repro.analysis.footprint import Footprint
from repro.core.config import KivatiConfig
from repro.core.session import ProtectedProgram
from repro.journal.replay import first_divergence, record_run, replay_run
from repro.journal.snapshot import (SNAPSHOT_VERSION, config_from_snapshot,
                                    config_snapshot)
from repro.machine.conflictsched import (MAX_DEFERS, PROBATION_PREVIEWS,
                                         STALL, STALL_BUDGET_MAX,
                                         ConflictPolicy)
from repro.machine.costs import CostModel
from repro.machine.threads import ThreadState
from repro.runtime.stats import KivatiStats

CONTENDED = """
int x;
void worker() {
    int t = x;
    x = t + 1;
}
void main() {
    spawn worker(); spawn worker(); spawn worker(); spawn worker();
}
"""

MIXED = """
int x;
int y;
void fx() {
    int t = x;
    x = t + 1;
}
void fy() {
    int t = y;
    y = t + 1;
}
void main() { spawn fx(); spawn fx(); spawn fy(); spawn fy(); }
"""


# ---------------------------------------------------------------------------
# Stub-machine unit tests for the decision logic

class _Thread:
    def __init__(self, tid, state=ThreadState.RUNNABLE):
        self.tid = tid
        self.state = state


class _Core:
    def __init__(self, index, thread=None):
        self.index = index
        self.thread = thread
        self.clock = 0


class _Kernel:
    def __init__(self, ar_tables):
        self.ar_tables = ar_tables


class _Machine:
    def __init__(self, run_queue, threads, cores, thread_funcs):
        self.run_queue = deque(run_queue)
        self.threads = threads
        self.cores = cores
        self.thread_funcs = thread_funcs
        self.journal = None


FP_X = Footprint(reads=("x",), writes=("x",))
FP_Y = Footprint(reads=("y",), writes=("y",))


def _policy(ar_tables=None, func_footprints=None, footprints=None):
    return ConflictPolicy(footprints or {1: FP_X},
                          func_footprints or {},
                          _Kernel(ar_tables or {}), KivatiStats())


def _contended_machine(extra_runnable=2):
    """Core 1 runs tid 2 (inside AR 1 over x); tids 3.. are queued."""
    threads = {2: _Thread(2, ThreadState.RUNNING)}
    queue = []
    for tid in range(3, 3 + extra_runnable):
        threads[tid] = _Thread(tid)
        queue.append(tid)
    busy = _Core(1, threads[2])
    idle = _Core(0)
    funcs = {tid: "wx" for tid in threads}
    return _Machine(queue, threads, [idle, busy], funcs), idle


def test_single_candidate_returned_directly():
    machine, core = _contended_machine(extra_runnable=1)
    policy = _policy(ar_tables={2: {1: None}},
                     func_footprints={"wx": FP_X})
    assert policy.preview(machine, core) == 3
    assert policy.stats.conflict_sched_decisions == 0


def test_gate_keeps_policy_inert_without_oversubscription():
    machine, core = _contended_machine(extra_runnable=2)
    machine.cores.append(_Core(2))  # 3 cores, 3 live threads
    policy = _policy(ar_tables={2: {1: None}},
                     func_footprints={"wx": FP_X})
    assert policy.preview(machine, core) == 3  # FIFO head despite conflict
    assert policy.stats.conflict_sched_decisions == 0


def test_reorders_over_conflicting_head():
    machine, core = _contended_machine(extra_runnable=2)
    policy = _policy(ar_tables={2: {1: None}},
                     func_footprints={"wx": FP_X})
    # head tid 3 conflicts (runs wx touching x); tid 4 gets a clean
    # footprint by running a different function
    machine.thread_funcs[4] = "wy"
    policy.func_footprints["wy"] = FP_Y
    assert policy.preview(machine, core) == 4
    assert policy.stats.conflict_sched_decisions == 1
    assert policy.stats.conflict_defers == 1


def test_defer_cap_forces_fifo():
    machine, core = _contended_machine(extra_runnable=2)
    policy = _policy(ar_tables={2: {1: None}},
                     func_footprints={"wx": FP_X, "wy": FP_Y})
    machine.thread_funcs[4] = "wy"
    for _ in range(MAX_DEFERS):
        assert policy.preview(machine, core) == 4
    assert policy.preview(machine, core) == 3  # cap reached: FIFO
    assert policy.stats.conflict_forced_fifo == 1


def test_all_conflict_stalls_core():
    machine, core = _contended_machine(extra_runnable=2)
    policy = _policy(ar_tables={2: {1: None}},
                     func_footprints={"wx": FP_X})
    assert policy.preview(machine, core) is STALL
    assert policy.stats.conflict_sched_decisions == 1


def test_stall_self_disables_after_failed_episodes():
    machine, core = _contended_machine(extra_runnable=2)
    policy = _policy(ar_tables={2: {1: None}},
                     func_footprints={"wx": FP_X})
    assert policy.stall_budget == STALL_BUDGET_MAX  # no blocking ARs
    for _ in range(STALL_BUDGET_MAX):
        # burn the whole defer allowance, then the forced-FIFO pick
        # marks the episode failed and shrinks the budget
        for _ in range(MAX_DEFERS):
            assert policy.preview(machine, core) is STALL
        assert policy.preview(machine, core) == 3  # forced FIFO
        machine.run_queue.rotate(-1)  # 3 went to the back after running
        machine.run_queue.rotate(1)   # ...and comes around again
    assert policy.stats.conflict_forced_fifo == STALL_BUDGET_MAX
    assert policy.stats.conflict_stall_failures == STALL_BUDGET_MAX
    assert policy.stall_budget == 0
    # the budget is gone: all-conflict falls through to plain FIFO
    assert policy.preview(machine, core) == 3
    assert policy.preview(machine, core) == 3


def test_stall_budget_scales_with_blocking_density():
    def budget(n_ars, n_blocking):
        footprints = {i: FP_X for i in range(1, n_ars + 1)}
        policy = ConflictPolicy(footprints, {}, _Kernel({}), KivatiStats(),
                                blocking_ar_ids=frozenset(
                                    range(1, n_blocking + 1)))
        return policy.stall_budget

    assert budget(4, 0) == STALL_BUDGET_MAX
    assert 0 < budget(4, 1) < STALL_BUDGET_MAX
    assert budget(4, 2) == 0  # half the ARs can block: never stall
    assert budget(4, 4) == 0


def test_pain_after_stall_episode_fails_it_on_probation():
    # the episode ends with the remote window closed — but the pain a
    # bad stall causes lands when the delayed head resumes, so the
    # episode sits on probation and pain inside the window fails it
    machine, core = _contended_machine(extra_runnable=2)
    ar_tables = {2: {1: None}}
    policy = _policy(ar_tables=ar_tables, func_footprints={"wx": FP_X})
    assert policy.preview(machine, core) is STALL
    policy.stats.suspensions += 1  # pain lands mid-episode
    ar_tables[2].clear()           # remote window closes
    assert policy.preview(machine, core) == 3
    # judgment is deferred: the next decision's probation tick sees the
    # pain and retroactively fails the episode
    assert policy.preview(machine, core) == 3
    assert policy.stats.conflict_stall_failures == 1
    assert policy.stall_budget == STALL_BUDGET_MAX - 1


def test_clean_episode_restores_budget_after_probation():
    machine, core = _contended_machine(extra_runnable=2)
    ar_tables = {2: {1: None}}
    policy = _policy(ar_tables=ar_tables, func_footprints={"wx": FP_X})
    policy.stall_budget = 1  # as if earlier episodes failed
    assert policy.preview(machine, core) is STALL
    ar_tables[2].clear()  # window closes, no pain accumulated
    assert policy.preview(machine, core) == 3
    for _ in range(PROBATION_PREVIEWS):
        assert policy.preview(machine, core) == 3
    assert policy.stats.conflict_stall_failures == 0
    assert policy.stall_budget == 2  # earned one back (capped at max)


def test_remote_blocking_window_suppresses_stall():
    # remote tid 2 is inside AR 1, whose span contains a blocking call
    # (W004): idling for that window could wait forever, so the
    # all-conflict case must co-schedule FIFO instead of stalling
    machine, core = _contended_machine(extra_runnable=2)
    footprints = {1: FP_X, 5: FP_Y, 6: FP_Y, 7: FP_Y}
    policy = ConflictPolicy(footprints, {"wx": FP_X},
                            _Kernel({2: {1: None}}), KivatiStats(),
                            blocking_ar_ids=frozenset([1]))
    assert policy.stall_budget > 0  # 1 of 4 ARs blocking: stall stays on
    assert policy.preview(machine, core) == 3
    assert policy.stats.conflict_sched_decisions == 0


def test_majority_blocking_program_never_stalls():
    # when most ARs can block, windows outlive any stall budget; the
    # per-run static gate restricts the policy to reordering
    machine, core = _contended_machine(extra_runnable=2)
    footprints = {1: FP_X, 5: FP_Y}
    policy = ConflictPolicy(footprints, {"wx": FP_X},
                            _Kernel({2: {1: None}}), KivatiStats(),
                            blocking_ar_ids=frozenset([1, 5]))
    assert policy.stall_budget == 0
    # every candidate conflicts, yet the zero budget forces plain FIFO
    assert policy.preview(machine, core) == 3
    assert policy.preview(machine, core) == 3


FP_ARR = Footprint(reads=("arr",), writes=("arr",))


def test_phantom_array_conflicts_zero_the_stall_budget():
    # every conflict pair is witnessed only by a whole-array footprint
    # (lock striping / per-thread slots): the elements are usually
    # disjoint at run time, so the policy must never stall on them
    policy = ConflictPolicy({1: FP_ARR, 2: FP_ARR}, {}, _Kernel({}),
                            KivatiStats(), coarse_vars=frozenset(["arr"]))
    assert policy.stall_budget == 0


def test_scalar_conflict_majority_keeps_stall_budget():
    # two scalar pairs, one array pair: real conflicts dominate
    footprints = {1: FP_X, 2: FP_X, 3: FP_ARR, 4: FP_ARR}
    policy = ConflictPolicy(footprints, {}, _Kernel({}), KivatiStats(),
                            coarse_vars=frozenset(["arr"]))
    assert policy.stall_budget == STALL_BUDGET_MAX


def test_wild_conflicts_are_not_phantoms():
    # a wild footprint may genuinely touch anything; wild-witnessed
    # pairs must not count toward the phantom majority
    wild = Footprint(reads=("arr",), writes=("arr",), wild=True)
    policy = ConflictPolicy({1: wild, 2: wild}, {}, _Kernel({}),
                            KivatiStats(), coarse_vars=frozenset(["arr"]))
    assert policy.stall_budget == STALL_BUDGET_MAX


def test_wild_footprint_conflicts_with_running():
    machine, core = _contended_machine(extra_runnable=2)
    policy = _policy(ar_tables={2: {1: None}},
                     func_footprints={"wx": Footprint(wild=True)})
    assert policy.preview(machine, core) is STALL


# ---------------------------------------------------------------------------
# Whole-machine transparency and replay

def test_inert_when_cores_cover_threads():
    """One core per thread: the journal must be bit-identical with the
    policy installed (this is what keeps the detection corpus pinned)."""
    pp = ProtectedProgram(CONTENDED)
    base_cfg = KivatiConfig(num_cores=8, seed=7)
    conf_cfg = KivatiConfig(num_cores=8, seed=7, conflict_sched=True)
    _, base_rec = record_run(pp, base_cfg)
    _, conf_rec = record_run(pp, conf_cfg)
    # run-start headers legitimately differ (conflict_sched snapshot key)
    assert first_divergence(base_rec.events[1:], conf_rec.events[1:]) is None


def test_conflict_sched_replays_deterministically():
    pp = ProtectedProgram(MIXED)
    report, recorder = record_run(
        pp, KivatiConfig(num_cores=2, seed=3, conflict_sched=True))
    assert report.stats.conflict_sched_decisions >= 0
    result = replay_run(pp, recorder)
    assert result.ok, result.describe()
    assert result.verdicts_match
    recorded_csched = [e.key() for e in recorder.events
                       if e.kind == "csched"]
    replayed_csched = [e.key() for e in result.replayed
                       if e.kind == "csched"]
    assert recorded_csched == replayed_csched


LOOPED = """
int x;
void worker() {
    int i = 0;
    while (i < 40) {
        int t = x;
        int a = t + 1;
        int b = a * 2;
        int c = b - a;
        x = t + 1;
        i = i + 1;
    }
}
void main() {
    spawn worker(); spawn worker(); spawn worker(); spawn worker();
}
"""


def test_conflict_sched_decisions_counted_on_oversubscribed_run():
    # the one-shot CONTENDED workers finish within a quantum, so no AR
    # is ever open on a remote core at a decision point; the looping
    # workers get preempted mid-window, which is where the policy bites
    pp = ProtectedProgram(LOOPED)
    found = False
    for seed in range(4):
        stats = pp.run(KivatiConfig(num_cores=2, seed=seed,
                                    conflict_sched=True)).stats
        if stats.conflict_sched_decisions:
            found = True
            break
    assert found, "4 contended workers on 2 cores never tripped the policy"


# ---------------------------------------------------------------------------
# Snapshot compatibility

def test_snapshot_roundtrips_conflict_sched():
    cfg = KivatiConfig(conflict_sched=True,
                       costs=CostModel(conflict_stall=555))
    snap = config_snapshot(cfg)
    assert snap["version"] == SNAPSHOT_VERSION
    rebuilt = config_from_snapshot(snap)
    assert rebuilt.conflict_sched is True
    assert rebuilt.costs.conflict_stall == 555


def test_v2_snapshot_still_loads_without_conflict_sched():
    snap = config_snapshot(KivatiConfig())
    snap["version"] = 2
    del snap["conflict_sched"]
    del snap["costs"]["conflict_stall"]
    rebuilt = config_from_snapshot(snap)
    assert rebuilt.conflict_sched is False
    assert rebuilt.costs.conflict_stall == CostModel().conflict_stall
