"""Thread model and cost model unit tests."""

from repro.machine.costs import CostModel
from repro.machine.memory import Memory
from repro.machine.threads import Thread, ThreadState


def test_thread_initial_state():
    t = Thread(3, entry_pc=17, seed=5)
    assert t.state == ThreadState.RUNNABLE
    assert t.pc == 17
    assert t.sp == Memory.stack_base(3)
    assert t.call_depth == 0
    assert not t.is_blocked()


def test_blocked_states():
    t = Thread(0, 0)
    for state in (ThreadState.SLEEPING, ThreadState.BLOCKED_LOCK,
                  ThreadState.BLOCKED_JOIN, ThreadState.BLOCKED_WPSYNC,
                  ThreadState.SUSPENDED):
        t.state = state
        assert t.is_blocked()
    t.state = ThreadState.RUNNING
    assert not t.is_blocked()


def test_prng_deterministic_and_bounded():
    a = Thread(1, 0, seed=9)
    b = Thread(1, 0, seed=9)
    seq_a = [a.next_rand(100) for _ in range(50)]
    seq_b = [b.next_rand(100) for _ in range(50)]
    assert seq_a == seq_b
    assert all(0 <= v < 100 for v in seq_a)


def test_prng_streams_decorrelated_across_threads():
    # sibling threads from the same seed must make independent random
    # decisions (regression: correlated xorshift seeding synchronized
    # the corpus attacker/victim gating)
    t1 = Thread(1, 0, seed=4)
    t2 = Thread(2, 0, seed=4)
    hits = sum(1 for _ in range(200)
               if (t1.next_rand(13) == 1) == (t2.next_rand(13) == 2))
    # under independence the agreement rate on these rare events is ~86%;
    # perfectly correlated streams would agree ~100% or ~0%
    assert 120 < hits < 198


def test_prng_zero_bound():
    t = Thread(0, 0)
    assert t.next_rand(0) == 0
    assert t.next_rand(-3) == 0


def test_cost_model_copy_overrides():
    c = CostModel()
    d = c.copy(syscall=999)
    assert d.syscall == 999
    assert c.syscall != 999
    assert d.instr == c.instr


def test_cost_model_repr_lists_fields():
    text = repr(CostModel())
    assert "syscall=" in text and "quantum=" in text
