"""Memory model tests."""

import pytest

from repro.compiler.program import GLOBALS_BASE, HEAP_BASE, STACK_BASE
from repro.errors import MemoryFault
from repro.machine.memory import Memory


def test_uninitialized_reads_zero():
    mem = Memory()
    assert mem.read(GLOBALS_BASE) == 0


def test_write_then_read():
    mem = Memory()
    mem.write(GLOBALS_BASE + 5, 42)
    assert mem.read(GLOBALS_BASE + 5) == 42


def test_null_page_faults():
    mem = Memory()
    with pytest.raises(MemoryFault):
        mem.read(0)
    with pytest.raises(MemoryFault):
        mem.write(3, 1)
    with pytest.raises(MemoryFault):
        mem.read(GLOBALS_BASE - 1)


def test_fault_reports_address():
    mem = Memory()
    with pytest.raises(MemoryFault) as exc:
        mem.read(7)
    assert exc.value.address == 7


def test_alloc_bumps_and_is_disjoint():
    mem = Memory()
    a = mem.alloc(4)
    b = mem.alloc(2)
    assert a == HEAP_BASE
    assert b == a + 4
    mem.write(a, 1)
    mem.write(b, 2)
    assert mem.read(a) == 1 and mem.read(b) == 2


def test_alloc_zero_or_negative_gives_one_word():
    mem = Memory()
    a = mem.alloc(0)
    b = mem.alloc(-5)
    assert b == a + 1


def test_stack_regions_disjoint_per_thread():
    regions = [(Memory.stack_limit(t), Memory.stack_base(t)) for t in range(4)]
    for i in range(len(regions) - 1):
        assert regions[i][1] == regions[i + 1][0]
    assert all(lo < hi for lo, hi in regions)
    assert regions[0][0] == STACK_BASE
