"""Debug register (watchpoint) hardware model tests."""

from repro.machine.watchpoints import (
    ARCH_SURVEY,
    DebugRegisterFile,
    WatchpointSlot,
    X86_NUM_WATCHPOINTS,
)


def test_x86_has_four_slots():
    dr = DebugRegisterFile()
    assert len(dr) == X86_NUM_WATCHPOINTS == 4


def test_arch_survey_matches_table1():
    by_arch = {row["arch"]: row for row in ARCH_SURVEY}
    assert by_arch["x86"]["number"] == 4
    assert by_arch["x86"]["type"] == "After"
    assert by_arch["SPARC"]["type"] == "Before"
    assert by_arch["SPARC"]["number"] == 2
    assert by_arch["ARM"]["number"] == 2
    assert all(row["support"] for row in ARCH_SURVEY)


def test_slot_disabled_never_matches():
    slot = WatchpointSlot(0)
    assert not slot.matches(100, True, 1)


def test_slot_matches_address_range():
    slot = WatchpointSlot(0)
    slot.configure(100, 2, watch_read=True, watch_write=True)
    assert slot.matches(100, False, 1)
    assert slot.matches(101, True, 1)
    assert not slot.matches(102, True, 1)
    assert not slot.matches(99, False, 1)


def test_slot_kind_filtering():
    slot = WatchpointSlot(0)
    slot.configure(50, 1, watch_read=False, watch_write=True)
    assert slot.matches(50, True, 1)
    assert not slot.matches(50, False, 1)


def test_slot_suppression_for_local_threads():
    slot = WatchpointSlot(0)
    slot.configure(50, 1, True, True, suppressed_tids=frozenset({7}))
    assert not slot.matches(50, True, 7)
    assert slot.matches(50, True, 8)


def test_drf_check_reports_all_hit_slots():
    dr = DebugRegisterFile(4)
    dr.slots[1].configure(10, 1, True, True)
    dr.slots[3].configure(10, 1, False, True)
    assert dr.check(10, True, 0) == [1, 3]
    assert dr.check(10, False, 0) == [1]
    assert dr.check(11, True, 0) == []


def test_adopt_copies_logical_state_and_epoch():
    logical = [WatchpointSlot(i) for i in range(4)]
    logical[0].configure(77, 1, True, False)
    dr = DebugRegisterFile(4)
    dr.adopt(logical, epoch=9)
    assert dr.synced_epoch == 9
    assert dr.slots[0].enabled and dr.slots[0].addr == 77
    assert dr.slots[0].watch_read and not dr.slots[0].watch_write
    assert not dr.slots[1].enabled


def test_any_enabled():
    dr = DebugRegisterFile(2)
    assert not dr.any_enabled()
    dr.slots[1].configure(5, 1, True, True)
    assert dr.any_enabled()
    dr.slots[1].disable()
    assert not dr.any_enabled()
