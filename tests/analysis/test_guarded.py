"""Guarded-by inference tests (repro.analysis.guarded)."""

from repro.analysis import guarded as g
from repro.analysis.annotate import annotate


def _guards(source):
    return annotate(source).guards


def test_consistently_locked_global_is_guarded():
    guards = _guards("""
int m;
int x;
void worker() {
    lock(&m);
    x = x + 1;
    unlock(&m);
}
void main() { spawn worker(); spawn worker(); }
""")
    vg = guards.globals_["x"]
    assert vg.verdict == g.GUARDED_BY
    assert vg.locks == frozenset({"m"})


def test_unlocked_write_is_unprotected():
    guards = _guards("""
int x;
void worker() { x = x + 1; }
void main() { spawn worker(); spawn worker(); }
""")
    assert guards.globals_["x"].verdict == g.UNPROTECTED


def test_partially_locked_is_inconsistent():
    guards = _guards("""
int m;
int x;
void a() { lock(&m); x = x + 1; unlock(&m); }
void b() { x = x + 2; }
void main() { spawn a(); spawn b(); }
""")
    vg = guards.globals_["x"]
    assert vg.verdict == g.UNPROTECTED
    assert vg.inconsistent
    assert 0 < vg.n_locked < vg.n_total


def test_read_only_global_is_read_shared():
    guards = _guards("""
int ro = 7;
int out0;
int out1;
void a() { out0 = ro; }
void b() { out1 = ro + 1; }
void main() { spawn a(); spawn b(); }
""")
    assert guards.globals_["ro"].verdict == g.READ_SHARED


def test_lock_words_and_flags_are_sync():
    guards = _guards("""
int m;
int flag;
int x;
void worker() {
    while (flag == 0) { sleep(10); }
    lock(&m);
    x = x + 1;
    unlock(&m);
}
void main() { spawn worker(); flag = 1; }
""")
    assert guards.globals_["m"].verdict == g.SYNC
    assert guards.globals_["flag"].verdict == g.SYNC


def test_local_temp_is_thread_local():
    guards = _guards("""
int x;
void worker() {
    int t = x;
    x = t + 1;
}
void main() { spawn worker(); spawn worker(); }
""")
    assert guards.locals_[("worker", "t")].verdict == g.THREAD_LOCAL


def test_addr_taken_local_is_not_thread_local():
    guards = _guards("""
int x;
void sink(int *p) { x = x + *p; }
void worker() {
    int t = x;
    sink(&t);
}
void main() { spawn worker(); spawn worker(); }
""")
    vg = guards.verdict_for("worker", "t")
    assert vg is not None
    assert vg.verdict != g.THREAD_LOCAL


def test_pointer_writes_resolve_to_targets():
    guards = _guards("""
int m;
int x;
void worker() {
    int *p = &x;
    lock(&m);
    *p = *p + 1;
    unlock(&m);
}
void main() { spawn worker(); spawn worker(); }
""")
    vg = guards.globals_["x"]
    assert vg.verdict == g.GUARDED_BY
    assert vg.locks == frozenset({"m"})


def test_verdict_for_prefers_local_scope():
    guards = _guards("""
int x;
void worker() {
    int t = x;
    x = t + 1;
}
void main() { spawn worker(); }
""")
    assert guards.verdict_for("worker", "t").scope == "worker"
    assert guards.verdict_for("worker", "x").scope == "global"
