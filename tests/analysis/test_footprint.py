"""Unit tests for per-AR footprints and the inter-AR conflict graph."""

import pytest

from repro.analysis.annotate import annotate
from repro.analysis.conflict import (RW, UNSERIALIZABLE, WW,
                                     build_conflict_graph, conflict_weight)
from repro.analysis.footprint import WILD, Footprint


# ---------------------------------------------------------------------------
# Footprint algebra

def test_empty_footprint_identity():
    fp = Footprint(reads=("x",), writes=("y",))
    assert Footprint.EMPTY.union(fp) is fp
    assert fp.union(Footprint.EMPTY) is fp
    assert Footprint.EMPTY.is_empty()
    assert not Footprint.EMPTY.conflicts_with(Footprint.EMPTY)


def test_wild_conflicts_with_everything_nonempty():
    fp = Footprint(reads=("x",))
    assert WILD.conflicts_with(fp)
    assert fp.conflicts_with(WILD)
    # ...but not with a truly empty region: nothing to collide on
    assert not WILD.conflicts_with(Footprint.EMPTY)
    assert not Footprint.EMPTY.conflicts_with(WILD)


def test_conflict_requires_a_write():
    r1 = Footprint(reads=("x",))
    r2 = Footprint(reads=("x",))
    w = Footprint(writes=("x",))
    assert not r1.conflicts_with(r2)
    assert r1.conflicts_with(w)
    assert w.conflicts_with(r1)
    assert w.conflict_vars(r1) == frozenset(["x"])


def test_union_merges_wild():
    assert Footprint(reads=("x",)).union(WILD).wild
    assert not Footprint(reads=("x",)).union(Footprint(writes=("y",))).wild


# ---------------------------------------------------------------------------
# Whole-program footprint extraction

def _footprints_by_var(result):
    return {info.var: result.footprints[ar_id]
            for ar_id, info in result.ar_table.items()}


def test_plain_rmw_footprint_has_its_variable():
    result = annotate("""
int x;
int y;
void worker() {
    int t = x;
    y = 1;
    x = t + 1;
}
void main() { spawn worker(); spawn worker(); }
""")
    fps = _footprints_by_var(result)
    fp = fps["x"]
    assert not fp.wild
    assert "x" in fp.reads and "x" in fp.writes
    # y is written inside the span
    assert "y" in fp.writes
    # the local t never enters the footprint domain
    assert "t" not in fp.touched()


def test_locals_excluded_from_domain():
    result = annotate("""
int x;
void worker() {
    int t = x;
    int u = t * 2;
    x = u;
}
void main() { spawn worker(); spawn worker(); }
""")
    for fp in result.footprints.values():
        assert not {"t", "u"} & fp.touched()


def test_alias_deref_expands_to_target():
    result = annotate("""
int x;
void worker() {
    int* p = &x;
    int t = *p;
    *p = t + 1;
}
void main() { spawn worker(); spawn worker(); }
""")
    assert result.footprints, "aliased RMW produced no AR"
    # every AR span touches x through the alias, and at least one span
    # covers the write through *p
    for fp in result.footprints.values():
        assert fp.wild or "x" in fp.touched()
    assert any("x" in fp.writes for fp in result.footprints.values()
               if not fp.wild)


def test_array_element_collapses_to_base():
    result = annotate("""
int a[4];
void worker(int i) {
    int t = a[i];
    a[i] = t + 1;
}
void main() { spawn worker(0); spawn worker(1); }
""")
    fps = [fp for fp in result.footprints.values() if not fp.wild]
    assert fps
    assert any("a" in fp.writes for fp in fps)
    assert all("a[i]" not in fp.touched() for fp in fps)


def test_heap_site_enters_footprint():
    result = annotate("""
int x;
void worker() {
    int* p = alloc(2);
    int t = x;
    *p = t;
    x = t + 1;
}
void main() { spawn worker(); spawn worker(); }
""")
    fps = _footprints_by_var(result)
    fp = fps["x"]
    assert fp.wild or any(v.startswith("heap@") for v in fp.writes)


# ---------------------------------------------------------------------------
# Interprocedural corner cases

def test_callee_footprint_folds_into_ar():
    result = annotate("""
int x;
int z;
void bump() { z = z + 1; }
void worker() {
    int t = x;
    bump();
    x = t + 1;
}
void main() { spawn worker(); spawn worker(); }
""")
    fps = _footprints_by_var(result)
    fp = fps["x"]
    assert not fp.wild
    assert "z" in fp.writes, "callee write did not fold into the span"


def test_recursive_function_footprint_converges():
    result = annotate("""
int x;
int depth;
void rec(int n) {
    x = x + 1;
    if (n > 0) {
        rec(n - 1);
    }
}
void worker() {
    int t = depth;
    rec(3);
    depth = t + 1;
}
void main() { spawn worker(); spawn worker(); }
""")
    rec_fp = result.func_footprints["rec"]
    assert not rec_fp.wild
    assert "x" in rec_fp.writes
    # the AR over depth folds the recursive callee transitively
    fps = _footprints_by_var(result)
    assert "x" in fps["depth"].writes


def test_mutual_recursion_converges():
    result = annotate("""
int x;
int y;
void ping(int n) {
    x = x + 1;
    if (n > 0) {
        pong(n - 1);
    }
}
void pong(int n) {
    y = y + 1;
    if (n > 0) {
        ping(n - 1);
    }
}
void main() { ping(4); }
""")
    ping = result.func_footprints["ping"]
    pong = result.func_footprints["pong"]
    assert {"x", "y"} <= ping.writes
    assert {"x", "y"} <= pong.writes
    assert not ping.wild and not pong.wild


def test_invoke_makes_footprint_wild():
    result = annotate("""
int x;
int fp;
void target() { x = x + 1; }
void worker() {
    int t = x;
    invoke(fp);
    x = t + 1;
}
void main() { fp = 0; spawn worker(); spawn worker(); }
""")
    fps = _footprints_by_var(result)
    assert fps["x"].wild, "indirect call must poison the span footprint"


def test_function_footprints_cover_all_funcs():
    result = annotate("""
int x;
void idle() { int a = 1; }
void worker() { x = x + 1; }
void main() { spawn worker(); idle(); }
""")
    assert set(result.func_footprints) == {"idle", "worker", "main"}
    assert result.func_footprints["idle"].is_empty()
    assert "x" in result.func_footprints["worker"].writes
    # spawned bodies run on *other* threads, so they deliberately do
    # not fold into the spawner: main itself never touches x, and a
    # scheduler consulting main's footprint must see that
    assert "x" not in result.func_footprints["main"].touched()


# ---------------------------------------------------------------------------
# Conflict graph

def test_ww_conflict_between_two_writers():
    result = annotate("""
int x;
void worker() {
    int t = x;
    x = t + 1;
}
void main() { spawn worker(); spawn worker(); }
""")
    graph = result.conflicts
    assert graph.edges, "two RMW ARs over x must conflict"
    kinds = {e.kind for e in graph.edges}
    assert kinds <= {WW, UNSERIALIZABLE}
    for edge in graph.edges:
        assert "x" in edge.variables


def test_disjoint_footprints_no_edge():
    result = annotate("""
int x;
int y;
void fx() {
    int t = x;
    x = t + 1;
}
void fy() {
    int t = y;
    y = t + 1;
}
void main() { spawn fx(); spawn fy(); }
""")
    graph = result.conflicts
    ar_by_var = {info.var: ar_id for ar_id, info in result.ar_table.items()}
    if "x" in ar_by_var and "y" in ar_by_var:
        a, b = ar_by_var["x"], ar_by_var["y"]
        assert not any({e.a, e.b} == {a, b} for e in graph.edges), (
            "ARs over disjoint variables must not conflict")


def test_wild_ar_gets_no_edges_but_is_listed():
    result = annotate("""
int x;
int fp;
void worker() {
    int t = x;
    invoke(fp);
    x = t + 1;
}
void other() {
    int t = x;
    x = t + 2;
}
void main() { fp = 0; spawn worker(); spawn other(); }
""")
    graph = result.conflicts
    assert graph.wild_ar_ids, "the invoke AR must be flagged wild"
    for wild_id in graph.wild_ar_ids:
        assert graph.degree(wild_id) == 0


def test_sync_only_edges_marked():
    result = annotate("""
int m;
int x;
void worker() {
    lock(&m);
    x = x + 1;
    unlock(&m);
}
void main() { spawn worker(); spawn worker(); }
""")
    graph = result.conflicts
    for edge in graph.edges:
        witnesses_sync = all(v == "m" for v in edge.variables)
        assert edge.sync_only == witnesses_sync


def test_conflict_weight_orders_by_history():
    fp = Footprint(reads=("x",), writes=("x",))
    table_stub = {}

    class _Info:
        def __init__(self, var):
            self.var = var
            self.first_kind = None
            self.second_kinds = {}

    table_stub[1] = _Info("x")
    table_stub[2] = _Info("x")
    graph = build_conflict_graph(table_stub, {1: fp, 2: fp})
    base = conflict_weight(graph)
    assert base > 0
    boosted = conflict_weight(graph, history={1: 3})
    assert boosted > base


def test_conflict_graph_as_dict_roundtrips():
    result = annotate("""
int x;
void worker() {
    int t = x;
    x = t + 1;
}
void main() { spawn worker(); spawn worker(); }
""")
    payload = result.conflicts.as_dict()
    assert set(payload) == {"edges", "wild_ars", "counts"}
    assert set(payload["counts"]) == {UNSERIALIZABLE, WW, RW}
    for edge in payload["edges"]:
        assert edge["a"] < edge["b"]
