"""Annotation determinism: two runs over the same source must assign
identical AR ids, tables and prune verdicts.

The pair finder iterates reaching-access sets; without sorted iteration
the AR numbering (and therefore whitelists, golden lint output and
recorded verdicts) could differ between runs.
"""

import json
import os
import subprocess
import sys

import pytest

from repro.analysis.annotate import annotate
from repro.workloads.bugs import BUGS
from repro.workloads.catalog import workload_suite

_SOURCES = {
    "bug-19938": BUGS["19938"].source,
    "bug-44402": BUGS["44402"].source,
}
_SOURCES.update(
    ("app-%s" % w.name, w.source) for w in workload_suite(scale=0.1))


def _signature(res):
    out = {}
    for ar_id, info in sorted(res.ar_table.items()):
        out[ar_id] = (
            info.func, info.var, info.first_kind, info.line,
            sorted(info.second_lines.values()),
            info.is_sync, res.prune.verdict(ar_id).verdict,
        )
    return out


@pytest.mark.parametrize("name", sorted(_SOURCES))
def test_reannotation_is_identical(name):
    first = annotate(_SOURCES[name])
    second = annotate(_SOURCES[name])
    assert _signature(first) == _signature(second)
    assert first.static_safe_ar_ids == second.static_safe_ar_ids
    assert first.sync_ar_ids == second.sync_ar_ids


def test_stable_across_hash_seeds(tmp_path):
    """String-keyed sets iterate in PYTHONHASHSEED-dependent order; the
    analysis pipeline must not leak that order into its output."""
    src = tmp_path / "prog.c"
    src.write_text(_SOURCES["bug-19938"])
    dumps = []
    for seed in ("0", "12345"):
        env = dict(os.environ, PYTHONHASHSEED=seed)
        env["PYTHONPATH"] = "src"
        proc = subprocess.run(
            [sys.executable, "-m", "repro.cli", "annotate", str(src),
             "--dump-analysis", "--json"],
            capture_output=True, text=True, env=env, cwd="/root/repo",
            check=True,
        )
        dumps.append(proc.stdout)
    assert dumps[0] == dumps[1]
    json.loads(dumps[0])  # and it is well-formed JSON


@pytest.mark.parametrize("name", ["bug-19938", "app-VLC"])
def test_footprint_dump_stable_across_hash_seeds(tmp_path, name):
    """Footprints and the conflict graph are built from frozensets of
    variable names; the dump must not leak hash-seed iteration order."""
    src = tmp_path / "prog.c"
    src.write_text(_SOURCES[name])
    dumps = []
    for seed in ("0", "12345"):
        env = dict(os.environ, PYTHONHASHSEED=seed)
        env["PYTHONPATH"] = "src"
        proc = subprocess.run(
            [sys.executable, "-m", "repro.cli", "annotate", str(src),
             "--dump-footprints", "--json"],
            capture_output=True, text=True, env=env, cwd="/root/repo",
            check=True,
        )
        dumps.append(proc.stdout)
    assert dumps[0] == dumps[1]
    payload = json.loads(dumps[0])
    assert set(payload) == {"functions", "ars", "conflicts"}
