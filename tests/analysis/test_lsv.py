"""List-of-shared-variables construction tests."""

from repro.analysis.lsv import compute_lsv
from repro.analysis.normalize import normalize_program
from repro.minic.parser import parse
from repro.minic.typecheck import check


def lsv_for(src, func="f"):
    prog = normalize_program(parse(src))
    pinfo = check(prog)
    return compute_lsv(prog.func(func), pinfo)


def test_globals_are_seeded():
    lsv = lsv_for("int g; void f() { int x; } void main() {}")
    assert "g" in lsv.shared
    assert "x" not in lsv.shared


def test_pointer_params_are_shared_with_targets():
    lsv = lsv_for("void f(int *p) { *p = 1; } void main() {}")
    assert "p" in lsv.shared
    assert "*p" in lsv.shared


def test_value_params_not_shared():
    lsv = lsv_for("void f(int v) { int x = v; } void main() {}")
    assert "v" not in lsv.shared
    assert "x" not in lsv.shared


def test_alloc_result_is_shared():
    lsv = lsv_for("void f() { int *p = alloc(2); *p = 1; } void main() {}")
    assert "p" in lsv.shared
    assert "*p" in lsv.shared


def test_int_call_results_not_shared():
    lsv = lsv_for("""
    int g2() { return 1; }
    void f() { int x = g2(); }
    void main() {}
    """)
    assert "x" not in lsv.shared


def test_dataflow_closure_from_global():
    lsv = lsv_for("""
    int g;
    void f() {
        int a = g + 1;
        int b = a * 2;
        int c = 5;
    }
    void main() {}
    """)
    assert "a" in lsv.shared
    assert "b" in lsv.shared
    assert "c" not in lsv.shared


def test_address_taken_locals_escape():
    lsv = lsv_for("""
    void g2(int *out) { *out = 1; }
    void f() {
        int r = 0;
        g2(&r);
    }
    void main() {}
    """)
    assert "r" in lsv.shared


def test_deref_pseudo_var_only_for_shared_pointers():
    lsv = lsv_for("""
    int *gp;
    void f() {
        int x = *gp;
    }
    void main() {}
    """)
    assert "*gp" in lsv.shared


def test_sync_vars_identified():
    lsv = lsv_for("""
    int m;
    int flag;
    int data;
    void f() {
        lock(&m);
        data = data + 1;
        unlock(&m);
        atomic_add(&flag, 1);
    }
    void main() {}
    """)
    assert lsv.sync_vars == {"m", "flag"}


def test_annotator_temps_excluded():
    lsv = lsv_for("""
    int g;
    void f() {
        while (g < 10) { g = g + 1; }
    }
    void main() {}
    """)
    assert not any(name.startswith("__c") for name in lsv.shared)


def test_non_shared_variables_stay_out():
    lsv = lsv_for("""
    int g;
    void f() {
        int i = 0;
        int acc = 7;
        while (i < 10) {
            acc = acc * 3 + i;
            i = i + 1;
        }
        g = acc;
    }
    void main() {}
    """)
    assert "i" not in lsv.shared
    assert "acc" not in lsv.shared
    assert "g" in lsv.shared
