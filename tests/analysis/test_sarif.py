"""SARIF output: payload shape, self-validation, CLI integration."""

import json
import subprocess
import sys

from repro.analysis.annotate import annotate
from repro.analysis.diagnostics import CODES, run_diagnostics
from repro.analysis.sarif import (RULE_DESCRIPTIONS, SARIF_VERSION,
                                  sarif_payload, validate_sarif)

RACY = """
int x;
void worker() {
    int t = x;
    x = t + 1;
}
void main() { spawn worker(); spawn worker(); }
"""


def test_every_code_has_a_rule_description():
    assert set(RULE_DESCRIPTIONS) == set(CODES)


def _lint(source, filename):
    return run_diagnostics(annotate(source), filename=filename)


def test_sarif_payload_validates():
    diags = _lint(RACY, "racy.c")
    assert diags, "the racy template must produce diagnostics"
    payload = sarif_payload({"racy.c": diags})
    assert validate_sarif(payload) == []
    assert payload["version"] == SARIF_VERSION
    results = payload["runs"][0]["results"]
    assert len(results) == len(diags)
    declared = {r["id"] for r in payload["runs"][0]["tool"]["driver"]["rules"]}
    assert {r["ruleId"] for r in results} <= declared


def test_sarif_payload_empty_diags():
    payload = sarif_payload({})
    assert validate_sarif(payload) == []
    assert payload["runs"][0]["results"] == []


def test_validator_rejects_broken_payloads():
    assert validate_sarif([]) != []
    assert validate_sarif({"version": "1.0", "runs": []}) != []
    good = sarif_payload({"f.c": _lint(RACY, "f.c")})
    bad = json.loads(json.dumps(good))
    bad["runs"][0]["results"][0]["ruleId"] = 123
    assert any("ruleId" in p for p in validate_sarif(bad))
    bad = json.loads(json.dumps(good))
    del bad["runs"][0]["results"][0]["locations"]
    assert validate_sarif(bad) != []


def test_cli_lint_sarif(tmp_path):
    src = tmp_path / "racy.c"
    src.write_text(RACY)
    proc = subprocess.run(
        [sys.executable, "-m", "repro.cli", "lint", "--sarif", str(src)],
        capture_output=True, text=True, cwd="/root/repo",
        env={"PYTHONPATH": "src", "PATH": "/usr/bin:/bin"},
    )
    payload = json.loads(proc.stdout)
    assert validate_sarif(payload) == []
    assert any(r["ruleId"] == "W001"
               for r in payload["runs"][0]["results"])
