"""Figure 2 / Figure 6 logic tests."""

import itertools

import pytest

from repro.analysis.watchtype import (
    is_unserializable,
    remote_watch_kinds,
    union_watch_kinds,
)
from repro.minic.ast import AccessKind

R = AccessKind.READ
W = AccessKind.WRITE


def test_exactly_four_unserializable_interleavings():
    bad = [
        combo
        for combo in itertools.product((R, W), repeat=3)
        if is_unserializable(*combo)
    ]
    assert set(bad) == {(R, W, R), (W, W, R), (W, R, W), (R, W, W)}


def test_remote_read_between_reads_is_serializable():
    assert not is_unserializable(R, R, R)
    assert not is_unserializable(W, R, R)
    assert not is_unserializable(R, R, W)
    assert not is_unserializable(W, W, W)


@pytest.mark.parametrize(
    "first,second,expected",
    [
        (R, R, (False, True)),
        (R, W, (False, True)),
        (W, R, (False, True)),
        (W, W, (True, False)),
    ],
)
def test_figure6_watch_matrix(first, second, expected):
    assert remote_watch_kinds(first, second) == expected


def test_watch_kinds_cover_all_violations():
    # whatever remote kind makes (first, remote, second) unserializable
    # must be watched by the Figure 6 kinds for that pair
    for first, second in itertools.product((R, W), repeat=2):
        watch_read, watch_write = remote_watch_kinds(first, second)
        for remote in (R, W):
            if is_unserializable(first, remote, second):
                if remote is R:
                    assert watch_read
                else:
                    assert watch_write


def test_union_for_branching_seconds():
    # first W pairing with both a second R and a second W (bottom-right of
    # Figure 6) must watch both kinds
    assert union_watch_kinds(W, [R, W]) == (True, True)
    assert union_watch_kinds(R, [R, W]) == (False, True)
    assert union_watch_kinds(W, [W]) == (True, False)
    assert union_watch_kinds(W, []) == (False, False)
