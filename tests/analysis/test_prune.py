"""AR pruning tests (repro.analysis.prune) and run-time integration."""

from repro.analysis.annotate import annotate
from repro.analysis.prune import MONITOR, STATIC_SAFE
from repro.core.config import KivatiConfig, OptLevel
from repro.core.session import ProtectedProgram

LOCKED_COUNTER = """
int m;
int x;

void worker() {
  int i = 0;
  while (i < 10) {
    lock(&m);
    int t = x;
    x = t + 1;
    unlock(&m);
    i = i + 1;
  }
}

int main() {
  spawn worker();
  spawn worker();
  return 0;
}
"""


def _verdicts_by_var(result):
    out = {}
    for ar_id, info in result.ar_table.items():
        out.setdefault((info.func, info.var), []).append(
            result.prune.verdict(ar_id))
    return out


def test_in_section_guarded_ar_is_safe():
    res = annotate(LOCKED_COUNTER)
    by_var = _verdicts_by_var(res)
    x_verdicts = by_var[("worker", "x")]
    # the read->write pair inside the critical section is provably safe
    assert any(v.verdict == STATIC_SAFE and v.reason == "guarded-by"
               and v.lock == "m" for v in x_verdicts)
    # the cross-iteration pair spans the unlock: stays monitored
    assert any(v.verdict == MONITOR for v in x_verdicts)


def test_thread_local_temp_ar_is_safe():
    res = annotate(LOCKED_COUNTER)
    for v in _verdicts_by_var(res)[("worker", "t")]:
        assert v.verdict == STATIC_SAFE
        assert v.reason == "thread-local"


def test_sync_ars_always_monitored():
    res = annotate(LOCKED_COUNTER)
    for ar_id in res.sync_ar_ids:
        assert res.prune.verdict(ar_id).verdict == MONITOR
        assert res.prune.verdict(ar_id).reason == "sync"
    assert not (res.sync_ar_ids & res.static_safe_ar_ids)


def test_two_critical_sections_not_pruned():
    # GUARDED_BY alone is not enough: the AR pairs accesses in two
    # separate critical sections and a remote locked write can interleave
    res = annotate("""
int m;
int x;
int y;

void worker() {
  lock(&m);
  x = 1;
  unlock(&m);
  lock(&m);
  y = x;
  unlock(&m);
}

int main() {
  spawn worker();
  spawn worker();
  return 0;
}
""")
    by_var = _verdicts_by_var(res)
    for v in by_var[("worker", "x")]:
        if v.verdict == MONITOR:
            assert v.reason in ("guard-not-spanning", "unprotected")
    assert any(v.verdict == MONITOR for v in by_var[("worker", "x")])


def test_unprotected_ar_is_monitored():
    res = annotate("""
int y;
void worker() { y = y + 1; }
int main() { spawn worker(); spawn worker(); return 0; }
""")
    for v in _verdicts_by_var(res)[("worker", "y")]:
        assert v.verdict == MONITOR


def test_read_shared_ar_is_safe():
    res = annotate("""
int ro = 5;
int out0;
int out1;
void a() { out0 = ro + ro; }
void b() { out1 = ro; }
int main() { spawn a(); spawn b(); return 0; }
""")
    by_var = _verdicts_by_var(res)
    for v in by_var[("a", "ro")]:
        assert v.verdict == STATIC_SAFE
        assert v.reason == "read-shared"


def test_static_prune_reduces_pressure_same_result():
    pp = ProtectedProgram(LOCKED_COUNTER)
    assert pp.static_safe_ar_ids
    off = pp.run(KivatiConfig(static_prune=False), seed=3)
    on = pp.run(KivatiConfig(static_prune=True), seed=3)
    assert on.stats.static_prune_hits > 0
    assert off.stats.static_prune_hits == 0
    # every pruned begin/end returns from user space without reaching the
    # monitoring decision
    assert on.stats.monitored_ars < off.stats.monitored_ars
    assert (on.stats.total_ars_executed()
            < off.stats.total_ars_executed())
    # pruning must not change program semantics
    assert on.result.final_globals == off.result.final_globals


def test_static_prune_respects_base_opt_level():
    # pruning is orthogonal to the four run-time optimizations
    pp = ProtectedProgram(LOCKED_COUNTER)
    off = pp.run(KivatiConfig(opt=OptLevel.BASE, static_prune=False), seed=1)
    on = pp.run(KivatiConfig(opt=OptLevel.BASE, static_prune=True), seed=1)
    assert on.stats.monitored_ars < off.stats.monitored_ars
    # without the user-space replica every monitored AR crosses, so the
    # crossing reduction is visible directly at BASE
    assert on.stats.crossings() < off.stats.crossings()
    assert on.result.final_globals == off.result.final_globals


def test_prune_disabled_by_default():
    pp = ProtectedProgram(LOCKED_COUNTER)
    report = pp.run(KivatiConfig(), seed=0)
    assert report.stats.static_prune_hits == 0


def test_counts_partition_the_table():
    res = annotate(LOCKED_COUNTER)
    counts = res.prune.counts()
    assert counts[STATIC_SAFE] + counts[MONITOR] == res.num_ars
    assert res.prune.monitored_ids() | res.prune.static_safe_ids \
        == frozenset(res.ar_table)
