"""Pointer-analysis extension tests (Section 3.5 future work)."""

from repro.analysis.normalize import normalize_program
from repro.analysis.pointers import compute_points_to
from repro.core.config import KivatiConfig, OptLevel
from repro.core.session import ProtectedProgram
from repro.minic.ast import AccessKind
from repro.minic.parser import parse
from repro.minic.typecheck import check

R = AccessKind.READ
W = AccessKind.WRITE


def points_for(src):
    program = normalize_program(parse(src))
    pinfo = check(program)
    return compute_points_to(program, pinfo), program, pinfo


def test_address_of_and_copy():
    pts, _, _ = points_for("""
    int g;
    void f() {
        int *p = &g;
        int *q = p;
        *q = 1;
    }
    void main() {}
    """)
    f = pts["f"]
    assert f.targets("p") == {"g"}
    assert f.targets("q") == {"g"}
    assert f.resolve_deref("q") == "g"


def test_ambiguous_pointer_unresolved():
    pts, _, _ = points_for("""
    int a;
    int b;
    void f(int c) {
        int *p = &a;
        if (c) {
            p = &b;
        }
        *p = 1;
    }
    void main() {}
    """)
    assert pts["f"].targets("p") == {"a", "b"}
    assert pts["f"].resolve_deref("p") is None


def test_heap_objects_not_resolved_to_names():
    pts, _, _ = points_for("""
    void f() {
        int *p = alloc(2);
        *p = 1;
    }
    void main() {}
    """)
    assert pts["f"].resolve_deref("p") is None
    assert any(t.startswith("heap@") for t in pts["f"].targets("p"))


def test_parameter_binding_across_calls():
    pts, _, _ = points_for("""
    int g;
    void callee(int *p) { *p = 1; }
    void main() { callee(&g); }
    """)
    assert pts["callee"].resolve_deref("p") == "g"


def test_spawn_argument_binding():
    pts, _, _ = points_for("""
    int g;
    void child(int *out) { *out = 1; }
    void main() { spawn child(&g); join(); }
    """)
    assert pts["child"].resolve_deref("out") == "g"


ALIAS_BUG = """
int x = 0;

void local_thread() {
    int *p = &x;
    int t = *p;
    sleep(40000);
    x = t + 1;
}

void remote_thread() {
    sleep(15000);
    x = 99;
}

void main() {
    spawn local_thread();
    spawn remote_thread();
    join();
    output(x);
}
"""


def test_alias_pairing_creates_ar_name_based_analysis_misses():
    # name-based: "*p" and "x" never pair -> no AR spanning the window
    intra = ProtectedProgram(ALIAS_BUG)
    spanning = [i for i in intra.ar_table.values()
                if i.var == "x" and i.func == "local_thread"]
    assert not spanning

    # with pointer analysis, *p resolves to x and pairs with the write
    pa = ProtectedProgram(ALIAS_BUG, pointer_analysis=True)
    spanning = [i for i in pa.ar_table.values()
                if i.var == "x" and i.func == "local_thread"]
    assert spanning
    assert spanning[0].first_kind == R
    assert set(spanning[0].second_kinds.values()) == {W}


def test_alias_violation_detected_and_prevented():
    pa = ProtectedProgram(ALIAS_BUG, pointer_analysis=True)
    report = pa.run(KivatiConfig(opt=OptLevel.BASE), seed=1)
    found = [v for v in report.violations
             if v.var == "x" and v.func == "local_thread"]
    assert found
    assert report.output == [99]

    intra = ProtectedProgram(ALIAS_BUG)
    report = intra.run(KivatiConfig(opt=OptLevel.BASE), seed=1)
    assert not [v for v in report.violations
                if v.var == "x" and v.func == "local_thread"]


def test_element_granularity_separates_array_slots():
    src = """
    int a[4];
    void f() {
        int t = a[0];
        a[0] = t + 1;
        int u = a[1];
        a[1] = u + 1;
    }
    void main() { f(); }
    """
    whole = ProtectedProgram(src)
    whole_vars = {i.var for i in whole.ar_table.values()}
    assert "a" in whole_vars

    fine = ProtectedProgram(src, pointer_analysis=True)
    fine_vars = {i.var for i in fine.ar_table.values()}
    assert "a[0]" in fine_vars and "a[1]" in fine_vars
    # and elements no longer cross-pair: no AR whose first is a[0] and
    # second site is the a[1] statement
    for info in fine.ar_table.values():
        if info.var == "a[0]":
            assert len(info.second_kinds) == 1


def test_element_granularity_program_still_correct():
    src = """
    int a[4];
    void w(int i, int n) {
        int k = 0;
        while (k < n) {
            int t = a[i];
            a[i] = t + 1;
            k = k + 1;
        }
    }
    void main() {
        spawn w(0, 10);
        spawn w(1, 10);
        join();
        output(a[0] + a[1]);
    }
    """
    pa = ProtectedProgram(src, pointer_analysis=True)
    report = pa.run(
        KivatiConfig(opt=OptLevel.OPTIMIZED, suspend_timeout_ns=10_000),
        seed=2,
    )
    assert report.output == [20]
