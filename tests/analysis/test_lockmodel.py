"""Shared lock-modeling helper tests (repro.analysis.lockmodel)."""

from repro.analysis.lockmodel import (HeldLockTracker, UNKNOWN_LOCK,
                                      is_lock_call, is_unlock_call, lock_ref,
                                      token_base)
from repro.minic import ast
from repro.minic.parser import parse


def _calls(source):
    """All lock/unlock Call nodes of a program, in source order."""
    program = parse(source)
    out = []
    for func in program.funcs:
        for node in ast.walk(func.body):
            if isinstance(node, ast.Call) and \
                    node.name in ("lock", "unlock"):
                out.append(node)
    return out


def test_lock_ref_plain_variable():
    (call,) = _calls("int m; void main() { lock(&m); }")
    assert is_lock_call(call)
    ref = lock_ref(call)
    assert ref.token == "m"
    assert ref.precise


def test_lock_ref_constant_index_element():
    (call,) = _calls("int a[4]; void main() { unlock(&a[2]); }")
    assert is_unlock_call(call)
    ref = lock_ref(call)
    assert ref.token == "a[2]"
    assert ref.precise
    assert token_base(ref.token) == "a"


def test_lock_ref_variable_index_is_imprecise():
    (call,) = _calls("int a[4]; void main() { int i = 1; lock(&a[i]); }")
    ref = lock_ref(call)
    assert ref.token == "a[*]"
    assert not ref.precise


def test_lock_ref_pointer_value_is_unknown():
    (call,) = _calls(
        "int m; void main() { int *p = &m; lock(p); }")
    ref = lock_ref(call)
    assert ref.token == UNKNOWN_LOCK
    assert not ref.precise


def test_tracker_word_transitions():
    t = HeldLockTracker()
    # acquire: the machine leaves tid+1 in the lock word
    assert t.observe_word(2, 100, 3) == "acquire"
    assert t.locks_of(2) == {100}
    # re-observing the owned word is not a second acquire
    assert t.observe_word(2, 100, 3) is None
    # another thread's post-value does not affect us
    assert t.observe_word(1, 100, 3) is None
    assert t.locks_of(1) == set()
    # release: word drops to 0 while we hold it
    assert t.observe_word(2, 100, 0) == "release"
    assert t.locks_of(2) == set()
    # a 0 on a word we never held is not a release
    assert t.observe_word(2, 100, 0) is None


def test_tracker_sync_ops_require_write():
    t = HeldLockTracker()
    # contended LOCK only performs a read access: must not count
    assert t.observe_sync_op(0, "lock", 50, is_write=False) is None
    assert t.locks_of(0) == set()
    assert t.observe_sync_op(0, "lock", 50, is_write=True) == "acquire"
    assert t.locks_of(0) == {50}
    assert t.observe_sync_op(0, "unlock", 50, is_write=True) == "release"
    assert t.locks_of(0) == set()


def test_tracker_is_per_thread():
    t = HeldLockTracker()
    t.observe_word(0, 7, 1)
    t.observe_word(1, 8, 2)
    assert t.locks_of(0) == {7}
    assert t.locks_of(1) == {8}
    assert t.held[0] == {7}  # dict view used by the lockset baseline
