"""Structural invariants of the annotations over the real app models."""

import pytest

from repro.core.session import ProtectedProgram
from repro.minic import ast
from repro.workloads.catalog import workload_suite

_CACHE = {}


def protected(workload):
    pp = _CACHE.get(workload.name)
    if pp is None:
        pp = ProtectedProgram(workload.source)
        _CACHE[workload.name] = pp
    return pp


@pytest.mark.parametrize("workload", workload_suite(scale=0.1),
                         ids=lambda w: w.name)
def test_every_ar_has_begin_and_some_end(workload):
    pp = protected(workload)
    begins = set()
    ends = set()
    for func in pp.annotation.ast.funcs:
        for stmt in ast.statements(func.body):
            if isinstance(stmt, ast.BeginAtomic):
                begins.add(stmt.ar_id)
            elif isinstance(stmt, ast.EndAtomic):
                ends.add(stmt.ar_id)
    assert begins == set(pp.ar_table)
    # every AR has at least one end site somewhere in the program
    assert ends == set(pp.ar_table)


@pytest.mark.parametrize("workload", workload_suite(scale=0.1),
                         ids=lambda w: w.name)
def test_every_function_exit_has_clear_ar(workload):
    pp = protected(workload)
    for func in pp.annotation.ast.funcs:
        # the body's trailing statement must be a clear_ar, and every
        # return must be immediately preceded by one
        assert isinstance(func.body.stmts[-1], ast.ClearAr), func.name

        def check_block(block):
            prev = None
            for stmt in block.stmts:
                if isinstance(stmt, ast.Return):
                    assert isinstance(prev, ast.ClearAr), func.name
                if isinstance(stmt, ast.Block):
                    check_block(stmt)
                elif isinstance(stmt, ast.If):
                    check_block(stmt.then)
                    if stmt.els is not None:
                        check_block(stmt.els)
                elif isinstance(stmt, ast.While):
                    check_block(stmt.body)
                prev = stmt

        check_block(func.body)


@pytest.mark.parametrize("workload", workload_suite(scale=0.1),
                         ids=lambda w: w.name)
def test_watch_kinds_never_empty(workload):
    pp = protected(workload)
    for info in pp.ar_table.values():
        assert info.watch_read or info.watch_write, info
        assert info.second_kinds, info
        assert info.size == 1


@pytest.mark.parametrize("workload", workload_suite(scale=0.1),
                         ids=lambda w: w.name)
def test_sync_ars_subset_of_registry(workload):
    pp = protected(workload)
    assert pp.sync_ar_ids <= set(pp.ar_table)
    for ar_id in pp.sync_ar_ids:
        assert pp.ar_table[ar_id].is_sync
