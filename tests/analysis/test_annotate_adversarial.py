"""Annotator robustness on adversarial program structures."""

import pytest

from repro.core.config import KivatiConfig, OptLevel
from repro.core.session import ProtectedProgram


def run(src, seed=0):
    pp = ProtectedProgram(src)
    report = pp.run(KivatiConfig(opt=OptLevel.BASE,
                                 suspend_timeout_ns=10_000), seed=seed)
    return pp, report


def test_empty_functions():
    pp, report = run("""
    void nothing() {}
    void main() { nothing(); nothing(); }
    """)
    assert report.output == []
    assert not report.result.deadlocked


def test_return_only_function():
    pp, report = run("""
    int f() { return 7; }
    void main() { output(f()); }
    """)
    assert report.output == [7]


def test_while_zero_never_runs():
    pp, report = run("""
    int g = 5;
    void main() {
        while (0) { g = 99; }
        output(g);
    }
    """)
    assert report.output == [5]


def test_deeply_nested_control_flow():
    pp, report = run("""
    int g = 0;
    void main() {
        int i = 0;
        while (i < 4) {
            if (i % 2 == 0) {
                if (g < 10) {
                    while (g < i) {
                        g = g + 1;
                    }
                } else {
                    g = 0;
                }
            } else {
                if (g > 0) { g = g - 1; } else { g = g + 2; }
            }
            i = i + 1;
        }
        output(g);
    }
    """)
    # must match the vanilla semantics exactly
    vanilla = pp.run_vanilla(seed=0)
    assert report.output == vanilla.output


def test_early_returns_from_every_branch():
    pp, report = run("""
    int g = 3;
    int classify(int v) {
        if (v < 0) { return 0 - 1; }
        if (v == 0) { return 0; }
        if (v < 10) { g = g + 1; return 1; }
        return 2;
    }
    void main() {
        output(classify(0 - 5));
        output(classify(0));
        output(classify(5));
        output(classify(50));
        output(g);
    }
    """)
    assert report.output == [-1, 0, 1, 2, 4]


def test_shared_access_inside_loop_condition_expression():
    pp, report = run("""
    int limit = 5;
    void main() {
        int i = 0;
        int n = 0;
        while (i < limit) {
            n = n + 1;
            i = i + 1;
        }
        output(n);
    }
    """)
    assert report.output == [5]
    # the condition read of the shared 'limit' must be annotated
    assert any(info.var == "limit" for info in pp.ar_table.values())


def test_no_shared_variables_at_all():
    pp, report = run("""
    void main() {
        int a = 1;
        int b = a + 2;
        output(b);
    }
    """)
    assert report.output == [3]
    assert report.stats.begin_calls == 0 or pp.num_ars >= 0


def test_globals_only_written_once():
    pp, report = run("""
    int config = 0;
    void reader() { int c = config; }
    void main() {
        config = 42;
        spawn reader();
        spawn reader();
        join();
        output(config);
    }
    """)
    assert report.output == [42]


def test_argument_evaluation_with_shared_reads():
    pp, report = run("""
    int g = 10;
    int add3(int a, int b, int c) { return a + b + c; }
    void main() {
        output(add3(g, g + 1, g * 2));
    }
    """)
    assert report.output == [10 + 11 + 20]
