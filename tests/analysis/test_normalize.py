"""Normalization pass tests."""

from repro.analysis.normalize import TEMP_PREFIX, normalize_program
from repro.minic import ast
from repro.minic.parser import parse
from repro.minic.typecheck import check
from repro.compiler.codegen import compile_program
from repro.machine.machine import Machine


def norm(src):
    prog = normalize_program(parse(src))
    check(prog)  # must stay well-formed
    return prog


def run_both(src, seed=0):
    plain = compile_program(parse(src))
    normalized = compile_program(norm(src))
    out1 = Machine(plain, seed=seed).run(raise_on_deadlock=True).output
    out2 = Machine(normalized, seed=seed).run(raise_on_deadlock=True).output
    return out1, out2


def test_while_lowered_to_canonical_form():
    prog = norm("int g; void main() { while (g < 3) { g = g + 1; } }")
    loop = [s for s in ast.statements(prog.func("main").body)
            if isinstance(s, ast.While)][0]
    assert isinstance(loop.cond, ast.IntLit) and loop.cond.value == 1
    first = loop.body.stmts[0]
    assert isinstance(first, ast.Decl) and first.name.startswith(TEMP_PREFIX)
    guard = loop.body.stmts[1]
    assert isinstance(guard, ast.If)
    assert isinstance(guard.then.stmts[0], ast.Break)


def test_if_condition_hoisted():
    prog = norm("int g; void main() { if (g == 1) { g = 2; } }")
    body = prog.func("main").body.stmts
    assert isinstance(body[0], ast.Decl)
    assert body[0].name.startswith(TEMP_PREFIX)
    assert isinstance(body[1], ast.If)
    assert isinstance(body[1].cond, ast.Var)


def test_trivial_conditions_not_hoisted():
    prog = norm("void main() { if (1) { output(1); } }")
    body = prog.func("main").body.stmts
    assert isinstance(body[0], ast.If)


def test_return_value_hoisted():
    prog = norm("""
    int g;
    int f() { return g + 1; }
    void main() { output(f()); }
    """)
    f_body = prog.func("f").body.stmts
    assert isinstance(f_body[0], ast.Decl)
    ret = f_body[1]
    assert isinstance(ret, ast.Return) and isinstance(ret.value, ast.Var)


def test_trivial_return_not_hoisted():
    prog = norm("int f() { return 3; } void main() {}")
    assert isinstance(prog.func("f").body.stmts[0], ast.Return)


def test_semantics_preserved_loops():
    src = """
    void main() {
        int i = 0;
        int total = 0;
        while (i < 10) {
            i = i + 1;
            if (i % 3 == 0) { continue; }
            if (i > 8) { break; }
            total = total + i;
        }
        output(total);
        output(i);
    }
    """
    out1, out2 = run_both(src)
    assert out1 == out2


def test_continue_reevaluates_condition():
    # regression for the classic lowering bug: continue must re-check cond
    src = """
    void main() {
        int i = 0;
        while (i < 5) {
            i = i + 1;
            continue;
        }
        output(i);
    }
    """
    out1, out2 = run_both(src)
    assert out1 == out2 == [5]


def test_nested_loops_normalized():
    src = """
    void main() {
        int total = 0;
        int i = 0;
        while (i < 4) {
            int j = 0;
            while (j < i) {
                total = total + 1;
                j = j + 1;
            }
            i = i + 1;
        }
        output(total);
    }
    """
    out1, out2 = run_both(src)
    assert out1 == out2 == [6]


def test_temps_unique_across_functions():
    prog = norm("""
    int g;
    void a() { if (g) { g = 1; } }
    void b() { if (g) { g = 2; } }
    void main() { while (g < 1) { g = g + 1; } }
    """)
    temps = [s.name for f in prog.funcs for s in ast.statements(f.body)
             if isinstance(s, ast.Decl) and s.name.startswith(TEMP_PREFIX)]
    assert len(temps) == len(set(temps)) == 3
