"""Lock-discipline dataflow tests (repro.analysis.locks)."""

from repro.analysis.locks import compute_lock_analysis
from repro.analysis.normalize import normalize_program
from repro.minic import ast
from repro.minic.parser import parse
from repro.minic.typecheck import check


def _analyze(source):
    program = normalize_program(parse(source))
    pinfo = check(program)
    return program, compute_lock_analysis(program, pinfo)


def _must_at_line(analysis, func, line):
    """Union of must-hold-in sets of all statements on ``line``."""
    fr = analysis.per_func[func]
    found = None
    for uid, stmt_line in fr.stmt_lines.items():
        if stmt_line == line:
            tokens = fr.must_in.get(uid, frozenset())
            found = tokens if found is None else (found | tokens)
    assert found is not None, "no statement on line %d" % line
    return found


def test_straight_line_lockset():
    _, la = _analyze("""
int m;
int x;
void main() {
    lock(&m);
    x = 1;
    unlock(&m);
    x = 2;
}
""")
    # must-in is the state *entering* a statement: m is held from the
    # statement after the lock to the unlock itself
    assert "m" in _must_at_line(la, "main", 6)
    assert "m" in _must_at_line(la, "main", 7)
    assert "m" not in _must_at_line(la, "main", 8)


def test_branch_join_intersects():
    _, la = _analyze("""
int m;
int x;
void main() {
    if (x > 0) {
        lock(&m);
    }
    x = 1;
}
""")
    # only one branch locks: the join must not claim m is held
    assert "m" not in _must_at_line(la, "main", 8)
    fr = la.per_func["main"]
    # ...but may-hold knows it might be (the W003 path-imbalance signal)
    assert "m" in fr.exit_may
    assert "m" not in fr.exit_must


def test_loop_body_keeps_lock():
    _, la = _analyze("""
int m;
int x;
void main() {
    int i = 0;
    lock(&m);
    while (i < 3) {
        x = x + 1;
        i = i + 1;
    }
    unlock(&m);
}
""")
    assert "m" in _must_at_line(la, "main", 8)


def test_call_summary_propagates_acquire():
    _, la = _analyze("""
int m;
int x;
void acquire() { lock(&m); }
void release() { unlock(&m); }
void main() {
    acquire();
    x = 1;
    release();
    x = 2;
}
""")
    assert la.summaries["acquire"].must_added == frozenset({"m"})
    assert "m" in la.summaries["release"].may_released
    assert "m" in _must_at_line(la, "main", 8)
    assert "m" not in _must_at_line(la, "main", 10)


def test_entry_context_from_call_sites():
    _, la = _analyze("""
int m;
int x;
void helper() { x = x + 1; }
void main() {
    lock(&m);
    helper();
    unlock(&m);
}
""")
    # every call site of helper holds m, so helper's body may assume it
    assert la.contexts["helper"] == frozenset({"m"})
    assert "m" in _must_at_line(la, "helper", 4)


def test_spawned_function_gets_empty_context():
    _, la = _analyze("""
int m;
int x;
void worker() { x = x + 1; }
void main() {
    lock(&m);
    spawn worker();
    unlock(&m);
}
""")
    # a spawned thread starts with nothing held, even if the spawner
    # holds m at the spawn site
    assert la.contexts["worker"] == frozenset()


def test_funcref_taken_function_gets_empty_context():
    _, la = _analyze("""
int m;
int x;
int table[1];
void cb() { x = x + 1; }
void main() {
    table[0] = funcref(cb);
    lock(&m);
    invoke(table[0]);
    unlock(&m);
}
""")
    assert la.contexts["cb"] == frozenset()


def test_imprecise_unlock_clears_must():
    _, la = _analyze("""
int a[4];
int x;
void main() {
    int i = 1;
    lock(&a[0]);
    x = 1;
    unlock(&a[i]);
    x = 2;
}
""")
    assert "a[0]" in _must_at_line(la, "main", 7)
    assert _must_at_line(la, "main", 9) == frozenset()


def test_unmatched_unlock_detected():
    _, la = _analyze("""
int m;
void main() {
    unlock(&m);
}
""")
    unmatched = la.per_func["main"].unmatched_unlocks
    assert unmatched and unmatched[0][1] == "m"


def test_matched_unlock_not_flagged():
    _, la = _analyze("""
int m;
int x;
void main() {
    lock(&m);
    x = 1;
    unlock(&m);
}
""")
    assert la.per_func["main"].unmatched_unlocks == ()


def test_may_flow_reaches_through_no_op_prefix():
    # regression: the may-analysis worklist must visit nodes whose first
    # computed state equals the initial bottom element
    _, la = _analyze("""
int m;
int x;
void other() { x = x + 1; }
void main() {
    spawn other();
    spawn other();
    lock(&m);
    x = 1;
    unlock(&m);
}
""")
    assert la.per_func["main"].unmatched_unlocks == ()


def test_only_global_tokens_cross_boundaries():
    _, la = _analyze("""
int x;
void helper() {
    int m;
    lock(&m);
    x = x + 1;
    unlock(&m);
}
void main() {
    helper();
}
""")
    # helper's local lock participates intra-procedurally...
    assert "m" in _must_at_line(la, "helper", 6)
    # ...but not in its caller-visible summary
    assert la.summaries["helper"].must_added == frozenset()
