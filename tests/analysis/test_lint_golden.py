"""Golden-file test: ``kivati lint --corpus --json`` output is stable.

The golden file pins the exact diagnostics (codes, anchors, messages)
over the built-in bug corpus and application models.  If an analysis
change legitimately alters them, regenerate with::

    PYTHONPATH=src python -m repro.cli lint --corpus --json \
        > tests/analysis/golden/lint_corpus.json
"""

import json
import os

from repro.cli import main

GOLDEN = os.path.join(os.path.dirname(__file__), "golden",
                      "lint_corpus.json")


def test_lint_corpus_matches_golden(capsys):
    assert main(["lint", "--corpus", "--json"]) == 0
    current = json.loads(capsys.readouterr().out)
    with open(GOLDEN) as f:
        golden = json.load(f)
    assert sorted(current) == sorted(golden), "lint source set changed"
    for name in sorted(golden):
        assert current[name] == golden[name], (
            "lint output for %s drifted from golden file" % name)


def test_golden_file_is_sane():
    with open(GOLDEN) as f:
        golden = json.load(f)
    # every bug kernel exhibits at least one warning (they are bugs), and
    # all seven stable codes appear somewhere in the corpus
    assert all(golden[n]["count"] >= 1 for n in golden if
               n.startswith("bug-"))
    codes = {w["code"] for entry in golden.values()
             for w in entry["warnings"]}
    assert codes == {"W001", "W002", "W003", "W004",
                     "W005", "W006", "W007"}
