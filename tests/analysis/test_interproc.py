"""Inter-procedural extension tests (Section 3.5 future work)."""

from repro.analysis.interproc import compute_call_summaries
from repro.analysis.normalize import normalize_program
from repro.core.config import KivatiConfig, OptLevel
from repro.core.session import ProtectedProgram
from repro.minic.parser import parse
from repro.minic.typecheck import check

# the pair only exists across the call: the caller writes x, the callee
# reads it. Intra-procedural analysis sees two single accesses and
# creates no AR at all.
SPANNING = """
int x = 0;
int sink = 0;

void consume() {
    sink = x;
    sleep(40000);
}

void producer() {
    x = 5;
    consume();
}

void remote_thread() {
    sleep(15000);
    x = 99;
}

void main() {
    spawn producer();
    spawn remote_thread();
    join();
    output(sink);
    output(x);
}
"""


def test_summaries_transitive():
    program = normalize_program(parse("""
    int a;
    int b;
    void leaf() { b = a + 1; }
    void mid() { leaf(); }
    void top() { a = 1; mid(); }
    void main() { top(); }
    """))
    pinfo = check(program)
    summaries = compute_call_summaries(program, pinfo)
    assert summaries["leaf"].reads == {"a"}
    assert summaries["leaf"].writes == {"b"}
    assert summaries["mid"].reads == {"a"}
    assert summaries["mid"].writes == {"b"}
    assert summaries["top"].writes == {"a", "b"}


def test_recursion_terminates():
    program = normalize_program(parse("""
    int g;
    void rec(int n) {
        g = g + 1;
        if (n > 0) { rec(n - 1); }
    }
    void main() { rec(3); }
    """))
    pinfo = check(program)
    summaries = compute_call_summaries(program, pinfo)
    assert "g" in summaries["rec"].writes


def test_spawn_not_folded_into_spawner():
    program = normalize_program(parse("""
    int g;
    void child() { g = 1; }
    void main() { spawn child(); join(); }
    """))
    pinfo = check(program)
    summaries = compute_call_summaries(program, pinfo)
    assert "g" not in summaries["main"].writes


def test_interprocedural_creates_spanning_ars():
    intra = ProtectedProgram(SPANNING)
    inter = ProtectedProgram(SPANNING, interprocedural=True)
    assert inter.num_ars > intra.num_ars
    spanning = [i for i in inter.ar_table.values()
                if i.var == "x" and i.func == "producer"]
    assert spanning, "expected an AR on x spanning the consume() call"


def test_spanning_violation_only_caught_interprocedurally():
    config = KivatiConfig(opt=OptLevel.BASE)

    intra = ProtectedProgram(SPANNING)
    report = intra.run(config, seed=1)
    assert not [v for v in report.violations
                if v.var == "x" and v.func == "producer"]

    inter = ProtectedProgram(SPANNING, interprocedural=True)
    report = inter.run(config, seed=1)
    found = [v for v in report.violations
             if v.var == "x" and v.func == "producer"]
    assert found
    # and prevention holds: the consumer saw the producer's value
    assert report.output[0] == 5
    assert report.output[1] == 99


def test_interprocedural_apps_still_correct():
    from repro.workloads.catalog import build_nss

    workload = build_nss(iters=6)
    pp = ProtectedProgram(workload.source, interprocedural=True)
    report = pp.run(
        KivatiConfig(opt=OptLevel.OPTIMIZED, suspend_timeout_ns=10_000),
        seed=3,
    )
    assert workload.check_output(report.output)
