"""AR pairing DFA tests against the paper's figures."""

from repro.analysis.lsv import compute_lsv
from repro.analysis.normalize import normalize_program
from repro.analysis.pairs import find_pairs
from repro.minic.ast import AccessKind
from repro.minic.parser import parse
from repro.minic.typecheck import check

R = AccessKind.READ
W = AccessKind.WRITE


def pairs_for(src, func="f"):
    prog = normalize_program(parse(src))
    pinfo = check(prog)
    f = prog.func(func)
    lsv = compute_lsv(f, pinfo)
    result = find_pairs(f, lsv, pinfo)
    decoded = set()
    for first_aid, second_aid in result.pairs:
        a = result.accesses[first_aid]
        b = result.accesses[second_aid]
        decoded.add((a.var, a.kind, b.var, b.kind))
    return decoded, result


def test_simple_read_write_pair():
    decoded, _ = pairs_for("""
    int g;
    void f() {
        int t = g;
        g = t + 1;
    }
    void main() {}
    """)
    assert ("g", R, "g", W) in decoded


def test_figure3_overlapping_ars():
    # two overlapping ARs on two different shared variables
    decoded, _ = pairs_for("""
    int shared1;
    int shared2;
    void f(int *x, int *y) {
        *x = shared1;
        *y = shared2;
        shared1 = 3;
        shared2 = 4;
    }
    void main() {}
    """)
    assert ("shared1", R, "shared1", W) in decoded
    assert ("shared2", R, "shared2", W) in decoded


def test_figure4_three_pairs_through_branch():
    # read; if (...) write; read  ->  pairs (R,W), (W,R) and (R,R)
    decoded, _ = pairs_for("""
    int shared;
    void f(int *out) {
        int a = shared;
        if (a > 0) {
            shared = a + 1;
        }
        *out = shared;
    }
    void main() {}
    """)
    assert ("shared", R, "shared", W) in decoded
    assert ("shared", W, "shared", R) in decoded
    assert ("shared", R, "shared", R) in decoded


def test_no_pair_across_intervening_access():
    # middle access kills: first R pairs with middle W, middle W pairs
    # with last W, but first R never pairs directly with last W
    _, result = pairs_for("""
    int g;
    void f() {
        int a = g;
        g = 1;
        g = 2;
    }
    void main() {}
    """)
    by_kind = set()
    for fa, sa in result.pairs:
        a, b = result.accesses[fa], result.accesses[sa]
        if a.var == b.var == "g":
            by_kind.add((a.kind, b.kind, a.line, b.line))
    lines = sorted((x[2], x[3]) for x in by_kind)
    # adjacent pairs only: (line4,line5) and (line5,line6)
    assert len(lines) == 2
    assert lines[0][1] == lines[1][0]


def test_loop_back_edge_pairs_access_with_itself():
    decoded, _ = pairs_for("""
    int g;
    void f() {
        int i = 0;
        while (i < 3) {
            g = g + 1;
            i = i + 1;
        }
    }
    void main() {}
    """)
    assert ("g", W, "g", R) in decoded  # across iterations
    assert ("g", R, "g", W) in decoded  # within the statement


def test_non_shared_variables_produce_no_pairs():
    decoded, _ = pairs_for("""
    void f() {
        int a = 1;
        int b = a;
        a = b + 1;
    }
    void main() {}
    """)
    assert decoded == set()


def test_deref_accesses_pair_by_pointer_name():
    decoded, _ = pairs_for("""
    int *p;
    void f() {
        int v = *p;
        *p = v + 1;
    }
    void main() {}
    """)
    assert ("*p", R, "*p", W) in decoded


def test_sync_builtin_accesses_pair():
    decoded, _ = pairs_for("""
    int m;
    void f() {
        lock(&m);
        unlock(&m);
    }
    void main() {}
    """)
    # lock writes m, unlock writes m -> (W, W) pair spanning the section
    assert ("m", W, "m", W) in decoded


def test_array_treated_as_single_variable():
    decoded, _ = pairs_for("""
    int a[8];
    void f(int i, int j) {
        int x = a[i];
        a[j] = x;
    }
    void main() {}
    """)
    assert ("a", R, "a", W) in decoded


def test_branches_merge_pairs_from_both_paths():
    decoded, _ = pairs_for("""
    int g;
    void f(int c) {
        if (c > 0) {
            g = 1;
        } else {
            int t = g;
        }
        g = 5;
    }
    void main() {}
    """)
    assert ("g", W, "g", W) in decoded
    assert ("g", R, "g", W) in decoded
