"""Lint diagnostics tests (repro.analysis.diagnostics)."""

import json

from repro.analysis.annotate import annotate
from repro.analysis.diagnostics import (diagnostics_json,
                                        render_diagnostics,
                                        run_diagnostics)
from repro.cli import main


def _lint(source, filename="test.c"):
    return run_diagnostics(annotate(source), filename=filename)


def _codes(diags):
    return [d.code for d in diags]


def test_w001_unprotected_shared_write():
    diags = _lint("""
int x;
void worker() { x = x + 1; }
void main() { spawn worker(); spawn worker(); }
""")
    w001 = [d for d in diags if d.code == "W001"]
    assert len(w001) == 1
    assert w001[0].var == "x"
    assert w001[0].line == 3
    assert w001[0].format() == (
        "test.c:3: W001: shared variable 'x' is written with no lock held")


def test_w002_inconsistent_discipline():
    diags = _lint("""
int m;
int x;
void a() { lock(&m); x = x + 1; unlock(&m); }
void b() { x = x + 2; }
void main() { spawn a(); spawn b(); }
""")
    w002 = [d for d in diags if d.code == "W002"]
    assert len(w002) == 1
    assert w002[0].var == "x"
    # anchored at the *unlocked* site in b
    assert w002[0].line == 5
    assert "2 of" in w002[0].message or "of" in w002[0].message


def test_w003_unmatched_unlock():
    diags = _lint("""
int m;
void main() {
    unlock(&m);
}
""")
    w003 = [d for d in diags if d.code == "W003"]
    assert any("without a matching lock" in d.message and d.line == 4
               for d in w003)


def test_w003_path_imbalance():
    diags = _lint("""
int m;
int x;
void main() {
    if (x > 0) {
        lock(&m);
    }
    x = 1;
}
""")
    w003 = [d for d in diags if d.code == "W003"]
    assert any("only some paths" in d.message and d.var == "m"
               for d in w003)


def test_w004_blocking_call_in_span():
    diags = _lint("""
int x;
int done;
void worker() {
    int t = x;
    sleep(5);
    x = t + 1;
}
void main() { spawn worker(); spawn worker(); }
""")
    w004 = [d for d in diags if d.code == "W004"]
    assert any("spans blocking call 'sleep'" in d.message for d in w004)


def test_clean_program_has_no_warnings():
    diags = _lint("""
int m;
int x;
void worker() {
    lock(&m);
    x = x + 1;
    unlock(&m);
}
void main() { spawn worker(); spawn worker(); }
""")
    assert diags == []
    assert render_diagnostics(diags) == "0 warnings"


def test_render_counts_by_code():
    diags = _lint("""
int x;
int y;
void worker() { x = x + 1; y = y + 1; }
void main() { spawn worker(); spawn worker(); }
""")
    text = render_diagnostics(diags)
    assert text.endswith("2 warnings (2 W001)")


def test_ordering_is_by_line_then_code():
    diags = _lint("""
int x;
int y;
void w1() { y = y + 1; }
void w2() { x = x + 1; }
void main() { spawn w1(); spawn w2(); }
""")
    keys = [(d.line, d.code) for d in diags]
    assert keys == sorted(keys)


def test_json_payload_shape():
    diags = _lint("""
int x;
void worker() { x = x + 1; }
void main() { spawn worker(); spawn worker(); }
""")
    payload = diagnostics_json(diags)
    assert payload["count"] == len(diags) == len(payload["warnings"])
    entry = payload["warnings"][0]
    assert set(entry) == {"code", "file", "line", "func", "var", "message"}
    json.dumps(payload)  # serializable


def test_cli_lint_text(tmp_path, capsys):
    path = tmp_path / "racy.c"
    path.write_text("""
int x;
void worker() { x = x + 1; }
void main() { spawn worker(); spawn worker(); }
""")
    assert main(["lint", str(path)]) == 0
    out = capsys.readouterr().out
    assert "W001" in out
    assert str(path) in out
    assert "warning" in out


def test_cli_lint_json_multiple_files(tmp_path, capsys):
    racy = tmp_path / "racy.c"
    racy.write_text("""
int x;
void worker() { x = x + 1; }
void main() { spawn worker(); spawn worker(); }
""")
    clean = tmp_path / "clean.c"
    clean.write_text("""
int m;
int x;
void worker() { lock(&m); x = x + 1; unlock(&m); }
void main() { spawn worker(); spawn worker(); }
""")
    assert main(["lint", str(racy), str(clean), "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert set(payload) == {str(racy), str(clean)}
    assert payload[str(racy)]["count"] >= 1
    assert payload[str(clean)]["count"] == 0


def test_cli_annotate_dump_analysis(tmp_path, capsys):
    path = tmp_path / "prog.c"
    path.write_text("""
int m;
int x;
void worker() { lock(&m); x = x + 1; unlock(&m); }
void main() { spawn worker(); spawn worker(); }
""")
    assert main(["annotate", str(path), "--dump-analysis"]) == 0
    out = capsys.readouterr().out
    assert "function worker:" in out
    assert "guarded by 'm'" in out
    assert "static-safe" in out


def test_cli_annotate_dump_analysis_json(tmp_path, capsys):
    path = tmp_path / "prog.c"
    path.write_text("""
int m;
int x;
void worker() { lock(&m); x = x + 1; unlock(&m); }
void main() { spawn worker(); spawn worker(); }
""")
    assert main(["annotate", str(path), "--dump-analysis", "--json"]) == 0
    dump = json.loads(capsys.readouterr().out)
    assert set(dump) >= {"functions", "guards", "ars", "prune_counts"}
    guard = {g["name"]: g for g in dump["guards"]}["x"]
    assert guard["verdict"] == "guarded-by"
    assert guard["locks"] == ["m"]
