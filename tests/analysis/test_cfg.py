"""CFG construction tests."""

from repro.analysis.cfg import build_cfg
from repro.minic import ast
from repro.minic.parser import parse


def cfg_for(body):
    prog = parse("int g; void f() { %s } void main() {}" % body)
    return build_cfg(prog.func("f"))


def stmt_nodes(cfg):
    return cfg.stmt_nodes()


def test_straight_line():
    cfg = cfg_for("g = 1; g = 2; g = 3;")
    nodes = stmt_nodes(cfg)
    assert len(nodes) == 3
    assert cfg.entry.succs == [nodes[0]]
    assert nodes[0].succs == [nodes[1]]
    assert nodes[2].succs == [cfg.exit]


def test_if_creates_branch_and_join():
    cfg = cfg_for("if (g) { g = 1; } g = 2;")
    cond = [n for n in cfg.nodes if n.kind == "cond"][0]
    then_node = cond.succs[0]
    join = [n for n in stmt_nodes(cfg)
            if isinstance(n.stmt, ast.Assign) and n.stmt.value.value == 2][0]
    # join reachable both from cond (false edge) and then-branch
    assert join in cond.succs or join in then_node.succs
    assert len(join.preds) == 2


def test_if_else_both_branches():
    cfg = cfg_for("if (g) { g = 1; } else { g = 2; } g = 3;")
    join = [n for n in stmt_nodes(cfg)
            if isinstance(n.stmt, ast.Assign) and n.stmt.value.value == 3][0]
    assert len(join.preds) == 2


def test_while_has_back_edge():
    cfg = cfg_for("while (g < 3) { g = g + 1; }")
    cond = [n for n in cfg.nodes if n.kind == "cond"][0]
    body = [n for n in stmt_nodes(cfg) if isinstance(n.stmt, ast.Assign)][0]
    assert body in cond.succs
    assert cond in body.succs  # back edge
    assert cfg.exit in cond.succs  # loop exit


def test_infinite_loop_without_break_never_exits_via_cond():
    cfg = cfg_for("while (1) { g = 1; }")
    cond = [n for n in cfg.nodes if n.kind == "cond"][0]
    assert cfg.exit not in cond.succs


def test_break_exits_loop():
    cfg = cfg_for("while (1) { if (g) { break; } g = g + 1; } g = 9;")
    after = [n for n in stmt_nodes(cfg)
             if isinstance(n.stmt, ast.Assign) and
             isinstance(n.stmt.value, ast.IntLit) and n.stmt.value.value == 9][0]
    break_node = [n for n in stmt_nodes(cfg) if isinstance(n.stmt, ast.Break)][0]
    assert after in break_node.succs


def test_continue_jumps_to_cond():
    cfg = cfg_for("while (g) { continue; }")
    cond = [n for n in cfg.nodes if n.kind == "cond"][0]
    cont = [n for n in stmt_nodes(cfg) if isinstance(n.stmt, ast.Continue)][0]
    assert cond in cont.succs


def test_return_goes_to_exit():
    cfg = cfg_for("if (g) { return; } g = 1;")
    ret = [n for n in stmt_nodes(cfg) if isinstance(n.stmt, ast.Return)][0]
    assert ret.succs == [cfg.exit]


def test_code_after_return_unreachable():
    cfg = cfg_for("return; g = 1;")
    orphan = [n for n in stmt_nodes(cfg)
              if isinstance(n.stmt, ast.Assign)][0]
    assert orphan.preds == []


def test_empty_function():
    cfg = cfg_for("")
    assert cfg.exit in cfg.entry.succs
