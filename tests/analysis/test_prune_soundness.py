"""Soundness gate for static pruning over the bug corpus.

An AR classified STATIC_SAFE is never monitored, so a single unsound
verdict turns into a missed bug.  These tests enforce the two halves of
the gate:

- no dynamically flagged AR may carry a STATIC_SAFE verdict, and
- every corpus bug must still be detected with ``static_prune=True``.
"""

import pytest

from repro.bench.scale import corpus_config
from repro.core.config import Mode, OptLevel
from repro.core.session import ProtectedProgram
from repro.workloads.bugs import BUG_IDS, BUGS
from repro.workloads.driver import detect_bug

_CACHE = {}

# bugs whose violations surface within a couple of bug-finding attempts
FAST_BUGS = ("19938", "341323", "270689")


def protected(bug):
    pp = _CACHE.get(bug.bug_id)
    if pp is None:
        pp = ProtectedProgram(bug.source)
        _CACHE[bug.bug_id] = pp
    return pp


@pytest.mark.parametrize("bug_id", BUG_IDS)
def test_victim_var_ars_never_static_safe(bug_id):
    """The AR(s) on a bug's victim variable must stay monitored: pruning
    them would make the bug statically undetectable."""
    bug = BUGS[bug_id]
    pp = protected(bug)
    for ar_id in pp.static_safe_ar_ids:
        info = pp.annotation.ar_table[ar_id]
        assert info.var not in bug.victim_vars, (
            "bug %s: AR %d on victim var %r was pruned"
            % (bug_id, ar_id, info.var))


@pytest.mark.parametrize("bug_id", BUG_IDS)
def test_flagged_ars_disjoint_from_static_safe(bug_id):
    """Dynamic gate: whatever the runtime flags (victim or not) must not
    be in the static-safe set.  Pruning stays OFF here so every AR is
    observable."""
    bug = BUGS[bug_id]
    pp = protected(bug)
    safe = pp.static_safe_ar_ids
    config = corpus_config(Mode.BUG_FINDING, pause_ms=20,
                           static_prune=False)
    for seed in (0, 1):
        report = pp.run(config, seed=seed)
        flagged = report.violations.violated_ar_ids()
        assert not (flagged & safe), (
            "bug %s seed %d: flagged ARs %s carry STATIC_SAFE verdicts"
            % (bug_id, seed, sorted(flagged & safe)))


@pytest.mark.parametrize("bug_id", FAST_BUGS)
def test_base_opt_level_flags_stay_disjoint(bug_id):
    """BASE monitors more aggressively (no replica, eager freeing), so it
    can flag ARs OPTIMIZED misses; those must not be pruned either."""
    bug = BUGS[bug_id]
    pp = protected(bug)
    safe = pp.static_safe_ar_ids
    config = corpus_config(Mode.BUG_FINDING, pause_ms=20,
                           opt=OptLevel.BASE, static_prune=False)
    report = pp.run(config, seed=0)
    assert not (report.violations.violated_ar_ids() & safe)


def test_app_model_flags_disjoint_from_static_safe():
    """The five application models produce benign violations by design
    (Table 7); none of those flagged ARs may be statically pruned."""
    from repro.bench.scale import bench_config
    from repro.workloads.catalog import workload_suite

    for workload in workload_suite(scale=0.25):
        pp = ProtectedProgram(workload.source)
        safe = pp.static_safe_ar_ids
        report = pp.run(bench_config(static_prune=False), seed=0)
        flagged = report.violations.violated_ar_ids()
        assert not (flagged & safe), (
            "%s: flagged ARs %s carry STATIC_SAFE verdicts"
            % (workload.name, sorted(flagged & safe)))


@pytest.mark.parametrize("bug_id", FAST_BUGS)
def test_bugs_still_detected_with_prune_on(bug_id):
    """End-to-end: enabling pruning must not cost a single detection."""
    bug = BUGS[bug_id]
    result = detect_bug(
        bug,
        corpus_config(Mode.BUG_FINDING, pause_ms=20, static_prune=True),
        max_attempts=20,
        protected=protected(bug),
    )
    assert result.detected
    assert all(r.var in bug.victim_vars for r in result.records)
