"""End-to-end annotator tests."""

from repro.analysis.annotate import annotate, spin_flag_vars
from repro.analysis.normalize import normalize_program
from repro.minic import ast
from repro.minic.ast import AccessKind
from repro.minic.parser import parse
from repro.minic.pretty import pretty

R = AccessKind.READ
W = AccessKind.WRITE

SIMPLE = """
int shared;
void f() {
    int t = shared;
    shared = t + 1;
}
void main() { f(); }
"""


def test_begin_end_inserted_around_pair():
    result = annotate(SIMPLE)
    text = pretty(result.ast)
    assert "begin_atomic(" in text
    assert "end_atomic(" in text
    # begin before the read statement, end after the write statement
    lines = [l.strip() for l in text.splitlines()]
    bi = next(i for i, l in enumerate(lines) if l.startswith("begin_atomic"))
    read_i = next(i for i, l in enumerate(lines) if l == "int t = shared;")
    write_i = next(i for i, l in enumerate(lines) if l == "shared = t + 1;")
    assert bi < read_i < write_i


def test_clear_ar_at_every_exit():
    result = annotate("""
    int g;
    void f(int c) {
        if (c) {
            return;
        }
        g = 1;
    }
    void main() { f(1); }
    """)
    text = pretty(result.ast)
    assert text.count("clear_ar();") >= 3  # before return, end of f, end of main


def test_ar_registry_contents():
    result = annotate(SIMPLE)
    ars = [info for info in result.ar_table.values() if info.var == "shared"]
    assert len(ars) == 1
    info = ars[0]
    assert info.first_kind == R
    assert set(info.second_kinds.values()) == {W}
    assert info.watch_write and not info.watch_read
    assert info.func == "f"
    assert info.size == 1


def test_write_write_pair_watches_reads():
    result = annotate("""
    int g;
    void f() {
        g = 1;
        g = 2;
    }
    void main() { f(); }
    """)
    infos = [i for i in result.ar_table.values()
             if i.var == "g" and i.first_kind == W and
             set(i.second_kinds.values()) == {W}]
    assert infos
    assert infos[0].watch_read and not infos[0].watch_write


def test_branching_second_kinds_watch_both():
    result = annotate("""
    int g;
    void f(int c) {
        g = 1;
        if (c) {
            g = 2;
        } else {
            int t = g;
        }
    }
    void main() { f(0); }
    """)
    infos = [i for i in result.ar_table.values()
             if i.var == "g" and i.first_kind == W and
             set(i.second_kinds.values()) == {R, W}]
    assert infos
    assert infos[0].watches_both


def test_end_atomic_carries_site_specific_kind():
    result = annotate("""
    int g;
    void f(int c) {
        g = 1;
        if (c) {
            g = 2;
        } else {
            int t = g;
        }
    }
    void main() { f(0); }
    """)
    ends = [s for s in ast.statements(result.ast.func("f").body)
            if isinstance(s, ast.EndAtomic)]
    kinds = {s.second_kind for s in ends}
    assert kinds == {R, W}


def test_sync_ars_flagged():
    result = annotate("""
    int m;
    int data;
    void f() {
        lock(&m);
        data = data + 1;
        unlock(&m);
    }
    void main() { f(); }
    """)
    sync_vars = {result.ar_table[i].var for i in result.sync_ar_ids}
    assert sync_vars == {"m"}
    nonsync = {i.var for i in result.ar_table.values() if not i.is_sync}
    assert "data" in nonsync


def test_spin_flag_heuristic():
    prog = normalize_program(parse("""
    int flag;
    int other;
    void f() {
        while (flag == 0) {
            yield();
        }
        other = 1;
    }
    void main() { f(); }
    """))
    flags = spin_flag_vars(prog.func("f"))
    assert "flag" in flags
    assert "other" not in flags


def test_flag_ars_whitelisted_as_sync():
    result = annotate("""
    int flag;
    void waiter() {
        while (flag == 0) {
            sleep(100);
        }
    }
    void setter() { flag = 1; }
    void main() {
        spawn waiter();
        spawn setter();
        join();
    }
    """)
    flag_ars = [i for i in result.ar_table.values() if i.var == "flag"]
    assert flag_ars
    assert all(i.is_sync for i in flag_ars)
    assert all(i.ar_id in result.sync_ar_ids for i in flag_ars)


def test_shadow_store_after_shared_writes():
    result = annotate(SIMPLE)
    stmts = list(ast.statements(result.ast.func("f").body))
    shadow_idx = [k for k, s in enumerate(stmts)
                  if isinstance(s, ast.ShadowStore)]
    assert shadow_idx, "expected a shadow store for the shared write"
    # it must directly follow the write statement
    for k in shadow_idx:
        prev = stmts[k - 1]
        assert isinstance(prev, (ast.Assign, ast.Decl, ast.ExprStmt))


def test_annotated_ast_recompiles_and_runs():
    from repro.compiler.codegen import compile_program
    from repro.machine.machine import Machine

    result = annotate("""
    int g;
    void f() {
        int t = g;
        g = t + 1;
        output(g);
    }
    void main() { f(); f(); }
    """)
    program = compile_program(result.ast, result.pinfo, result.ar_table)
    out = Machine(program).run(raise_on_deadlock=True).output
    assert out == [1, 2]


def test_ar_ids_globally_unique():
    result = annotate("""
    int a;
    int b;
    void f() { a = a + 1; }
    void g2() { b = b + 1; }
    void main() { f(); g2(); }
    """)
    ids = list(result.ar_table)
    assert len(ids) == len(set(ids))
    assert all(result.ar_table[i].ar_id == i for i in ids)
