"""Supervisor tests: inline reference, real worker pools, crash
recovery, admission control.

Multi-process tests use the ``fork`` start method: these workers import
nothing lazily that fork would miss, and fork keeps the pool cheap
enough for the tier-1 suite. The spawn path is exercised by the CI fleet
smoke job (``kivati fleet bench --smoke``) where cold-start cost is
amortized over a full benchmark.
"""

import pytest

from repro.bench.scale import bench_config
from repro.core.config import Mode
from repro.fleet.jobs import JobSpec, app_run_jobs
from repro.fleet.supervisor import (FleetPolicy, FleetSupervisor)
from repro.pressure.policy import PressurePolicy


def _specs(seeds=(3,), scale=0.15):
    return app_run_jobs(bench_config(mode=Mode.PREVENTION), seeds=seeds,
                        scale=scale)


def _fork_policy(workers, **kwargs):
    kwargs.setdefault("start_method", "fork")
    return FleetPolicy(workers=workers, **kwargs)


@pytest.fixture(scope="module")
def inline_reference(tmp_path_factory):
    """One inline pass over the standard batch, shared by the tests that
    compare against it."""
    supervisor = FleetSupervisor(
        workers=0, policy=FleetPolicy(workers=1, verify=False),
        journal_root=str(tmp_path_factory.mktemp("inline-ref")))
    return supervisor.run_jobs(_specs())


def test_inline_executes_all_jobs(inline_reference):
    result = inline_reference
    assert result.ok
    assert len(result.results) == 5
    assert result.stats.jobs_completed == 5
    assert sorted(result.completion_order) == sorted(result.results)
    aggregate = result.aggregate()
    assert aggregate.ok
    assert aggregate.stats.traps > 0


def test_duplicate_job_ids_rejected():
    specs = _specs()
    from repro.errors import ConfigError

    with pytest.raises(ConfigError):
        FleetSupervisor(workers=0).run_jobs([specs[0], specs[0]])


def test_two_worker_pool_matches_inline(inline_reference, tmp_path):
    supervisor = FleetSupervisor(workers=2, policy=_fork_policy(2),
                                 journal_root=str(tmp_path))
    result = supervisor.run_jobs(_specs())
    assert result.ok
    assert len(result.results) == 5
    # every completed run job was replay-verified by the supervisor
    assert all(r.verified for r in result.results.values())
    assert result.stats.verifications == 5
    # parallelism changed wall-clock only, never answers
    assert result.aggregate().digest() == inline_reference.aggregate().digest()


def test_crash_drill_salvage_retry_zero_lost(inline_reference, tmp_path):
    specs = [JobSpec.from_dict(s.as_dict()) for s in _specs()]
    specs[0].params["crash"] = {"at_frame": 5, "torn": 1}
    supervisor = FleetSupervisor(workers=2, policy=_fork_policy(2),
                                 journal_root=str(tmp_path))
    result = supervisor.run_jobs(specs)
    stats = result.stats
    assert stats.workers_crashed == 1
    assert stats.workers_spawned == 3  # 2 initial + 1 replacement
    assert stats.jobs_retried == 1
    assert stats.frames_salvaged > 0
    # zero lost jobs: every spec has exactly one accounted result
    assert sorted(result.results) == sorted(s.job_id for s in specs)
    assert all(r.ok for r in result.results.values())
    # the recovery record describes the salvage
    (recovery,) = result.recoveries
    assert recovery.action == "retried"
    assert recovery.torn
    assert recovery.frames_salvaged > 0
    assert recovery.job_id == specs[0].job_id
    # and the crash never leaked into the answers
    assert result.aggregate().digest() == inline_reference.aggregate().digest()


def test_inline_crash_drill_matches_pool_semantics(inline_reference,
                                                   tmp_path):
    specs = [JobSpec.from_dict(s.as_dict()) for s in _specs()]
    specs[2].params["crash"] = {"at_frame": 5, "torn": 1}
    supervisor = FleetSupervisor(
        workers=0, policy=FleetPolicy(workers=1, verify=False),
        journal_root=str(tmp_path))
    result = supervisor.run_jobs(specs)
    assert result.stats.jobs_retried == 1
    assert result.recoveries[0].action == "retried"
    assert all(r.ok for r in result.results.values())
    assert result.aggregate().digest() == inline_reference.aggregate().digest()


def test_retries_exhausted_is_failed_result_not_lost(tmp_path):
    # a drill the retry path cannot strip: max_retries=0 fails immediately
    specs = [JobSpec.from_dict(s.as_dict()) for s in _specs()[:2]]
    specs[0].params["crash"] = {"at_frame": 5, "torn": 1}
    supervisor = FleetSupervisor(
        workers=0,
        policy=FleetPolicy(workers=1, verify=False, max_retries=0),
        journal_root=str(tmp_path))
    result = supervisor.run_jobs(specs)
    assert not result.ok
    assert sorted(result.results) == sorted(s.job_id for s in specs)
    failed = result.results[specs[0].job_id]
    assert not failed.ok
    assert "crash" in failed.error
    assert result.recoveries[0].action == "failed"
    assert result.results[specs[1].job_id].ok


def test_broken_job_fails_without_killing_worker(tmp_path):
    bad = JobSpec("bad", "run", "this is not mini-C {",
                  _specs()[0].snapshot, seed=1)
    good = _specs()[:1]
    supervisor = FleetSupervisor(workers=1, policy=_fork_policy(1),
                                 journal_root=str(tmp_path))
    result = supervisor.run_jobs([bad] + good)
    assert not result.results["bad"].ok
    assert result.results[good[0].job_id].ok
    assert result.stats.workers_crashed == 0
    assert result.stats.workers_spawned == 1  # same worker did both


def test_verification_shed_before_jobs(tmp_path):
    # watermark of 1 job: with 5 pending, verification sheds but every
    # job still runs — monitoring degrades first, work never does
    pressure = PressurePolicy(suspended_watermark=1)
    policy = FleetPolicy(workers=1, verify=True, pressure=pressure)
    assert policy.shed_depth == 1
    supervisor = FleetSupervisor(workers=0, policy=policy,
                                 journal_root=str(tmp_path))
    result = supervisor.run_jobs(_specs())
    assert len(result.results) == 5
    assert all(r.ok for r in result.results.values())
    assert result.stats.verifications_shed > 0
    assert (result.stats.verifications
            + result.stats.verifications_shed) == 5
    shed = [r for r in result.results.values() if r.verify_shed]
    assert len(shed) == result.stats.verifications_shed


def test_reject_watermark_sheds_jobs_explicitly(tmp_path):
    pressure = PressurePolicy(suspended_watermark=1)
    policy = FleetPolicy(workers=1, verify=False, pressure=pressure)
    assert policy.reject_depth == 4
    supervisor = FleetSupervisor(workers=0, policy=policy,
                                 journal_root=str(tmp_path))
    specs = _specs()
    result = supervisor.run_jobs(specs, reject_overflow=True)
    assert len(result.rejections) == 1
    assert result.stats.jobs_rejected == 1
    assert len(result.results) == 4
    assert not result.ok  # rejections are never silent
    rejected_ids = {r.spec.job_id for r in result.rejections}
    assert rejected_ids == {specs[-1].job_id}


def test_fleet_watermarks_scale_with_workers():
    pressure = PressurePolicy(suspended_watermark=3)
    shed1, reject1 = pressure.fleet_watermarks(1)
    shed4, reject4 = pressure.fleet_watermarks(4)
    assert shed4 == 4 * shed1
    assert reject1 == 4 * shed1
    assert reject4 == 4 * shed4
