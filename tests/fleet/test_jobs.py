"""Job wire-format tests."""

import pytest

from repro.core.config import KivatiConfig, Mode
from repro.errors import ConfigError
from repro.fleet.jobs import (JobResult, JobSpec, app_run_jobs,
                              canonical_json, detect_jobs, digest_of,
                              train_shard_job)

SRC = """
int x = 0;
void main() { x = 1; output(x); }
"""


def _spec(**kwargs):
    base = dict(job_id="j1", kind="run", source=SRC, seed=7,
                params={"workload": "t"})
    base.update(kwargs)
    return JobSpec.for_config(base.pop("job_id"), base.pop("kind"),
                              base.pop("source"), KivatiConfig(),
                              seed=base.pop("seed"),
                              params=base.pop("params"))


def test_spec_round_trip():
    spec = _spec()
    clone = JobSpec.from_dict(spec.as_dict())
    assert clone.as_dict() == spec.as_dict()
    assert clone.digest() == spec.digest()


def test_spec_dict_is_json_only():
    import json

    json.loads(canonical_json(_spec().as_dict()))  # must not raise


def test_spec_rejects_unknown_kind():
    with pytest.raises(ConfigError):
        JobSpec("j", "explode", SRC, {})


def test_spec_rejects_path_unsafe_id():
    with pytest.raises(ConfigError):
        JobSpec("../evil", "run", SRC, {})
    with pytest.raises(ConfigError):
        JobSpec("", "run", SRC, {})


def test_spec_seed_overrides_config_seed():
    spec = JobSpec.for_config("j", "run", SRC, KivatiConfig(seed=3), seed=99)
    assert spec.seed == 99
    inherited = JobSpec.for_config("j", "run", SRC, KivatiConfig(seed=3))
    assert inherited.seed == 3


def test_without_crash_drill_strips_only_crash():
    spec = _spec(params={"workload": "t",
                         "crash": {"at_frame": 5, "torn": 1}})
    stripped = spec.without_crash_drill()
    assert "crash" not in stripped.params
    assert stripped.params["workload"] == "t"
    # no drill -> same object (cheap identity)
    plain = _spec()
    assert plain.without_crash_drill() is plain


def test_result_digest_ignores_scheduling_metadata():
    a = JobResult("j", "run", True, {"x": 1}, worker_id="w0", attempt=0,
                  elapsed_s=1.0)
    b = JobResult("j", "run", True, {"x": 1}, worker_id="w3", attempt=2,
                  elapsed_s=9.9, journal_path="/elsewhere")
    assert a.digest() == b.digest()
    c = JobResult("j", "run", True, {"x": 2})
    assert a.digest() != c.digest()


def test_result_round_trip():
    result = JobResult("j", "train", True, {"union": [1, 2]}, worker_id="w1",
                       attempt=1, elapsed_s=0.5, journal_path="/p")
    clone = JobResult.from_dict(result.as_dict())
    assert clone.as_dict() == result.as_dict()


def test_digest_of_is_order_insensitive_for_keys():
    assert digest_of({"a": 1, "b": 2}) == digest_of({"b": 2, "a": 1})


def test_app_run_jobs_covers_suite_x_seeds():
    specs = app_run_jobs(KivatiConfig(), seeds=(1, 2), scale=0.2)
    assert len(specs) == 10  # 5 apps x 2 seeds
    assert len({s.job_id for s in specs}) == 10
    assert all(s.kind == "run" for s in specs)
    seeds = {s.seed for s in specs}
    assert seeds == {1, 2}


def test_detect_jobs_cover_the_corpus():
    from repro.workloads.bugs import BUGS

    specs = detect_jobs(KivatiConfig(mode=Mode.BUG_FINDING))
    assert len(specs) == len(BUGS)
    for spec in specs:
        assert spec.kind == "detect"
        assert spec.params["victim_vars"]
        assert spec.params["bug_id"] in BUGS


def test_train_shard_job_freezes_whitelist():
    spec = train_shard_job("t0", SRC, KivatiConfig(mode=Mode.BUG_FINDING),
                           seeds=[5, 6], whitelist={3, 1})
    assert spec.params["whitelist"] == [1, 3]
    assert spec.params["seeds"] == [5, 6]
