"""FleetSupervisor timeout-path tests: a live-but-stuck worker (fresh
process, claimed the job, never reports) must be detected by the
per-job timeout, terminated via the managed-kill path, and its job
retried — journaled as a ``timeout`` recovery, with the batch's final
answers digest-equal to a serial run."""

import pytest

from repro.bench.scale import bench_config
from repro.bench.servicebench import micro_spec
from repro.core.config import Mode
from repro.fleet.supervisor import FleetPolicy, FleetSupervisor
from repro.fleet.worker import TERM_EXIT_STATUS

CONFIG = bench_config(mode=Mode.PREVENTION)


def _batch(stuck_job="stuck"):
    specs = [micro_spec(CONFIG, "plain-%d" % i, 20 + i) for i in range(3)]
    stuck = micro_spec(CONFIG, stuck_job, 30)
    stuck.params["stall_s"] = 60.0  # far beyond the timeout
    return specs + [stuck]


@pytest.fixture(scope="module")
def timed_out_result(tmp_path_factory):
    supervisor = FleetSupervisor(
        workers=2,
        policy=FleetPolicy(workers=2, start_method="fork", verify=False,
                           job_timeout_s=1.0, max_retries=2),
        journal_root=str(tmp_path_factory.mktemp("fleet-timeout")))
    return supervisor.run_jobs(_batch())


def test_stuck_worker_detected_and_job_retried(timed_out_result):
    result = timed_out_result
    assert result.ok
    assert len(result.results) == 4
    assert all(r.ok for r in result.results.values())
    assert result.stats.workers_timed_out >= 1
    stuck = result.results["stuck"]
    assert stuck.attempt >= 1, "stuck job was not retried"


def test_timeout_recovery_is_journaled(timed_out_result):
    recoveries = [r for r in timed_out_result.recoveries
                  if r.reason == "timeout"]
    assert recoveries, "no timeout recovery recorded"
    recovery = recoveries[0]
    assert recovery.job_id == "stuck"
    assert recovery.action == "retried"
    # the managed kill exited through the SIGTERM handler
    assert recovery.exitcode == TERM_EXIT_STATUS
    assert recovery.torn is False


def test_timed_out_batch_matches_serial_answers(timed_out_result,
                                                tmp_path):
    inline = FleetSupervisor(
        workers=0, policy=FleetPolicy(workers=1, verify=False),
        journal_root=str(tmp_path)).run_jobs(
            [s.without_crash_drill() for s in _batch()])
    assert inline.ok
    assert (sorted(r.digest() for r in inline.results.values())
            == sorted(r.digest()
                      for r in timed_out_result.results.values()))


def test_repeatedly_stuck_job_fails_after_bounded_retries(tmp_path):
    """With retries exhausted the job is recorded as failed — accounted
    for, never lost and never hanging the batch. (Retry normally strips
    the stall drill; max_retries=0 forces the exhausted path.)"""
    stuck = micro_spec(CONFIG, "forever", 31)
    stuck.params["stall_s"] = 60.0
    supervisor = FleetSupervisor(
        workers=1,
        policy=FleetPolicy(workers=1, start_method="fork", verify=False,
                           job_timeout_s=0.8, max_retries=0),
        journal_root=str(tmp_path))
    result = supervisor.run_jobs([stuck])
    assert not result.ok
    job = result.results["forever"]
    assert job.ok is False
    assert "timeout" in job.error
    assert result.recoveries[0].action == "failed"
