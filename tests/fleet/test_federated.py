"""Federated training == serial training, for any shard count.

The equivalence is by construction (round-frozen whitelists make each
observation a pure function of (seed, whitelist); union is associative
and commutative) — these tests check the construction held up in code.
"""

import pytest

from repro.bench.scale import bench_config
from repro.core.config import Mode
from repro.core.session import ProtectedProgram
from repro.core.training import train, train_rounds
from repro.errors import ConfigError
from repro.fleet.shard import federated_train, partition_round_robin
from repro.fleet.supervisor import FleetPolicy, FleetSupervisor
from repro.runtime.whitelist import read_whitelist_ids
from repro.workloads.apps.tpcw import build_tpcw

ROUNDS = [[100, 101, 102, 103], [104, 105, 106, 107], [108, 109]]


@pytest.fixture(scope="module")
def workload():
    return build_tpcw(txns=12)


@pytest.fixture(scope="module")
def config():
    return bench_config(Mode.BUG_FINDING, pause_probability=0.15)


@pytest.fixture(scope="module")
def serial(workload, config):
    return train_rounds(ProtectedProgram(workload.source), config, ROUNDS)


def _inline_supervisor(tmp_path):
    return FleetSupervisor(
        workers=0,
        policy=FleetPolicy(workers=1, verify=False, collect_journals=False),
        journal_root=str(tmp_path))


def test_partition_round_robin():
    assert partition_round_robin([1, 2, 3, 4, 5], 2) == [[1, 3, 5], [2, 4]]
    assert partition_round_robin([], 3) == [[], [], []]
    assert partition_round_robin([1], 4) == [[1], [], [], []]
    with pytest.raises(ConfigError):
        partition_round_robin([1], 0)


def test_train_delegates_to_singleton_rounds(workload, config):
    pp = ProtectedProgram(workload.source)
    classic = train(pp, config, iterations=4, seed_base=100)
    rounds = train_rounds(pp, config, [[100], [101], [102], [103]])
    assert classic.whitelist == rounds.whitelist
    assert classic.iterations == rounds.iterations


@pytest.mark.parametrize("shards", [1, 2, 3])
def test_federated_equals_serial(workload, config, serial, shards,
                                 tmp_path):
    fed = federated_train(_inline_supervisor(tmp_path), workload.source,
                          config, ROUNDS, shards=shards)
    assert fed.whitelist == serial.whitelist
    assert fed.iterations == serial.iterations
    assert fed.result.converged_after == serial.converged_after


def test_shard_files_merge_to_final_whitelist(workload, config, serial,
                                              tmp_path):
    shard_dir = str(tmp_path / "shards")
    fed = federated_train(_inline_supervisor(tmp_path), workload.source,
                          config, ROUNDS, shards=2, shard_dir=shard_dir)
    merged = fed.shard_files[-1]
    assert merged.endswith("merged.whitelist")
    ids, malformed, ok = read_whitelist_ids(merged)
    assert ok and malformed == 0
    assert ids == set(serial.whitelist)
    # the per-shard files partition the observations (union, not copies)
    union = set()
    for path in fed.shard_files[:-1]:
        shard_ids, _, shard_ok = read_whitelist_ids(path)
        assert shard_ok
        union |= shard_ids
    assert union == set(serial.whitelist)


def test_federated_through_real_worker_pool(workload, config, serial,
                                            tmp_path):
    supervisor = FleetSupervisor(
        workers=2,
        policy=FleetPolicy(workers=2, verify=False, collect_journals=False,
                           start_method="fork"),
        journal_root=str(tmp_path))
    fed = federated_train(supervisor, workload.source, config, ROUNDS,
                          shards=2)
    assert fed.whitelist == serial.whitelist
    assert fed.iterations == serial.iterations
