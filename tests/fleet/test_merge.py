"""Aggregation determinism: the merge is a pure function of the result
set, independent of completion order and worker attribution."""

import random

from repro.fleet.jobs import JobResult
from repro.fleet.merge import aggregate_results, merge_stats
from repro.runtime.stats import KivatiStats


def _run_result(job_id, traps, output, worker="w0"):
    stats = KivatiStats()
    stats.traps = traps
    stats.violations = 1
    return JobResult(job_id, "run", True, {
        "stats": stats.as_dict(),
        "time_ns": 1000,
        "output": [output],
        "violations": [["ar%s" % job_id, "x", 0, 1, "RWR", 10, True]],
        "violated_ars": ["ar%s" % job_id],
        "deadlocked": False,
    }, worker_id=worker)


def test_merge_stats_folds_counters():
    a = KivatiStats()
    a.traps = 3
    b = KivatiStats()
    b.traps = 4
    total = merge_stats([a.as_dict(), b.as_dict()])
    assert total.traps == 7


def test_aggregate_order_and_worker_independent():
    results = [_run_result("j%d" % i, traps=i, output=i, worker="w%d" % i)
               for i in range(8)]
    base = aggregate_results(results)
    for trial in range(5):
        shuffled = list(results)
        random.Random(trial).shuffle(shuffled)
        relabeled = [JobResult(r.job_id, r.kind, r.ok, r.payload,
                               worker_id="w%d" % trial, attempt=trial)
                     for r in shuffled]
        again = aggregate_results(relabeled)
        assert again.digest() == base.digest()
        assert again.stats.as_dict() == base.stats.as_dict()


def test_aggregate_dict_and_list_inputs_agree():
    results = [_run_result("a", 1, 10), _run_result("b", 2, 20)]
    as_list = aggregate_results(results)
    as_dict = aggregate_results({r.job_id: r for r in results})
    assert as_list.digest() == as_dict.digest()


def test_aggregate_failed_jobs_are_reported_not_merged():
    good = _run_result("good", 5, 1)
    bad = JobResult("bad", "run", False, None, error="boom")
    aggregate = aggregate_results([good, bad])
    assert not aggregate.ok
    assert aggregate.failed_jobs == {"bad": "boom"}
    assert aggregate.stats.traps == 5  # only the good job merged


def test_aggregate_kinds_fold_into_their_own_fields():
    run = _run_result("r0", 2, 7)
    train = JobResult("t0", "train", True,
                      {"union": [4, 9], "new_by_seed": {}, "seeds": []})
    detect = JobResult("d0", "detect", True,
                       {"bug_id": "b", "detected": True, "attempts": 2,
                        "time_ns": 500, "prevented": True})
    aggregate = aggregate_results([run, train, detect])
    assert aggregate.whitelist == frozenset({4, 9})
    assert aggregate.detections["d0"]["detected"]
    assert aggregate.time_ns == 1500
    assert "detected=1/1" in aggregate.summary()
