"""Worker-utilization surfacing (obs satellite): usage rows, timeline,
and the invariant that scheduling metadata never touches the digest."""

from repro.bench.scale import corpus_config
from repro.fleet import (FleetPolicy, FleetSupervisor, aggregate_results,
                         app_run_jobs)
from repro.fleet.merge import worker_utilization
from repro.obs.spans import fleet_trace_events, validate_chrome_trace


def _specs(scale=0.05):
    return app_run_jobs(corpus_config(), seeds=(0,), scale=scale,
                        prefix="util")[:3]


def _inline_run(specs):
    policy = FleetPolicy(workers=1, verify=False)
    return FleetSupervisor(workers=0, policy=policy).run_jobs(specs)


def test_worker_utilization_math():
    usage = {"w0": {"jobs": 3, "attempts": 4, "claims": 4, "busy_s": 2.0},
             "w1": {"jobs": 1, "attempts": 1, "claims": 1, "busy_s": 0.5}}
    util = worker_utilization(usage, elapsed_s=4.0)
    assert util["w0"]["busy_frac"] == 0.5
    assert util["w1"]["busy_frac"] == 0.125
    assert util["w0"]["attempts"] == 4
    assert worker_utilization({}, 0.0) == {}
    assert worker_utilization(usage, 0.0)["w0"]["busy_frac"] == 0.0


def test_inline_run_collects_usage_and_timeline():
    result = _inline_run(_specs())
    assert set(result.worker_usage) == {"inline"}
    row = result.worker_usage["inline"]
    assert row["jobs"] == len(result.results)
    assert row["attempts"] >= row["jobs"]
    assert row["busy_s"] > 0
    assert len(result.timeline) >= len(result.results)
    for entry in result.timeline:
        assert entry["end_s"] >= entry["start_s"]
        assert entry["status"] in ("ok", "failed", "crash")
    util = result.utilization()
    assert 0.0 < util["inline"]["busy_frac"] <= 1.0
    assert "busy" in result.describe()


def test_aggregate_summary_shows_utilization_but_digest_ignores_it():
    result = _inline_run(_specs())
    with_util = result.aggregate()
    without_util = aggregate_results(result.results)
    assert "utilization[" in with_util.summary()
    assert "utilization[" not in without_util.summary()
    assert with_util.digest() == without_util.digest()


def test_timeline_feeds_the_fleet_trace_exporter():
    result = _inline_run(_specs())
    events = fleet_trace_events(result.timeline)
    assert validate_chrome_trace({"traceEvents": events}) == []
    spans = [e for e in events if e["ph"] == "X"]
    assert len(spans) == len(result.timeline)
