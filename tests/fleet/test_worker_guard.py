"""Worker input-guard and managed-kill tests.

A worker is a long-lived asset: hostile or corrupt job payloads must
come back as structured error results — never as an exception that
burns the process — and a SIGTERM (supervisor timeout, pool recycle,
operator) must close the in-flight journal frame-clean before the
worker dies.
"""

import multiprocessing
import os
import time

import pytest

from repro.bench.scale import bench_config
from repro.bench.servicebench import micro_spec
from repro.core.config import Mode
from repro.fleet.jobs import JobSpec
from repro.fleet.worker import (TERM_EXIT_STATUS, execute_job,
                                job_journal_path, parse_spec, worker_main)
from repro.journal.recovery import salvage

CONFIG = bench_config(mode=Mode.PREVENTION)

GARBAGE_PAYLOADS = [
    b"\xff\xfe\x00not utf-8 at all\x80",        # undecodable bytes
    '{"job_id": "t", "kind": "run", "sou',      # truncated JSON text
    "just some words",                          # non-JSON text
    [1, 2, 3],                                  # non-object
    42,                                         # non-object scalar
    {"job_id": "half", "kind": "run"},          # missing required keys
    {"job_id": "bad-kind", "kind": "explode",   # unknown kind
     "source": "", "snapshot": {}},
    {"job_id": "", "kind": "run", "source": "",  # empty job_id
     "snapshot": {}},
]


@pytest.mark.parametrize("payload", GARBAGE_PAYLOADS,
                         ids=[str(i) for i in range(len(GARBAGE_PAYLOADS))])
def test_parse_spec_turns_garbage_into_error_results(payload):
    spec, error = parse_spec(payload)
    assert spec is None
    assert error is not None
    assert error["ok"] is False
    assert isinstance(error["error"], str) and error["error"]
    assert error["payload"] is None


def test_parse_spec_accepts_valid_dict_and_json_text():
    valid = micro_spec(CONFIG, "ok", 1).as_dict()
    spec, error = parse_spec(valid)
    assert error is None and spec.job_id == "ok"
    import json

    spec, error = parse_spec(json.dumps(valid))
    assert error is None and spec.job_id == "ok"


def test_execute_job_never_raises_on_garbage():
    for payload in GARBAGE_PAYLOADS:
        result = execute_job(payload)
        assert result["ok"] is False


def test_worker_survives_garbage_then_serves(tmp_path):
    """The real regression: a worker fed malformed payloads must answer
    each with an error result and still execute the next valid job."""
    ctx = multiprocessing.get_context("fork")
    job_queue = ctx.Queue()
    result_queue = ctx.Queue()
    process = ctx.Process(target=worker_main,
                          args=("guard", job_queue, result_queue,
                                str(tmp_path)))
    process.start()
    try:
        for payload in GARBAGE_PAYLOADS:
            job_queue.put(payload)
        job_queue.put(micro_spec(CONFIG, "after-garbage", 3).as_dict())
        errors = 0
        final = None
        deadline = time.monotonic() + 60.0
        while time.monotonic() < deadline and final is None:
            tag, worker_id, body = result_queue.get(timeout=30.0)
            if tag != "done":
                continue  # claims
            if body["job_id"] == "after-garbage":
                final = body
            else:
                assert body["ok"] is False
                errors += 1
        assert errors == len(GARBAGE_PAYLOADS)
        assert final is not None and final["ok"] is True
        assert process.is_alive(), "worker died on malformed input"
    finally:
        job_queue.put(None)
        process.join(timeout=10.0)
        if process.is_alive():
            process.kill()


def _long_spec(job_id):
    source = """\
int counter = 0;
int m = 0;

void worker(int iters) {
    int i = 0;
    while (i < iters) {
        lock(&m);
        counter = counter + 1;
        unlock(&m);
        i = i + 1;
    }
}

void main() {
    spawn worker(4000);
    spawn worker(4000);
    join();
    output(counter);
}
"""
    return JobSpec.for_config(job_id, "run", source, CONFIG, seed=3)


def test_sigterm_mid_run_closes_journal_frame_clean(tmp_path):
    """A managed kill must not leave a torn journal: the worker's
    SIGTERM handler closes the active writer before exiting 143."""
    ctx = multiprocessing.get_context("fork")
    job_queue = ctx.Queue()
    result_queue = ctx.Queue()
    process = ctx.Process(target=worker_main,
                          args=("term", job_queue, result_queue,
                                str(tmp_path)))
    process.start()
    spec = _long_spec("longjob")
    path = job_journal_path(str(tmp_path), "longjob")
    try:
        job_queue.put(spec.as_dict())
        # wait until the journal has visibly grown: SIGTERM lands mid-run
        deadline = time.monotonic() + 60.0
        while time.monotonic() < deadline:
            if os.path.exists(path) and os.path.getsize(path) > 2048:
                break
            time.sleep(0.01)
        assert os.path.exists(path), "journal never appeared"
        process.terminate()
        process.join(timeout=15.0)
        assert not process.is_alive()
        assert process.exitcode == TERM_EXIT_STATUS
        salvaged = salvage(path)
        assert salvaged.torn is False, "SIGTERM left a torn journal"
        assert len(salvaged.events) > 0
    finally:
        if process.is_alive():
            process.kill()
            process.join(timeout=5.0)


def test_without_crash_drill_strips_recoverable_drills_only():
    spec = micro_spec(CONFIG, "drills", 1)
    spec.params.update({"crash": {"at_frame": 3}, "stall_s": 5.0,
                        "poison": True})
    stripped = spec.without_crash_drill()
    assert "crash" not in stripped.params
    assert "stall_s" not in stripped.params
    assert stripped.params.get("poison") is True  # hostile input persists
    assert stripped.params.get("workload") == "micro"
