"""Acceptance: the full 11-bug corpus detects through the fleet path.

Same protocol and seed stride as ``repro.workloads.driver.detect_bug``
(the Table 6 campaign), but every campaign is a self-contained fleet
job — specs carry the bug source and victim variables, so this also
proves detect jobs survive the process boundary."""

import pytest

from repro.bench.scale import corpus_config
from repro.fleet.jobs import detect_jobs
from repro.fleet.supervisor import FleetPolicy, FleetSupervisor
from repro.workloads.bugs import BUGS


@pytest.mark.slow
def test_fleet_detects_all_corpus_bugs(tmp_path):
    specs = detect_jobs(corpus_config())
    assert len(specs) == len(BUGS) == 11
    supervisor = FleetSupervisor(
        workers=0,
        policy=FleetPolicy(workers=1, verify=False, collect_journals=False),
        journal_root=str(tmp_path))
    result = supervisor.run_jobs(specs)
    assert result.ok
    aggregate = result.aggregate()
    missed = sorted(payload["bug_id"]
                    for payload in aggregate.detections.values()
                    if not payload["detected"])
    assert not missed, "fleet missed corpus bugs: %s" % missed
    assert len(aggregate.detections) == 11
    # prevention mode stops most detected interleavings mid-flight;
    # "eventually prevented" (Table 6) is a multi-run claim, so only the
    # common case is asserted here
    prevented = sum(1 for payload in aggregate.detections.values()
                    if payload["prevented"])
    assert prevented >= len(aggregate.detections) // 2, (
        "prevention collapsed through the fleet path: %d/11" % prevented)
