"""``run_suite(jobs=N)``: the fanned-out measurement pass equals the
serial one, report for report."""

from repro.bench.suite import run_suite
from repro.core.config import Mode, OptLevel

LEVELS = (OptLevel.OPTIMIZED,)
MODES = (Mode.PREVENTION,)


def test_run_suite_jobs_matches_serial():
    serial = run_suite(scale=0.15, seed=3, levels=LEVELS, modes=MODES,
                       use_cache=False)
    fleet = run_suite(scale=0.15, seed=3, levels=LEVELS, modes=MODES,
                      use_cache=False, jobs=2)
    assert sorted(fleet.apps) == sorted(serial.apps)
    for app in serial:
        other = fleet[app.name]
        assert other.vanilla.time_ns == app.vanilla.time_ns
        assert other.vanilla.output == app.vanilla.output
        for key, report in app.reports.items():
            fleet_report = other.reports[key]
            assert fleet_report.time_ns == report.time_ns, (app.name, key)
            assert fleet_report.output == report.output
            assert (fleet_report.stats.as_dict()
                    == report.stats.as_dict()), (app.name, key)
        assert (other.overhead(OptLevel.OPTIMIZED)
                == app.overhead(OptLevel.OPTIMIZED))
    assert (fleet.geometric_mean_overhead(OptLevel.OPTIMIZED)
            == serial.geometric_mean_overhead(OptLevel.OPTIMIZED))


def test_run_suite_default_jobs_is_serial_path():
    # jobs=1 must not touch the fleet machinery at all (byte-identical
    # legacy behavior, no subprocess imports)
    import sys

    preloaded = "repro.fleet.supervisor" in sys.modules
    result = run_suite(scale=0.15, seed=4, levels=LEVELS, modes=MODES,
                       use_cache=False)
    assert len(result.apps) == 5
    if not preloaded:
        assert "repro.fleet.supervisor" not in sys.modules
