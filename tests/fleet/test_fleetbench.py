"""Fleetbench artifact tests: schema, validation gates, smoke run."""

import json

import pytest

from repro.bench import fleetbench


def _payload(**overrides):
    base = {
        "schema": fleetbench.SCHEMA,
        "host": {"cpu_count": 1},
        "scale": 0.2,
        "seeds": [3],
        "modes": ["prevention"],
        "start_method": "fork",
        "crash_drill": False,
        "job_count": 5,
        "series": [
            {"workers": 1, "jobs": 5, "failed": 0, "elapsed_s": 5.0,
             "jobs_per_sec": 1.0, "retried": 0, "workers_crashed": 0,
             "frames_salvaged": 0, "digest": "d", "speedup_vs_1": 1.0},
            {"workers": 2, "jobs": 5, "failed": 0, "elapsed_s": 5.0,
             "jobs_per_sec": 1.0, "retried": 0, "workers_crashed": 0,
             "frames_salvaged": 0, "digest": "d", "speedup_vs_1": 1.0},
        ],
        "determinism_ok": True,
    }
    base.update(overrides)
    return base


def test_validate_accepts_well_formed_payload():
    assert fleetbench.validate(_payload()) == []


def test_validate_rejects_wrong_schema():
    problems = fleetbench.validate(_payload(schema="nope/v9"))
    assert any("schema" in p for p in problems)


def test_validate_rejects_digest_mismatch():
    payload = _payload()
    payload["series"][1]["digest"] = "different"
    problems = fleetbench.validate(payload)
    assert any("digests differ" in p for p in problems)


def test_validate_rejects_lost_jobs():
    payload = _payload()
    payload["series"][0]["jobs"] = 4
    problems = fleetbench.validate(payload)
    assert any("lost" in p for p in problems)


def test_validate_rejects_failed_jobs():
    payload = _payload()
    payload["series"][0]["failed"] = 2
    assert any("failed" in p for p in fleetbench.validate(payload))


def test_speedup_gate_only_on_capable_hosts():
    slow4 = {"workers": 4, "jobs": 5, "failed": 0, "elapsed_s": 5.0,
             "jobs_per_sec": 1.0, "retried": 0, "workers_crashed": 0,
             "frames_salvaged": 0, "digest": "d", "speedup_vs_1": 1.0}
    payload = _payload()
    payload["series"].append(dict(slow4))
    # 1-CPU host: flat scaling is the honest, passing result
    assert fleetbench.validate(payload) == []
    # 8-CPU host: flat scaling at 4 workers is a failure
    big = _payload(host={"cpu_count": 8})
    big["series"].append(dict(slow4))
    assert any("speedup" in p for p in fleetbench.validate(big))
    # and the gate can be forced regardless of host
    assert any("speedup" in p
               for p in fleetbench.validate(payload, require_speedup=True))
    # multi-CPU host whose sweep never ran 4 workers (the CI smoke):
    # nothing to gate on, still valid — unless the gate is forced
    smoke = _payload(host={"cpu_count": 8})
    assert fleetbench.validate(smoke) == []
    assert any("4-worker" in p
               for p in fleetbench.validate(smoke, require_speedup=True))


def test_build_bench_jobs_mix():
    specs = fleetbench.build_bench_jobs(scale=0.2, seeds=(3, 11))
    assert len(specs) == 20  # 5 apps x 2 seeds x 2 modes
    assert len({s.job_id for s in specs}) == 20


def test_generate_smoke_and_artifact(tmp_path):
    payload = fleetbench.generate(workers_list=(0, 1), scale=0.12,
                                  seeds=(3,), start_method="fork")
    assert fleetbench.validate(payload) == []
    assert payload["job_count"] == 10
    assert payload["determinism_ok"]
    text = fleetbench.render(payload)
    assert "jobs/sec" in text and "digest ok" in text
    out = str(tmp_path / "BENCH_fleet.json")
    fleetbench.write_payload(payload, out)
    with open(out) as f:
        assert fleetbench.validate(json.load(f)) == []
