"""Conflict-aware fleet binning: weight order, digest transparency, CLI.

Binning is longest-processing-time ordering by static conflict weight.
It must change only *when* jobs start — a binned 2-worker run has to
aggregate bit-identically to the unbinned inline reference.
"""

import subprocess
import sys

import pytest

from repro.bench.scale import bench_config
from repro.core.config import Mode
from repro.fleet.binning import (bin_jobs_by_conflict, job_conflict_weight,
                                 run_binned_rounds, violation_history)
from repro.fleet.jobs import app_run_jobs
from repro.fleet.supervisor import FleetPolicy, FleetSupervisor

QUIET = """
int x = 0;
void main() { x = 1; output(x); }
"""

NOISY = """
int x;
void worker() {
    int t = x;
    x = t + 1;
}
void main() { spawn worker(); spawn worker(); spawn worker(); }
"""


def _specs(seeds=(3,), scale=0.15):
    return app_run_jobs(bench_config(mode=Mode.PREVENTION), seeds=seeds,
                        scale=scale)


def test_weight_orders_contended_before_quiet():
    assert job_conflict_weight(NOISY) > job_conflict_weight(QUIET)
    assert job_conflict_weight(QUIET) == 0


def test_history_boosts_weight():
    result = __import__("repro.analysis.annotate",
                        fromlist=["annotate"]).annotate(NOISY)
    history = {ar_id: 5 for ar_id in result.ar_table}
    assert (job_conflict_weight(NOISY, history=history)
            > job_conflict_weight(NOISY))


def test_binning_orders_by_weight_then_job_id():
    specs = _specs()
    ordered, weights = bin_jobs_by_conflict(specs)
    assert sorted(s.job_id for s in ordered) == sorted(
        s.job_id for s in specs)
    keys = [(-weights[s.job_id], s.job_id) for s in ordered]
    assert keys == sorted(keys)


def test_binned_two_worker_run_matches_unbinned_inline(tmp_path):
    """Binning is scheduling metadata only: the binned 2-worker
    aggregate digest equals the unbinned inline reference."""
    specs = _specs()
    inline = FleetSupervisor(
        workers=0, policy=FleetPolicy(workers=1, verify=False),
        journal_root=str(tmp_path / "inline")).run_jobs(specs)
    binned, _ = bin_jobs_by_conflict(_specs())
    pool = FleetSupervisor(
        workers=2, policy=FleetPolicy(workers=2, start_method="fork"),
        journal_root=str(tmp_path / "binned")).run_jobs(binned)
    assert pool.ok
    assert pool.aggregate().digest() == inline.aggregate().digest()


def test_violation_history_folds_ids_and_aggregates():
    history = violation_history(["a", "b", "a"])
    assert history == {"a": 2, "b": 1}
    # accumulation copies: the input map is untouched
    more = violation_history(["b"], history)
    assert more == {"a": 2, "b": 2} and history["b"] == 1

    class FakeAggregate:
        violated_ars = [("job1", "a"), ("job2", "c")]

    assert violation_history(FakeAggregate(), history) == {
        "a": 3, "b": 1, "c": 1}


def test_run_binned_rounds_rebins_with_live_history(tmp_path):
    """The arbiter's violation history feeds back into the binning
    between rounds, and the digest pin holds: every round's aggregate is
    identical because rebinning is pure scheduling."""
    specs = _specs()
    supervisor = FleetSupervisor(
        workers=0, policy=FleetPolicy(workers=1, verify=False),
        journal_root=str(tmp_path))
    outcome = run_binned_rounds(supervisor, specs, rounds=2)
    assert len(outcome.rounds) == 2
    assert outcome.digests_agree
    # the suite's racy apps violate, so round 2 really saw history
    assert outcome.history
    assert all(count > 0 for count in outcome.history.values())
    # round 1 binned with no history; round 2 with the live map — both
    # cover exactly the original job set
    for entry in outcome.rounds:
        assert sorted(entry["order"]) == sorted(s.job_id for s in specs)
    # the final history counts each round's aggregate once per round
    first_round = violation_history(outcome.last.aggregate())
    assert outcome.history == {ar: 2 * n for ar, n in first_round.items()}


def test_cli_fleet_run_rounds_digest_pin():
    proc = subprocess.run(
        [sys.executable, "-m", "repro.cli", "fleet", "run",
         "--seeds", "3", "--scale", "0.15", "--workers", "0",
         "--no-verify", "--rounds", "2"],
        capture_output=True, text=True, cwd="/root/repo",
        env={"PYTHONPATH": "src", "PATH": "/usr/bin:/bin"},
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "round 2 binning" in proc.stdout
    assert "2 round digests agree" in proc.stdout


def test_cli_fleet_run_bin_by_conflict():
    proc = subprocess.run(
        [sys.executable, "-m", "repro.cli", "fleet", "run",
         "--seeds", "3", "--scale", "0.15", "--workers", "0",
         "--no-verify", "--bin-by-conflict"],
        capture_output=True, text=True, cwd="/root/repo",
        env={"PYTHONPATH": "src", "PATH": "/usr/bin:/bin"},
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "conflict binning (heaviest first):" in proc.stdout
