"""CLI coverage for the obs verbs and `bench validate`."""

import json

import pytest

from repro.cli import main

SRC = """
int x = 0;

void worker() {
    int i = 0;
    while (i < 3) {
        int t = x;
        x = t + 1;
        i = i + 1;
    }
}

void main() {
    spawn worker();
    spawn worker();
    join();
    output(x);
}
"""


@pytest.fixture
def program_file(tmp_path):
    path = tmp_path / "prog.c"
    path.write_text(SRC)
    return str(path)


def test_obs_report(program_file, capsys):
    assert main(["obs", "report", program_file, "--top", "3"]) == 0
    out = capsys.readouterr().out
    assert "hot path:" in out
    assert "watchpoint checks" in out


def test_obs_report_json_snapshot(program_file, capsys):
    assert main(["obs", "report", program_file, "--json"]) == 0
    snap = json.loads(capsys.readouterr().out)
    assert snap["counters"]["kivati.run.count"] == 1
    assert any(name.startswith("kivati.vm.op.")
               for name in snap["counters"])


def test_obs_export_from_run(program_file, tmp_path, capsys):
    out_path = tmp_path / "trace.json"
    assert main(["obs", "export", program_file,
                 "--out", str(out_path)]) == 0
    assert "trace:" in capsys.readouterr().out
    payload = json.loads(out_path.read_text())
    assert payload["traceEvents"]


def test_obs_export_from_journal(program_file, tmp_path, capsys):
    journal = tmp_path / "run.journal"
    assert main(["run", program_file, "--journal", str(journal)]) == 0
    capsys.readouterr()
    out_path = tmp_path / "trace.json"
    assert main(["obs", "export", "--journal", str(journal),
                 "--out", str(out_path)]) == 0
    payload = json.loads(out_path.read_text())
    assert payload["traceEvents"]


def test_obs_export_needs_an_input(tmp_path, capsys):
    assert main(["obs", "export", "--out",
                 str(tmp_path / "x.json")]) == 2
    assert "give a program FILE" in capsys.readouterr().err


def _write_artifact(path, **overrides):
    payload = {"schema": "kivati-selftest/v1", "jobs_per_sec": 50.0,
               "deterministic": True}
    payload.update(overrides)
    path.write_text(json.dumps(payload))
    return str(path)


def test_obs_diff_clean_and_regressed(tmp_path, capsys):
    base = _write_artifact(tmp_path / "base.json")
    same = _write_artifact(tmp_path / "same.json")
    assert main(["obs", "diff", base, same]) == 0
    capsys.readouterr()
    worse = _write_artifact(tmp_path / "worse.json", jobs_per_sec=10.0)
    assert main(["obs", "diff", base, worse]) == 3
    assert "REGRESSED jobs_per_sec" in capsys.readouterr().out


def test_obs_diff_json_and_errors(tmp_path, capsys):
    base = _write_artifact(tmp_path / "base.json")
    worse = _write_artifact(tmp_path / "worse.json", deterministic=False)
    assert main(["obs", "diff", base, worse, "--json"]) == 3
    payload = json.loads(capsys.readouterr().out)
    assert payload["ok"] is False
    other = _write_artifact(tmp_path / "other.json", schema="else/v1")
    assert main(["obs", "diff", base, other]) == 2
    assert main(["obs", "diff", base, str(tmp_path / "missing.json")]) == 2


def test_bench_validate_files_and_all(tmp_path, capsys, monkeypatch):
    good = tmp_path / "BENCH_fake.json"
    good.write_text(json.dumps({"schema": "bogus/v1"}))
    assert main(["bench", "validate", str(good)]) == 1
    assert "unknown schema" in capsys.readouterr().out
    assert main(["bench", "validate"]) == 2
    capsys.readouterr()
    # --all against a root with no artifacts is a failure, not a pass
    empty = tmp_path / "empty"
    empty.mkdir()
    assert main(["bench", "validate", "--all", "--root", str(empty)]) == 1


def test_bench_validate_committed_artifacts(capsys):
    # the repo's own committed BENCH_*.json set must validate clean
    assert main(["bench", "validate", "--all"]) == 0
    out = capsys.readouterr().out
    assert "BENCH_fleet.json: ok" in out
