"""Metrics registry: handles, layouts, no-op path, round-trip, merge."""

import pytest

from repro.errors import ObsError
from repro.obs.metrics import (BUCKET_LAYOUTS, MetricsRegistry, NULL_METRIC,
                               NULL_REGISTRY)
from repro.runtime.stats import KivatiStats


def test_counter_and_gauge_semantics():
    reg = MetricsRegistry()
    c = reg.counter("kivati.test.count")
    c.inc()
    c.inc(4)
    assert c.value == 5
    g = reg.gauge("kivati.test.depth")
    g.set(3)
    g.max(2)      # lower: ignored
    g.max(7)
    assert g.value == 7
    assert reg.counter("kivati.test.count") is c


def test_histogram_buckets_and_overflow():
    reg = MetricsRegistry()
    h = reg.histogram("kivati.test.latency", "count")
    for value in (0, 1, 2, 500):
        h.observe(value)
    assert h.count == 4
    assert h.sum == 503
    assert h.counts[-1] == 1          # 500 overflows the "count" layout
    assert sum(h.counts) == h.count


def test_named_layouts_are_strictly_increasing():
    for name, bounds in BUCKET_LAYOUTS.items():
        assert list(bounds) == sorted(set(bounds)), name


def test_kind_and_bounds_conflicts_raise():
    reg = MetricsRegistry()
    reg.counter("a")
    with pytest.raises(ObsError):
        reg.gauge("a")
    reg.histogram("h", "depth")
    with pytest.raises(ObsError):
        reg.histogram("h", "count")
    with pytest.raises(ObsError):
        reg.histogram("bad", "no-such-layout")
    with pytest.raises(ObsError):
        reg.histogram("empty", ())


def test_null_handles_are_shared_noops():
    assert NULL_REGISTRY.counter("x") is NULL_METRIC
    assert NULL_REGISTRY.gauge("y") is NULL_METRIC
    assert NULL_REGISTRY.histogram("z") is NULL_METRIC
    NULL_METRIC.inc()
    NULL_METRIC.set(5)
    NULL_METRIC.max(5)
    NULL_METRIC.observe(5)
    assert not NULL_REGISTRY.enabled
    assert NULL_REGISTRY.to_dict() == {"counters": {}, "gauges": {},
                                       "histograms": {}}


def test_round_trip_preserves_everything():
    reg = MetricsRegistry()
    reg.counter("c").inc(9)
    reg.gauge("g").set(4)
    h = reg.histogram("h", "depth")
    h.observe(1)
    h.observe(40)
    payload = reg.to_dict()
    back = MetricsRegistry.from_dict(payload)
    assert back.to_dict() == payload


def test_from_dict_rejects_unknown_keys_and_bad_counts():
    with pytest.raises(ObsError):
        MetricsRegistry.from_dict({"counters": {}, "bogus": {}})
    with pytest.raises(ObsError):
        MetricsRegistry.from_dict(["not", "a", "dict"])
    with pytest.raises(ObsError):
        MetricsRegistry.from_dict({"histograms": {
            "h": {"bounds": [1, 2], "counts": [1], "sum": 1, "count": 1}}})


def test_merge_is_commutative():
    def build(counter, gauge, obs):
        reg = MetricsRegistry()
        reg.counter("c").inc(counter)
        reg.gauge("g").set(gauge)
        reg.histogram("h", "count").observe(obs)
        return reg

    a_then_b = MetricsRegistry().merge(build(1, 5, 2)).merge(build(10, 3, 64))
    b_then_a = MetricsRegistry().merge(build(10, 3, 64)).merge(build(1, 5, 2))
    assert a_then_b.to_dict() == b_then_a.to_dict()
    merged = a_then_b.to_dict()
    assert merged["counters"]["c"] == 11
    assert merged["gauges"]["g"] == 5          # max wins
    assert merged["histograms"]["h"]["count"] == 2


def test_merge_accepts_dict_payload_and_rejects_bounds_conflict():
    reg = MetricsRegistry()
    reg.counter("c").inc(2)
    reg.merge({"counters": {"c": 3}, "gauges": {}, "histograms": {}})
    assert reg.counter("c").value == 5
    reg.histogram("h", "depth")
    other = MetricsRegistry()
    other.histogram("h", "count")
    with pytest.raises(ObsError):
        reg.merge(other)


def test_ingest_stats_takes_fields_objects_and_dicts():
    stats = KivatiStats()
    stats.traps += 3
    reg = MetricsRegistry()
    reg.ingest_stats(stats)
    assert reg.counter("kivati.stats.traps").value == 3
    reg.ingest_stats({"extra": 2}, prefix="kivati.x.")
    assert reg.counter("kivati.x.extra").value == 2
