"""obsbench: the cheap, deterministic pieces (the timing series runs in
`kivati obs bench` / CI, not in the unit suite)."""

from repro.bench import obsbench


def test_sentinel_selfcheck_passes():
    result = obsbench.sentinel_selfcheck()
    assert result["ok"]
    assert result["identical_pass"]
    assert result["synthetic_flagged"]
    assert result["synthetic_regressions"] == 2


def test_corpus_transparency_on_a_slice():
    verdicts = obsbench.corpus_transparency(bug_ids=["44402"], seeds=(0,))
    assert verdicts["identical"]
    assert verdicts["diffs"] == []
    assert verdicts["runs_checked"] == 1


def test_digest_identity_without_fleet():
    digests = obsbench.digest_identity(scale=0.05, fleet_jobs=False)
    assert digests["all_equal"]
    assert len(digests["apps"]) == 5
    assert all(row["equal"] for row in digests["apps"])


def _payload(**overrides):
    payload = {
        "schema": obsbench.SCHEMA,
        "smoke": True,
        "budget": 0.05,
        "overhead": {
            "apps": [{"app": "NSS", "instrs": 1000, "overhead_frac": 0.01,
                      "base_instrs_per_sec": 100000.0,
                      "obs_instrs_per_sec": 99000.0}],
            "overall_frac": 0.01,
            "rounds": 2,
            "clock": "process_time",
        },
        "verdicts": {"identical": True, "diffs": [], "runs_checked": 1},
        "digests": {"all_equal": True, "apps": []},
        "determinism": {"ok": True, "distinct_outputs": 1},
        "sentinel": {"ok": True},
        "profile": [],
    }
    payload.update(overrides)
    return payload


def test_validate_accepts_clean_payload():
    assert obsbench.validate(_payload()) == []


def test_validate_gates_overhead_budget():
    row = {"app": "NSS", "instrs": 1000, "overhead_frac": 0.30,
           "base_instrs_per_sec": 100000.0, "obs_instrs_per_sec": 70000.0}
    over = _payload(overhead={
        "apps": [row], "overall_frac": 0.30, "rounds": 2,
        "clock": "process_time"})
    problems = obsbench.validate(over)
    assert any("above budget" in p for p in problems)
    # smoke artifacts carry a relaxed budget of their own
    relaxed = _payload(budget=1.0, overhead={
        "apps": [dict(row)], "overall_frac": 0.30, "rounds": 2,
        "clock": "process_time"})
    assert obsbench.validate(relaxed) == []


def test_validate_gates_transparency_and_determinism():
    assert any("verdict" in p for p in obsbench.validate(
        _payload(verdicts={"identical": False, "diffs": ["x"]})))
    assert any("digests differ" in p for p in obsbench.validate(
        _payload(digests={"all_equal": False})))
    assert any("byte-identical" in p for p in obsbench.validate(
        _payload(determinism={"ok": False, "distinct_outputs": 2})))
    assert any("sentinel" in p for p in obsbench.validate(
        _payload(sentinel={"ok": False})))
    assert any("5 apps" in p for p in obsbench.validate(
        _payload(smoke=False)))


def test_render_mentions_the_gates():
    text = obsbench.render(_payload())
    assert "Observability overhead" in text
    assert "verdicts identical" in text
    assert "sentinel ok" in text
