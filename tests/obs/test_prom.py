"""Prometheus exposition: sanitization, golden output, flat renderer."""

from repro.obs.metrics import MetricsRegistry
from repro.obs.prom import render_flat, render_metrics, sanitize_name


def test_sanitize_name():
    assert sanitize_name("kivati.vm.op.ld") == "kivati_vm_op_ld"
    assert sanitize_name("a-b c") == "a_b_c"
    assert sanitize_name("7lead") == "_7lead"
    assert sanitize_name("") == "_"
    assert sanitize_name("keep:colon_ok") == "keep:colon_ok"


def test_render_metrics_golden():
    reg = MetricsRegistry()
    reg.counter("kivati.run.count").inc(2)
    reg.gauge("kivati.run.threads").set(5)
    h = reg.histogram("depths", (1, 2))
    h.observe(1)
    h.observe(1)
    h.observe(9)
    text = render_metrics(reg)
    assert text == (
        "# TYPE kivati_run_count counter\n"
        "kivati_run_count 2\n"
        "# TYPE kivati_run_threads gauge\n"
        "kivati_run_threads 5\n"
        "# TYPE depths histogram\n"
        'depths_bucket{le="1"} 2\n'
        'depths_bucket{le="2"} 2\n'
        'depths_bucket{le="+Inf"} 3\n'
        "depths_sum 11\n"
        "depths_count 3\n")


def test_render_metrics_accepts_registry_or_payload():
    reg = MetricsRegistry()
    reg.counter("c").inc()
    assert render_metrics(reg) == render_metrics(reg.to_dict())


def test_render_flat_skips_non_numeric_and_casts_bools():
    text = render_flat({"requests": 4, "rate": 0.5, "draining": True,
                        "detail": ["not", "numeric"], "name": "w0"},
                       prefix="kivati_service_")
    assert "kivati_service_requests 4" in text
    assert "kivati_service_rate 0.5" in text
    assert "kivati_service_draining 1" in text
    assert "detail" not in text
    assert "name" not in text
    assert text.endswith("\n")


def test_render_empty_is_empty_string():
    assert render_metrics(MetricsRegistry()) == ""
    assert render_flat({}) == ""
