"""Perf-regression sentinel: rules, directions, tolerances, reports."""

import pytest

from repro.errors import ObsError
from repro.obs.regress import (Rule, compare_artifacts, flatten)


def _artifact(**overrides):
    base = {
        "schema": "kivati-selftest/v1",
        "jobs_per_sec": 100.0,
        "speedup_vs_1": 2.0,
        "latency_p50": 10.0,
        "deterministic": True,
        "config": {"workers": 4},
        "series": [{"elapsed_s": 5.0}],
    }
    base.update(overrides)
    return base


def test_flatten_paths_and_leaves():
    leaves = dict(flatten(_artifact()))
    assert leaves["jobs_per_sec"] == 100.0
    assert leaves["series.0.elapsed_s"] == 5.0
    assert leaves["deterministic"] is True
    assert "schema" not in leaves  # strings are not governed


def test_identical_artifacts_pass():
    report = compare_artifacts(_artifact(), _artifact())
    assert report.ok
    assert report.checked > 0
    assert report.regressions == []


def test_higher_direction_catches_throughput_drop():
    report = compare_artifacts(_artifact(),
                               _artifact(jobs_per_sec=80.0))
    assert not report.ok
    paths = [f["path"] for f in report.regressions]
    assert paths == ["jobs_per_sec"]


def test_tolerance_allows_small_drift():
    # 5% drop is inside the 10% *per_sec* tolerance
    report = compare_artifacts(_artifact(), _artifact(jobs_per_sec=95.0))
    assert report.ok
    # and rel_tol_scale can tighten it below the drift
    strict = compare_artifacts(_artifact(), _artifact(jobs_per_sec=95.0),
                               rel_tol_scale=0.1)
    assert not strict.ok


def test_lower_direction_catches_latency_rise():
    report = compare_artifacts(_artifact(), _artifact(latency_p50=20.0))
    assert [f["path"] for f in report.regressions] == ["latency_p50"]
    # improvements are reported, never fatal
    faster = compare_artifacts(_artifact(), _artifact(latency_p50=1.0))
    assert faster.ok
    assert [f["path"] for f in faster.improvements] == ["latency_p50"]


def test_bool_direction_has_no_tolerance():
    report = compare_artifacts(_artifact(), _artifact(deterministic=False))
    assert [f["path"] for f in report.regressions] == ["deterministic"]


def test_missing_governed_metric_fails():
    new = _artifact()
    del new["jobs_per_sec"]
    report = compare_artifacts(_artifact(), new)
    assert not report.ok
    assert report.missing == ["jobs_per_sec"]
    assert "MISSING" in report.describe()


def test_added_metrics_are_informational():
    report = compare_artifacts(_artifact(),
                               _artifact(extra_per_sec=5.0))
    assert report.ok
    assert report.added == ["extra_per_sec"]


def test_schema_mismatch_and_bad_inputs_raise():
    with pytest.raises(ObsError):
        compare_artifacts(_artifact(), _artifact(schema="other/v1"))
    with pytest.raises(ObsError):
        compare_artifacts({"no_schema": 1}, {"no_schema": 1})
    with pytest.raises(ObsError):
        compare_artifacts([], {})


def test_obsbench_overhead_rule_is_zero_tolerance():
    base = {"schema": "kivati-obsbench/v1",
            "overhead": {"NSS": {"overhead_frac": 0.02}}}
    worse = {"schema": "kivati-obsbench/v1",
             "overhead": {"NSS": {"overhead_frac": 0.021}}}
    report = compare_artifacts(base, worse)
    assert not report.ok


def test_rule_validation():
    with pytest.raises(ObsError):
        Rule("*", "sideways")
    rule = Rule("a.*.b", "higher", 0.1)
    assert rule.matches("a.x.b")
    assert not rule.matches("a.b")


def test_report_round_trips_as_dict():
    report = compare_artifacts(_artifact(), _artifact(jobs_per_sec=1.0))
    payload = report.as_dict()
    assert payload["ok"] is False
    assert payload["schema"] == "kivati-selftest/v1"
    assert payload["regressions"][0]["path"] == "jobs_per_sec"
