"""VM profiler: per-pc counting, flush/aggregation, exports."""

from repro.core.config import KivatiConfig, Mode
from repro.core.session import ProtectedProgram
from repro.obs import MetricsRegistry, ObsPlane, VMProfiler


class _Instr:
    class _Op:
        def __init__(self, value):
            self.value = value

    def __init__(self, name):
        self.op = self._Op(name)


SRC = """
int x = 0;

void worker() {
    int i = 0;
    while (i < 3) {
        int t = x;
        x = t + 1;
        i = i + 1;
    }
}

void main() {
    spawn worker();
    spawn worker();
    join();
    output(x);
}
"""


def test_attach_program_per_pc_counting_aggregates_by_name():
    prof = VMProfiler()
    counts = prof.attach_program([_Instr("ld"), _Instr("st"), _Instr("ld")])
    counts[0] += 4
    counts[2] += 6
    counts[1] += 1
    assert prof.total_dispatches == 11
    assert prof.named_op_counts() == {"ld": 10, "st": 1}


def test_reattach_flushes_previous_program():
    prof = VMProfiler()
    first = prof.attach_program([_Instr("ld")])
    first[0] += 5
    second = prof.attach_program([_Instr("st")])
    second[0] += 2
    assert prof.named_op_counts() == {"ld": 5, "st": 2}
    assert prof.total_dispatches == 7


def test_manual_hooks_and_wall_attribution():
    prof = VMProfiler(wall_time=True)
    prof.count_op("add")
    prof.count_op("add")
    prof.add_wall_ns(100)
    prof.note_wp_check(3, 0)
    prof.note_wp_check(2, 2)
    prof.note_suspend(1)
    prof.note_suspend(4)
    assert prof.named_op_counts() == {"add": 2}
    assert prof.named_op_wall_ns() == {"add": 100}
    assert prof.wp_checks == 2
    assert prof.wp_accesses == 5
    assert prof.wp_hit_checks == 1
    assert prof.wp_hit_slots == 2
    assert prof.wp_hit_rate == 0.5
    assert prof.suspend_peak == 4
    assert prof.suspend_depth.count == 2


def test_as_dict_is_sorted_and_wall_gated():
    prof = VMProfiler(wall_time=True)
    prof.count_op("st")
    prof.add_wall_ns(7)
    payload = prof.as_dict()
    assert "wall_ns" not in payload
    assert list(payload["ops"]) == sorted(payload["ops"])
    wall = prof.as_dict(include_wall=True)
    assert wall["wall_ns"] == {"st": 7}


def test_run_dispatch_counts_match_instr_count():
    obs = ObsPlane()
    report = ProtectedProgram(SRC).run(KivatiConfig(obs=obs))
    prof = obs.profiler
    assert prof.total_dispatches == report.result.instr_count
    counts = prof.named_op_counts()
    assert sum(counts.values()) == report.result.instr_count
    assert prof.wp_checks > 0
    # every access probe belongs to some check
    assert prof.wp_accesses >= prof.wp_checks


def test_runs_are_deterministic_across_repeats():
    def profile():
        obs = ObsPlane()
        ProtectedProgram(SRC).run(KivatiConfig(seed=5, obs=obs))
        return obs.profiler.as_dict()

    assert profile() == profile()


def test_export_to_registry_and_hot_path_table():
    obs = ObsPlane()
    ProtectedProgram(SRC).run(KivatiConfig(obs=obs))
    reg = MetricsRegistry()
    obs.profiler.export_to(reg)
    payload = reg.to_dict()
    op_counters = {k: v for k, v in payload["counters"].items()
                   if k.startswith("kivati.vm.op.")}
    assert sum(op_counters.values()) == obs.profiler.total_dispatches
    assert payload["counters"]["kivati.vm.wp.checks"] \
        == obs.profiler.wp_checks
    assert "kivati.kernel.suspend_depth" in payload["histograms"]
    table = obs.profiler.hot_path_table(top=3)
    assert "hot path:" in table
    assert "cum%" in table


def test_empty_profiler_renders_without_dividing_by_zero():
    table = VMProfiler().hot_path_table()
    assert "no instructions dispatched" in table
