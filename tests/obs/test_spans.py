"""Span builders and the Chrome trace export format."""

import json
import os
import subprocess
import sys

from repro.core.config import KivatiConfig
from repro.core.session import ProtectedProgram
from repro.journal.replay import record_run
from repro.obs.spans import (PID_FLEET, PID_SERVICE, PID_THREADS,
                             export_chrome_trace, fleet_trace_events,
                             journal_trace_events, render_chrome_trace,
                             service_trace_events, validate_chrome_trace)

RACY = """
int shared = 0;

void bump() {
    int i = 0;
    while (i < 4) {
        int t = shared;
        shared = t + 1;
        i = i + 1;
    }
}

void main() {
    spawn bump();
    spawn bump();
    join();
    output(shared);
}
"""


def _journal_events(seed=3):
    _, recorder = record_run(ProtectedProgram(RACY),
                             KivatiConfig(seed=seed))
    return recorder.events


def test_journal_spans_are_well_formed():
    events = journal_trace_events(_journal_events())
    problems = validate_chrome_trace({"traceEvents": events})
    assert problems == []
    spans = [e for e in events if e["ph"] == "X"]
    assert spans, "expected at least one AR/core span"
    assert all(e["dur"] >= 0 for e in spans)
    assert any(e["pid"] == PID_THREADS for e in spans)


def test_journal_spans_replay_identical():
    a = render_chrome_trace(journal_trace_events(_journal_events()))
    b = render_chrome_trace(journal_trace_events(_journal_events()))
    assert a == b


def test_render_is_byte_deterministic_across_hashseed():
    script = (
        "import sys\n"
        "from repro.core.config import KivatiConfig\n"
        "from repro.core.session import ProtectedProgram\n"
        "from repro.journal.replay import record_run\n"
        "from repro.obs.spans import journal_trace_events, "
        "render_chrome_trace\n"
        "src = open(sys.argv[1]).read()\n"
        "_, rec = record_run(ProtectedProgram(src), KivatiConfig(seed=3))\n"
        "print(render_chrome_trace(journal_trace_events(rec.events)))\n")
    outputs = set()
    for hashseed in ("0", "12345"):
        env = dict(os.environ, PYTHONHASHSEED=hashseed,
                   PYTHONPATH=os.pathsep.join(sys.path))
        prog = os.path.join(os.path.dirname(__file__), "_racy_prog.c")
        try:
            with open(prog, "w") as f:
                f.write(RACY)
            outputs.add(subprocess.run(
                [sys.executable, "-c", script, prog], env=env,
                capture_output=True, text=True, check=True).stdout)
        finally:
            os.unlink(prog)
    assert len(outputs) == 1


def test_service_spans_use_logical_clock():
    log = [
        {"seq": 1, "kind": "accept", "request_id": "r1", "job_id": "j",
         "deadline_s": 5.0},
        {"seq": 2, "kind": "dispatch", "request_id": "r1",
         "worker_id": "w0", "attempt": 0},
        {"seq": 3, "kind": "respond", "request_id": "r1", "ok": True},
        {"seq": 4, "kind": "accept", "request_id": "r2", "job_id": "j2",
         "deadline_s": 5.0},
    ]
    events = service_trace_events(log)
    assert validate_chrome_trace({"traceEvents": events}) == []
    spans = [e for e in events if e["ph"] == "X"]
    assert len(spans) == 2
    done = next(s for s in spans if s["name"] == "request r1")
    assert done["ts"] == 1.0 and done["dur"] == 2.0
    assert done["args"]["ok"] is True
    hung = next(s for s in spans if s["name"] == "request r2")
    assert hung["args"]["unresponded"] is True
    assert all(s["pid"] == PID_SERVICE for s in spans)


def test_fleet_spans_one_lane_per_worker():
    timeline = [
        {"job_id": "a", "worker_id": "w0", "attempt": 0,
         "start_s": 0.0, "end_s": 0.5, "status": "ok"},
        {"job_id": "b", "worker_id": "w1", "attempt": 0,
         "start_s": 0.1, "end_s": 0.2, "status": "crash"},
        {"job_id": "b", "worker_id": "w0", "attempt": 1,
         "start_s": 0.6, "end_s": 0.9, "status": "ok"},
    ]
    events = fleet_trace_events(timeline)
    assert validate_chrome_trace({"traceEvents": events}) == []
    spans = [e for e in events if e["ph"] == "X"]
    assert {s["tid"] for s in spans} == {0, 1}
    retry = next(s for s in spans if s["name"] == "b#1")
    assert retry["ts"] == 0.6 * 1e6
    assert all(s["pid"] == PID_FLEET for s in spans)


def test_export_writes_canonical_json(tmp_path):
    events = journal_trace_events(_journal_events())
    out = tmp_path / "trace.json"
    written = export_chrome_trace(events, str(out))
    data = out.read_text()
    assert len(data) == written
    payload = json.loads(data)
    assert payload["displayTimeUnit"] == "ms"
    assert validate_chrome_trace(payload) == []
    assert data == render_chrome_trace(events)


def test_validate_rejects_malformed_traces():
    assert validate_chrome_trace([]) != []
    assert validate_chrome_trace({"traceEvents": "nope"}) != []
    bad = {"traceEvents": [{"ph": "X", "pid": 1, "tid": 0, "name": "s",
                            "ts": 0.0, "dur": -1.0}]}
    assert any("dur" in p for p in validate_chrome_trace(bad))
    unknown = {"traceEvents": [{"ph": "Q", "pid": 1, "tid": 0,
                                "name": "s"}]}
    assert any("phase" in p for p in validate_chrome_trace(unknown))
