"""The obs plane must be invisible to the simulation: verdicts, stats,
simulated time and journal streams are bit-identical obs-on vs obs-off."""

from repro.bench.obsbench import _report_digest
from repro.core.config import KivatiConfig, Mode
from repro.core.session import ProtectedProgram
from repro.journal.replay import record_run
from repro.obs import ObsPlane
from repro.workloads.bugs import BUGS

RACY = """
int shared = 0;

void bump() {
    int i = 0;
    while (i < 4) {
        int t = shared;
        shared = t + 1;
        i = i + 1;
    }
}

void main() {
    spawn bump();
    spawn bump();
    join();
    output(shared);
}
"""


def _multiset(report):
    return sorted((v.ar_id, v.local_tid, v.remote_tid, v.time_ns)
                  for v in report.violations)


def test_simple_run_is_bit_identical():
    pp = ProtectedProgram(RACY)
    base = pp.run(KivatiConfig(seed=2))
    obs = ObsPlane()
    observed = pp.run(KivatiConfig(seed=2, obs=obs))
    assert observed.output == base.output
    assert observed.time_ns == base.time_ns
    assert observed.result.instr_count == base.result.instr_count
    assert observed.stats.as_dict() == base.stats.as_dict()
    assert _multiset(observed) == _multiset(base)
    # and the plane actually observed the run
    assert obs.profiler.total_dispatches == base.result.instr_count


def test_journaled_digest_identical_with_wall_mode():
    pp = ProtectedProgram(RACY)
    base_rep, base_rec = record_run(pp, KivatiConfig(seed=4))
    obs_rep, obs_rec = record_run(
        pp, KivatiConfig(seed=4, obs=ObsPlane(wall_time=True)))
    assert _report_digest(obs_rep, obs_rec) \
        == _report_digest(base_rep, base_rec)


def test_bug_corpus_verdicts_unchanged():
    from repro.bench.scale import corpus_config

    bug = BUGS["44402"]
    pp = ProtectedProgram(bug.source)
    config = corpus_config(seed=0)
    base = pp.run(config)
    observed = pp.run(config.copy(obs=ObsPlane()))
    assert _multiset(observed) == _multiset(base)
    assert observed.stats.as_dict() == base.stats.as_dict()


def test_finalize_run_populates_registry():
    obs = ObsPlane()
    report = ProtectedProgram(RACY).run(KivatiConfig(obs=obs))
    snap = obs.snapshot()
    assert snap["counters"]["kivati.run.count"] == 1
    assert snap["counters"]["kivati.run.instructions"] \
        == report.result.instr_count
    assert snap["counters"]["kivati.stats.traps"] == report.stats.traps
    assert snap["gauges"]["kivati.run.time_ns"] == report.time_ns
    # snapshot is idempotent — profiler counts merge, never double-ingest
    assert obs.snapshot() == snap


def test_obs_off_leaves_no_hooks_armed():
    pp = ProtectedProgram(RACY)
    config = KivatiConfig(seed=2)
    assert config.obs is None
    report = pp.run(config)
    assert report.violations is not None  # ran fine with no plane
