"""Kernel data structure unit tests."""

from repro.analysis.arinfo import ARInfo
from repro.kernel.state import ActiveAR, KernelSlot, Suspension, Trigger
from repro.minic import ast
from repro.minic.ast import AccessKind

R = AccessKind.READ
W = AccessKind.WRITE


def make_info(ar_id=1, first=R, seconds=(W,), sync=False):
    return ARInfo(
        ar_id=ar_id, func="f", var="x", first_kind=first,
        begin_uid=10, second_kinds={20 + i: k for i, k in enumerate(seconds)},
        line=1, second_lines={20: 2}, is_sync=sync,
        lvalue=ast.Var("x"),
    )


def make_ar(info, tid=1, addr=100, slot=0, pending=False):
    return ActiveAR(info, tid, addr, depth=0, begin_time=0,
                    slot_index=slot, pending_capture=pending)


def test_slot_free_resets_everything():
    slot = KernelSlot(0)
    slot.enabled = True
    slot.addr = 5
    slot.ars = [make_ar(make_info())]
    slot.triggers = [Trigger(2, (W,), None, "?", 0, False)]
    slot.lazily_freed = True
    slot.free()
    assert not slot.enabled
    assert slot.ars == [] and slot.triggers == []
    assert not slot.lazily_freed
    assert slot.is_available


def test_recompute_kinds_unions_over_ars():
    slot = KernelSlot(0)
    slot.ars = [make_ar(make_info(1, R, (W,))),   # watch W
                make_ar(make_info(2, W, (W,)))]   # watch R
    changed = slot.recompute_kinds(o3_enabled=False)
    assert changed
    assert slot.watch_read and slot.watch_write


def test_pending_capture_forces_write_watch():
    slot = KernelSlot(0)
    # (W, W) pair alone watches reads only...
    slot.ars = [make_ar(make_info(1, W, (W,)))]
    slot.recompute_kinds(o3_enabled=False)
    assert slot.watch_read and not slot.watch_write
    # ...until a pending first-write capture requires the write trap
    slot.ars[0].pending_capture = True
    slot.recompute_kinds(o3_enabled=False)
    assert slot.watch_write


def test_o3_suppression_lists_owner_tids():
    slot = KernelSlot(0)
    slot.ars = [make_ar(make_info(1), tid=7)]
    slot.recompute_kinds(o3_enabled=True)
    assert slot.suppressed_tids == frozenset({7})
    slot.recompute_kinds(o3_enabled=False)
    assert slot.suppressed_tids is None


def test_slot_matches_like_hardware():
    slot = KernelSlot(0)
    slot.enabled = True
    slot.addr = 100
    slot.size = 1
    slot.watch_write = True
    assert slot.matches(100, True, tid=5)
    assert not slot.matches(100, False, tid=5)
    assert not slot.matches(101, True, tid=5)
    slot.suppressed_tids = frozenset({5})
    assert not slot.matches(100, True, tid=5)
    assert slot.matches(100, True, tid=6)


def test_suspension_reason_constants():
    s = Suspension(3, Suspension.REASON_TRAP, timeout_event=None)
    assert s.reason == "trap"
    assert Suspension.REASON_BEGIN == "begin"


def test_trigger_repr_includes_kinds():
    t = Trigger(4, (R, W), 12, "loc", 100, True)
    assert "R/W" in repr(t)


def test_ar_info_describe_mentions_sync():
    info = make_info(sync=True)
    assert "[sync]" in info.describe()
    assert "AR 1" in info.describe()
