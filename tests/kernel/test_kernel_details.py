"""Remaining kernel behaviours: preferential wakeup, re-begin refresh,
thread-exit cleanup, clear_ar depth semantics."""

from repro.core.config import KivatiConfig, OptLevel
from repro.core.session import ProtectedProgram


def run(src, seed=1, **over):
    pp = ProtectedProgram(src)
    return pp, pp.run(KivatiConfig(opt=OptLevel.BASE, **over), seed=seed)


def test_preferential_wakeup_trap_suspended_first():
    # one thread is suspended by a trap (it already tried to access),
    # another is blocked at its own begin_atomic; when the AR ends, the
    # trap-suspended thread must be released first, so its write lands
    # before the begin-blocked thread's increment
    src = """
    int x = 0;
    void holder() {
        int t = x;
        sleep(60000);
        x = t + 1;
    }
    void trapper() {
        sleep(10000);
        x = 50;
    }
    void beginner() {
        sleep(20000);
        int t = x;
        x = t + 1;
    }
    void main() {
        spawn holder();
        spawn trapper();
        spawn beginner();
        join();
        output(x);
    }
    """
    pp, report = run(src)
    # serial order enforced: holder (x=1), then trapper (x=50), then
    # beginner (x=51)
    assert report.output == [51]
    assert report.stats.suspensions >= 2


def test_rebegin_refreshes_active_ar():
    # the same AR id begins again (loop) before its end executes on the
    # taken path; the kernel must refresh rather than leak slots
    src = """
    int x = 0;
    void f(int n) {
        int i = 0;
        while (i < n) {
            int t = x;
            if (t > 1000) {
                x = t + 1;
            }
            i = i + 1;
        }
    }
    void main() {
        f(20);
        output(x);
    }
    """
    pp, report = run(src)
    assert report.output == [0]
    assert not report.result.deadlocked
    # the watchpoints must all be free at the end
    stats = report.stats
    assert stats.monitored_ars > 0


def test_thread_exit_releases_ars():
    # a thread dies while holding an AR (begin without end on its path);
    # a second thread must then be able to monitor the same variable
    src = """
    int x = 0;
    void opener() {
        int t = x;
        /* AR on x is open: the pairing write is unreachable */
        if (t > 1000) {
            x = t + 1;
        }
    }
    void later() {
        sleep(30000);
        int t = x;
        x = t + 1;
    }
    void main() {
        spawn opener();
        spawn later();
        join();
        output(x);
    }
    """
    pp, report = run(src)
    assert report.output == [1]
    assert not report.result.deadlocked


def test_clear_ar_scopes_to_subroutine_depth():
    # an AR opened in a callee must be cleared at the callee's exit and
    # must not survive into the caller (no false violation later)
    src = """
    int x = 0;
    void callee() {
        int t = x;
        if (t > 1000) {
            x = t + 1;
        }
    }
    void writer() {
        sleep(30000);
        x = 99;
    }
    void caller() {
        callee();
        sleep(60000);
    }
    void main() {
        spawn caller();
        spawn writer();
        join();
        output(x);
    }
    """
    pp, report = run(src)
    # callee's dangling AR was cleared at its exit, so the writer's later
    # store is not a violation
    assert not [v for v in report.violations if v.var == "x"]
    assert report.output == [99]
