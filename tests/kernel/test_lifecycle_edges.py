"""Lifecycle edge cases: orphan end_atomics, wake semantics, overhead
helper."""

from repro.compiler.codegen import compile_program
from repro.core.config import KivatiConfig, OptLevel
from repro.core.reports import ViolationLog
from repro.core.session import ProtectedProgram
from repro.machine.machine import Machine
from repro.machine.threads import ThreadState
from repro.minic.parser import parse
from repro.runtime.userlib import KivatiRuntime


def test_end_atomic_without_begin_is_noop():
    # path-dependent ends: the else-branch end_atomic runs without its
    # begin having executed (Figure 4's discussion)
    src = """
    int g = 0;
    void f(int c) {
        if (c) {
            g = 1;
        }
        int t = g;
        g = t + 1;
    }
    void main() {
        f(0);
        output(g);
    }
    """
    pp = ProtectedProgram(src)
    report = pp.run(KivatiConfig(opt=OptLevel.BASE), seed=0)
    assert report.output == [1]
    assert not report.result.deadlocked


def test_wake_thread_ignores_done_and_runnable():
    machine = Machine(compile_program(parse("void main() { sleep(100); }")))
    machine.run()
    # main is DONE now
    assert machine.wake_thread(0) is False
    assert machine.wake_thread(999) is False


def test_block_current_requires_running_thread():
    import pytest

    from repro.errors import MachineError

    machine = Machine(compile_program(parse("void main() {}")))
    with pytest.raises(MachineError):
        machine.block_current(machine.cores[0], ThreadState.SLEEPING)


def test_overhead_helper_consistent_with_manual_ratio():
    src = """
    int g = 0;
    void main() {
        int i = 0;
        while (i < 30) {
            int t = g;
            g = t + 1;
            i = i + 1;
        }
        output(g);
    }
    """
    pp = ProtectedProgram(src)
    config = KivatiConfig(opt=OptLevel.BASE)
    overhead = pp.overhead(config, seed=2)
    vanilla = pp.run_vanilla(num_cores=config.num_cores,
                             costs=config.costs, seed=2)
    protected = pp.run(config.copy(seed=2))
    manual = protected.time_ns / vanilla.time_ns - 1.0
    assert abs(overhead - manual) < 1e-9
    assert overhead > 0


def test_runtime_reusable_state_isolated_between_runs():
    # two runs from the same ProtectedProgram must not share kernel state
    src = """
    int x = 0;
    void local_thread() {
        int t = x;
        sleep(40000);
        x = t + 1;
    }
    void remote_thread() {
        sleep(15000);
        x = 99;
    }
    void main() {
        spawn local_thread();
        spawn remote_thread();
        join();
    }
    """
    pp = ProtectedProgram(src)
    first = pp.run(KivatiConfig(opt=OptLevel.BASE), seed=1)
    second = pp.run(KivatiConfig(opt=OptLevel.BASE), seed=1)
    assert len(first.violations) == len(second.violations) == 1
    assert first.stats.as_dict() == second.stats.as_dict()
    assert first.time_ns == second.time_ns


def test_violation_log_not_shared_across_runtimes():
    src = "int g = 0; void main() { int t = g; g = t + 1; }"
    pp = ProtectedProgram(src)
    config = KivatiConfig(opt=OptLevel.BASE)
    log1 = ViolationLog()
    log2 = ViolationLog()
    rt1 = KivatiRuntime(config, pp.ar_table, log1, pp.sync_ar_ids)
    rt2 = KivatiRuntime(config, pp.ar_table, log2, pp.sync_ar_ids)
    assert rt1.kernel is not rt2.kernel
    assert rt1.whitelist is not rt2.whitelist
