"""Detection of the four non-serializable interleavings (Figure 2).

Each test builds a two-thread program where the remote access lands inside
the local pair's window (sequenced deterministically with sleeps), runs it
under Kivati, and checks the recorded interleaving.
"""

import pytest

from repro.core.config import KivatiConfig, OptLevel
from repro.core.session import ProtectedProgram
from repro.minic.ast import AccessKind

R = AccessKind.READ
W = AccessKind.WRITE


def run_case(src, opt=OptLevel.BASE, seed=1, **over):
    pp = ProtectedProgram(src)
    report = pp.run(KivatiConfig(opt=opt, **over), seed=seed)
    return pp, report


def violations_on(report, var):
    return [v for v in report.violations if v.var == var]


def test_rwr_detected():
    # local R ... R with remote W in between
    _, report = run_case("""
    int x = 5;
    void local_thread(int *out) {
        int a = x;
        sleep(40000);
        int b = x;
        *out = a - b;
    }
    void remote_thread() {
        sleep(15000);
        x = 9;
    }
    void main() {
        int d = 0;
        spawn local_thread(&d);
        spawn remote_thread();
        join();
        output(d);
    }
    """)
    found = violations_on(report, "x")
    assert found
    assert any((v.first_kind, v.remote_kind, v.second_kind) == (R, W, R)
               for v in found)


def test_rww_detected_and_prevented():
    _, report = run_case("""
    int x = 0;
    void local_thread() {
        int t = x;
        sleep(40000);
        x = t + 1;
    }
    void remote_thread() {
        sleep(15000);
        x = 99;
    }
    void main() {
        spawn local_thread();
        spawn remote_thread();
        join();
        output(x);
    }
    """)
    found = violations_on(report, "x")
    assert any((v.first_kind, v.remote_kind, v.second_kind) == (R, W, W)
               for v in found)
    assert all(v.prevented for v in found)
    # remote write reordered after the AR: no lost update
    assert report.output == [99]


def test_wwr_detected():
    _, report = run_case("""
    int x = 0;
    void local_thread(int *out) {
        x = 7;
        sleep(40000);
        *out = x;
    }
    void remote_thread() {
        sleep(15000);
        x = 50;
    }
    void main() {
        int got = 0;
        spawn local_thread(&got);
        spawn remote_thread();
        join();
        output(got);
    }
    """)
    found = violations_on(report, "x")
    assert any((v.first_kind, v.remote_kind, v.second_kind) == (W, W, R)
               for v in found)
    # prevention: the local read sees its own write, not the remote one
    assert report.output == [7]


def test_wrw_detected():
    # local W ... W with remote R in between (remote sees intermediate)
    _, report = run_case("""
    int x = 0;
    int seen = 0;
    void local_thread() {
        x = 1;
        sleep(40000);
        x = 2;
    }
    void peek() {
        seen = x;
    }
    void remote_thread() {
        sleep(15000);
        peek();
    }
    void main() {
        spawn local_thread();
        spawn remote_thread();
        join();
        output(seen);
        output(x);
    }
    """)
    found = violations_on(report, "x")
    assert any((v.first_kind, v.remote_kind, v.second_kind) == (W, R, W)
               for v in found)
    # the peek was delayed past the AR: it must not see the intermediate 1
    assert report.output[0] in (0, 2)
    assert report.output[1] == 2


def test_serializable_interleaving_not_reported():
    # remote READ between two local reads is serializable
    _, report = run_case("""
    int x = 5;
    int r1 = 0;
    int r2 = 0;
    void local_thread() {
        int a = x;
        sleep(40000);
        int b = x;
        r1 = a + b;
    }
    void peek() { r2 = x; }
    void remote_thread() {
        sleep(15000);
        peek();
    }
    void main() {
        spawn local_thread();
        spawn remote_thread();
        join();
        output(r1);
    }
    """)
    assert violations_on(report, "x") == []
    assert report.output == [10]


def test_no_violation_without_concurrency():
    _, report = run_case("""
    int x = 0;
    void main() {
        int t = x;
        x = t + 1;
        output(x);
    }
    """)
    assert len(report.violations) == 0
    assert report.output == [1]


def test_violation_record_details():
    pp, report = run_case("""
    int x = 0;
    void local_thread() {
        int t = x;
        sleep(40000);
        x = t + 1;
    }
    void remote_thread() {
        sleep(15000);
        x = 99;
    }
    void main() {
        spawn local_thread();
        spawn remote_thread();
        join();
    }
    """)
    v = violations_on(report, "x")[0]
    assert v.local_tid != v.remote_tid
    assert v.addr == pp.program.global_addr("x")
    assert v.func == "local_thread"
    assert "remote_thread" in v.remote_location or "begin_atomic" in v.remote_location
    assert v.time_ns > 0
    assert "x" in v.describe()


def test_detection_works_across_opt_levels():
    src = """
    int x = 0;
    void local_thread() {
        int t = x;
        sleep(40000);
        x = t + 1;
    }
    void remote_thread() {
        sleep(15000);
        x = 99;
    }
    void main() {
        spawn local_thread();
        spawn remote_thread();
        join();
        output(x);
    }
    """
    for opt in (OptLevel.BASE, OptLevel.SYNCVARS, OptLevel.OPTIMIZED):
        _, report = run_case(src, opt=opt)
        assert violations_on(report, "x"), opt
        assert report.output == [99], opt


def test_null_syscall_mode_detects_nothing():
    _, report = run_case("""
    int x = 0;
    void local_thread() {
        int t = x;
        sleep(40000);
        x = t + 1;
    }
    void remote_thread() {
        sleep(15000);
        x = 99;
    }
    void main() {
        spawn local_thread();
        spawn remote_thread();
        join();
        output(x);
    }
    """, opt=OptLevel.NULL_SYSCALL)
    assert len(report.violations) == 0
    # and nothing is prevented: the lost update happens
    assert report.output == [1]
    assert report.stats.crossings() > 0
