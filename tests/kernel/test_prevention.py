"""Prevention engine tests: undo, reordering, suspension, timeouts."""

from repro.core.config import KivatiConfig, Mode, OptLevel
from repro.core.session import ProtectedProgram
from repro.machine.costs import CostModel

LOST_UPDATE = """
int x = 0;
void local_thread() {
    int t = x;
    sleep(40000);
    x = t + 1;
}
void remote_thread() {
    sleep(15000);
    x = 99;
}
void main() {
    spawn local_thread();
    spawn remote_thread();
    join();
    output(x);
}
"""


def run(src, opt=OptLevel.BASE, seed=1, **over):
    pp = ProtectedProgram(src)
    return pp, pp.run(KivatiConfig(opt=opt, **over), seed=seed)


def test_vanilla_loses_update_kivati_preserves_it():
    pp = ProtectedProgram(LOST_UPDATE)
    vanilla = pp.run_vanilla(seed=1)
    assert vanilla.output == [1]  # lost update
    report = pp.run(KivatiConfig(opt=OptLevel.BASE), seed=1)
    assert report.output == [99]  # remote write reordered after the AR
    assert report.stats.undos >= 1
    assert report.stats.suspensions >= 1


def test_remote_write_undone_then_reexecuted():
    # the local thread must observe its own value inside the AR even
    # though the remote write already committed (trap-after)
    _, report = run("""
    int x = 0;
    int observed = 0;
    void local_thread() {
        x = 5;
        sleep(40000);
        observed = x;
        x = observed + 1;
    }
    void remote_thread() {
        sleep(15000);
        x = 77;
    }
    void main() {
        spawn local_thread();
        spawn remote_thread();
        join();
        output(observed);
        output(x);
    }
    """)
    assert report.output[0] == 5   # undo restored the local value
    assert report.output[1] == 77  # remote write re-executed after the AR


def test_remote_read_into_register_reexecutes_with_final_value():
    _, report = run("""
    int x = 0;
    int got = 0;
    void local_thread() {
        x = 1;
        sleep(40000);
        x = 2;
    }
    void reader() { got = x; }
    void remote_thread() {
        sleep(15000);
        reader();
    }
    void main() {
        spawn local_thread();
        spawn remote_thread();
        join();
        output(got);
    }
    """)
    # the read was delayed past the AR, so it must not see the
    # intermediate value 1
    assert report.output == [2]


def test_suspension_timeout_releases_thread():
    # the local thread never executes end_atomic in time (it sleeps far
    # longer than the timeout); the remote thread must be released by the
    # 10ms-equivalent timeout rather than hang
    _, report = run("""
    int x = 0;
    void local_thread() {
        int t = x;
        sleep(400000);
        x = t + 1;
    }
    void remote_thread() {
        sleep(15000);
        x = 99;
    }
    void main() {
        spawn local_thread();
        spawn remote_thread();
        join();
        output(x);
    }
    """, suspend_timeout_ns=50_000)
    assert report.stats.suspend_timeouts >= 1
    # after the timeout the remote write proceeds; the local write then
    # clobbers it: the violation occurred and was NOT prevented
    assert report.output == [1]
    assert any(not v.prevented for v in report.violations)


def test_late_end_atomic_records_unprevented_violation():
    # same setup: the violation must still be recorded when the
    # end_atomic finally executes after the timeout (zombie AR path)
    _, report = run("""
    int x = 0;
    void local_thread() {
        int t = x;
        sleep(400000);
        x = t + 1;
    }
    void remote_thread() {
        sleep(15000);
        x = 99;
    }
    void main() {
        spawn local_thread();
        spawn remote_thread();
        join();
    }
    """, suspend_timeout_ns=50_000)
    unprevented = [v for v in report.violations if not v.prevented]
    assert unprevented
    assert unprevented[0].var == "x"


def test_figure5_required_violation_resolved_by_timeout():
    # the paper's Figure 5: the local thread spins waiting for the remote
    # thread inside its own AR; Kivati suspends the remote thread, which
    # would deadlock — the timeout must resolve it and the program must
    # still terminate correctly
    _, report = run("""
    int shared = 0;
    int flag = 0;
    void local_thread(int *out) {
        shared = 0;
        flag = 1;
        while (flag == 1) {
            sleep(2000);
        }
        *out = shared;
    }
    void remote_thread() {
        while (flag != 1) {
            sleep(2000);
        }
        shared = 42;
        flag = 0;
    }
    void main() {
        int got = 0;
        spawn local_thread(&got);
        spawn remote_thread();
        join();
        output(got);
    }
    """, suspend_timeout_ns=30_000, seed=3)
    assert report.output == [42]
    assert not report.result.deadlocked


def test_begin_atomic_remote_suspension():
    # a second thread entering an AR on the same variable is delayed at
    # its begin_atomic until the first AR completes
    _, report = run("""
    int x = 0;
    void first() {
        int t = x;
        sleep(50000);
        x = t + 1;
    }
    void second() {
        sleep(10000);
        int t = x;
        x = t + 1;
    }
    void main() {
        spawn first();
        spawn second();
        join();
        output(x);
    }
    """)
    # no lost update: both increments land
    assert report.output == [2]


def test_prevention_never_breaks_correct_programs():
    src = """
    int m = 0;
    int counter = 0;
    void worker(int n) {
        int i = 0;
        while (i < n) {
            lock(&m);
            int t = counter;
            counter = t + 1;
            unlock(&m);
            i = i + 1;
        }
    }
    void main() {
        spawn worker(30);
        spawn worker(30);
        spawn worker(30);
        join();
        output(counter);
    }
    """
    for opt in (OptLevel.BASE, OptLevel.SYNCVARS, OptLevel.OPTIMIZED):
        for seed in (0, 1, 2):
            _, report = run(src, opt=opt, seed=seed,
                            suspend_timeout_ns=10_000)
            assert report.output == [90], (opt, seed)
            assert not report.result.deadlocked


def test_trap_before_hardware_prevents_without_undo():
    # SPARC-style ablation: the access never commits, so no undo is needed
    pp = ProtectedProgram(LOST_UPDATE)
    report = pp.run(
        KivatiConfig(opt=OptLevel.BASE, trap_before=True), seed=1
    )
    assert report.output == [99]
    assert report.stats.undos == 0
    assert any(v.prevented for v in report.violations)


def test_bug_finding_mode_widens_window():
    src = """
    int x = 0;
    void local_thread() {
        int t = x;
        x = t + 1;
    }
    void remote_thread() {
        sleep(3000);
        x = 99;
    }
    void main() {
        spawn local_thread();
        spawn remote_thread();
        join();
        output(x);
    }
    """
    pp = ProtectedProgram(src)
    # prevention mode: the AR is a few ns wide; the remote write at 3µs
    # misses it entirely
    prev = pp.run(KivatiConfig(opt=OptLevel.BASE, mode=Mode.PREVENTION),
                  seed=1)
    assert not [v for v in prev.violations if v.var == "x"]
    # bug-finding mode stretches the AR past the remote write
    bug = pp.run(
        KivatiConfig(opt=OptLevel.BASE, mode=Mode.BUG_FINDING,
                     pause_ns=50_000, pause_probability=1.0,
                     suspend_timeout_ns=100_000),
        seed=1,
    )
    assert [v for v in bug.violations if v.var == "x"]
    assert bug.stats.pauses >= 1
    assert bug.output == [99]
