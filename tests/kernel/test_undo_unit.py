"""Unit tests for the access classifier in the rollback engine."""

from repro.compiler.bytecode import Instr, Op
from repro.kernel.undo import classify_access_kinds
from repro.minic.ast import AccessKind

R = AccessKind.READ
W = AccessKind.WRITE


class FakeThread:
    def __init__(self, regs):
        self.regs = regs


def test_classify_plain_ops():
    t = FakeThread([0] * 16)
    assert classify_access_kinds(Instr(Op.LD, 0, 1), t, 100) == (R,)
    assert classify_access_kinds(Instr(Op.ST, 0, 1), t, 100) == (W,)
    assert classify_access_kinds(Instr(Op.STPARAM, 0, 1), t, 100) == (W,)
    assert classify_access_kinds(Instr(Op.CALLIND, 0), t, 100) == (R,)


def test_classify_cpy_sides():
    t = FakeThread([200, 100] + [0] * 14)  # dst in r0, src in r1
    # watched address is the source -> read
    assert classify_access_kinds(Instr(Op.CPY, 0, 1), t, 100) == (R,)
    # watched address is the destination -> write
    assert classify_access_kinds(Instr(Op.CPY, 0, 1), t, 200) == (W,)
    t2 = FakeThread([100, 100] + [0] * 14)
    kinds = classify_access_kinds(Instr(Op.CPY, 0, 1), t2, 100)
    assert set(kinds) == {R, W}


def test_classify_sync_ops():
    t = FakeThread([0] * 16)
    assert set(classify_access_kinds(Instr(Op.LOCK, 0), t, 0)) == {R, W}
    assert classify_access_kinds(Instr(Op.UNLOCK, 0), t, 0) == (W,)
    assert set(classify_access_kinds(Instr(Op.AADD, 0, 1, 2), t, 0)) == {R, W}
