"""Unit tests for the access classifier and the rollback paths."""

from repro.compiler.bytecode import Instr, Op
from repro.kernel.undo import classify_access_kinds, undo_remote_access
from repro.minic.ast import AccessKind

R = AccessKind.READ
W = AccessKind.WRITE


class FakeThread:
    def __init__(self, regs, pc=0, sp=0, fp=0, frames=None):
        self.regs = regs
        self.pc = pc
        self.sp = sp
        self.fp = fp
        self.frames = frames if frames is not None else []


class FakeFrame:
    def __init__(self, saved_regs, saved_sp, saved_fp):
        self.saved_regs = saved_regs
        self.saved_sp = saved_sp
        self.saved_fp = saved_fp


class FakeProgram:
    def __init__(self, instrs):
        self.instrs = instrs


class FakeMachine:
    def __init__(self, instrs):
        self.program = FakeProgram(instrs)
        self.writes = []

    def write_raw(self, addr, value):
        self.writes.append((addr, value))


class FakeSlot:
    def __init__(self, addr, captured_value=None):
        self.addr = addr
        self.captured_value = captured_value


def test_classify_plain_ops():
    t = FakeThread([0] * 16)
    assert classify_access_kinds(Instr(Op.LD, 0, 1), t, 100) == (R,)
    assert classify_access_kinds(Instr(Op.ST, 0, 1), t, 100) == (W,)
    assert classify_access_kinds(Instr(Op.STPARAM, 0, 1), t, 100) == (W,)
    assert classify_access_kinds(Instr(Op.CALLIND, 0), t, 100) == (R,)


def test_classify_cpy_sides():
    t = FakeThread([200, 100] + [0] * 14)  # dst in r0, src in r1
    # watched address is the source -> read
    assert classify_access_kinds(Instr(Op.CPY, 0, 1), t, 100) == (R,)
    # watched address is the destination -> write
    assert classify_access_kinds(Instr(Op.CPY, 0, 1), t, 200) == (W,)
    t2 = FakeThread([100, 100] + [0] * 14)
    kinds = classify_access_kinds(Instr(Op.CPY, 0, 1), t2, 100)
    assert set(kinds) == {R, W}


def test_classify_sync_ops():
    t = FakeThread([0] * 16)
    assert set(classify_access_kinds(Instr(Op.LOCK, 0), t, 0)) == {R, W}
    assert classify_access_kinds(Instr(Op.UNLOCK, 0), t, 0) == (W,)
    assert set(classify_access_kinds(Instr(Op.AADD, 0, 1, 2), t, 0)) == {R, W}


def test_classify_ld_without_register_file():
    """Regression: an LD must classify as a READ even when the thread's
    register file is unavailable (suspended thread, regs swapped out);
    the old gate returned an empty classification."""
    t = FakeThread(None)
    assert classify_access_kinds(Instr(Op.LD, 0, 1), t, 100) == (R,)


def test_undo_cpy_read_side_requests_containment():
    # CPY dst=r0(=200), src=r1(=100); watchpoint on 100: the watched
    # value leaked into memory at 200 and must be contained
    machine = FakeMachine([Instr(Op.CPY, 0, 1)])
    t = FakeThread([200, 100] + [0] * 14, pc=1)
    outcome = undo_remote_access(machine, t, 0, FakeSlot(100))
    assert outcome.ok
    assert outcome.needs_containment_addr == 200
    assert t.pc == 0                  # re-execution re-runs the CPY
    assert machine.writes == []       # read side: nothing to roll back


def test_undo_cpy_write_side_restores_captured_value():
    machine = FakeMachine([Instr(Op.CPY, 0, 1)])
    t = FakeThread([100, 300] + [0] * 14, pc=1)
    outcome = undo_remote_access(machine, t, 0,
                                 FakeSlot(100, captured_value=42))
    assert outcome.ok
    assert outcome.needs_containment_addr is None
    assert machine.writes == [(100, 42)]


def test_undo_callind_unwinds_committed_frame():
    machine = FakeMachine([Instr(Op.CALLIND, 0)])
    saved_regs = [7] * 16
    t = FakeThread([0] * 16, pc=50, sp=90, fp=80,
                   frames=[FakeFrame(saved_regs, 10, 20)])
    outcome = undo_remote_access(machine, t, 0, FakeSlot(100))
    assert outcome.ok
    assert t.frames == []
    assert t.regs is saved_regs
    assert t.sp == 10 and t.fp == 20
    assert t.pc == 0


def test_undo_store_restores_first_write_value():
    machine = FakeMachine([Instr(Op.ST, 0, 1)])
    t = FakeThread([0] * 16, pc=1)
    outcome = undo_remote_access(machine, t, 0,
                                 FakeSlot(100, captured_value=5))
    assert outcome.ok and outcome.kinds == (W,)
    assert machine.writes == [(100, 5)]
    assert t.pc == 0


def test_undo_sync_op_reports_failure():
    machine = FakeMachine([Instr(Op.CAS, 0, 1, 2)])
    t = FakeThread([0] * 16, pc=1)
    outcome = undo_remote_access(machine, t, 0, FakeSlot(100))
    assert not outcome.ok
    assert t.pc == 1                  # nothing touched on failure
