"""Tests for the four optimizations of Section 3.4 and the whitelist."""

import pytest

from repro.core.config import KivatiConfig, Mode, OptLevel, OptimizationConfig
from repro.core.session import ProtectedProgram
from repro.runtime.whitelist import Whitelist

COUNTER_LOOP = """
int m = 0;
int counter = 0;
void worker(int n) {
    int i = 0;
    while (i < n) {
        lock(&m);
        int t = counter;
        counter = t + 1;
        unlock(&m);
        i = i + 1;
    }
}
void main() {
    spawn worker(40);
    spawn worker(40);
    join();
    output(counter);
}
"""


def run(src, opt, seed=1, **over):
    pp = ProtectedProgram(src)
    return pp.run(KivatiConfig(opt=opt, suspend_timeout_ns=10_000, **over),
                  seed=seed)


def test_optimization_levels_reduce_crossings():
    base = run(COUNTER_LOOP, OptLevel.BASE)
    sync = run(COUNTER_LOOP, OptLevel.SYNCVARS)
    optd = run(COUNTER_LOOP, OptLevel.OPTIMIZED)
    assert base.output == sync.output == optd.output == [80]
    assert sync.stats.crossings() < base.stats.crossings()
    assert optd.stats.crossings() < sync.stats.crossings()


def test_optimization_levels_reduce_overhead():
    pp = ProtectedProgram(COUNTER_LOOP)
    vanilla = pp.run_vanilla(seed=1)
    times = {}
    for opt in (OptLevel.BASE, OptLevel.SYNCVARS, OptLevel.OPTIMIZED):
        times[opt] = pp.run(
            KivatiConfig(opt=opt, suspend_timeout_ns=10_000), seed=1
        ).time_ns
    assert vanilla.time_ns < times[OptLevel.OPTIMIZED]
    assert times[OptLevel.OPTIMIZED] < times[OptLevel.BASE]


def test_o4_whitelists_sync_variable_ars():
    sync = run(COUNTER_LOOP, OptLevel.SYNCVARS)
    assert sync.stats.whitelist_hits > 0
    base = run(COUNTER_LOOP, OptLevel.BASE)
    assert base.stats.whitelist_hits == 0


def test_o2_lazy_free_leaves_watchpoint_armed():
    optd = run(COUNTER_LOOP, OptLevel.OPTIMIZED)
    assert optd.stats.lazy_frees > 0


def test_o3_suppresses_local_traps():
    base = run(COUNTER_LOOP, OptLevel.BASE)
    assert base.stats.local_traps > 0
    o3 = run(COUNTER_LOOP, OptimizationConfig(o3_local_disable=True))
    assert o3.stats.local_traps == 0
    assert o3.stats.shadow_stores > 0


def test_o1_alone_cuts_crossings():
    base = run(COUNTER_LOOP, OptLevel.BASE)
    o1 = run(COUNTER_LOOP, OptimizationConfig(o1_userspace=True))
    assert o1.stats.crossings() < base.stats.crossings()
    assert o1.output == [80]


def test_detection_still_works_with_each_optimization_alone():
    src = """
    int x = 0;
    void local_thread() {
        int t = x;
        sleep(40000);
        x = t + 1;
    }
    void remote_thread() {
        sleep(15000);
        x = 99;
    }
    void main() {
        spawn local_thread();
        spawn remote_thread();
        join();
        output(x);
    }
    """
    for opt in (
        OptimizationConfig(o1_userspace=True),
        OptimizationConfig(o2_lazy_free=True),
        OptimizationConfig(o3_local_disable=True),
        OptimizationConfig(o4_syncvars=True),
    ):
        # the suspension must outlive the local thread's 40µs window, so
        # use the default 10ms timeout rather than the shared helper's
        report = ProtectedProgram(src).run(KivatiConfig(opt=opt), seed=1)
        assert [v for v in report.violations if v.var == "x"], opt
        assert report.output == [99], opt


def test_whitelisted_ar_not_monitored():
    src = """
    int x = 0;
    void local_thread() {
        int t = x;
        sleep(40000);
        x = t + 1;
    }
    void remote_thread() {
        sleep(15000);
        x = 99;
    }
    void main() {
        spawn local_thread();
        spawn remote_thread();
        join();
        output(x);
    }
    """
    pp = ProtectedProgram(src)
    x_ars = [i for i, info in pp.ar_table.items() if info.var == "x"]
    report = pp.run(
        KivatiConfig(opt=OptLevel.BASE, whitelist=x_ars), seed=1
    )
    assert not [v for v in report.violations if v.var == "x"]
    assert report.stats.whitelist_hits > 0
    # without monitoring, the lost update happens
    assert report.output == [1]


def test_whitelist_file_roundtrip(tmp_path):
    path = tmp_path / "wl.txt"
    Whitelist.write_file(str(path), [3, 1, 2], comment="test")
    wl = Whitelist(path=str(path))
    assert 1 in wl and 2 in wl and 3 in wl
    assert 99 not in wl


def test_whitelist_periodic_reread(tmp_path):
    path = tmp_path / "wl.txt"
    Whitelist.write_file(str(path), [1])
    wl = Whitelist(path=str(path), reread_interval_ns=1000)
    assert 5 not in wl
    Whitelist.write_file(str(path), [1, 5])
    assert not wl.maybe_reread(500)   # too early
    assert wl.maybe_reread(2000)
    assert 5 in wl


def test_whitelist_ignores_comments_and_blanks(tmp_path):
    path = tmp_path / "wl.txt"
    path.write_text("# header\n1\n\n2  # trailing\n")
    wl = Whitelist(path=str(path))
    assert wl.ids == {1, 2}


def test_missing_whitelist_file_tolerated(tmp_path):
    wl = Whitelist(path=str(tmp_path / "nope.txt"))
    assert len(wl) == 0


def test_bug_finding_mode_costs_slightly_more():
    pp = ProtectedProgram(COUNTER_LOOP)
    cfg = KivatiConfig(opt=OptLevel.OPTIMIZED, suspend_timeout_ns=10_000,
                       pause_ns=20_000, pause_probability=0.05)
    prev = pp.run(cfg, seed=2)
    bug = pp.run(cfg.copy(mode=Mode.BUG_FINDING), seed=2)
    assert bug.output == prev.output == [80]
    assert bug.time_ns >= prev.time_ns
