"""Eager cross-core propagation ablation tests."""

from repro.core.config import KivatiConfig, OptLevel
from repro.core.session import ProtectedProgram

SRC = """
int x = 0;
void local_thread() {
    int t = x;
    sleep(40000);
    x = t + 1;
}
void remote_thread() {
    sleep(15000);
    x = 99;
}
void main() {
    spawn local_thread();
    spawn remote_thread();
    join();
    output(x);
}
"""


def test_eager_mode_still_detects_and_prevents():
    pp = ProtectedProgram(SRC)
    report = pp.run(
        KivatiConfig(opt=OptLevel.BASE, eager_crosscore=True), seed=1
    )
    assert [v for v in report.violations if v.var == "x"]
    assert report.output == [99]


def test_eager_mode_never_blocks_for_sync():
    from repro.core.reports import ViolationLog
    from repro.runtime.userlib import KivatiRuntime
    from repro.machine.machine import Machine

    pp = ProtectedProgram(SRC)
    config = KivatiConfig(opt=OptLevel.BASE, eager_crosscore=True)
    log = ViolationLog()
    runtime = KivatiRuntime(config, pp.ar_table, log, pp.sync_ar_ids)
    machine = Machine(pp.program, num_cores=2, costs=config.costs,
                      runtime=runtime, seed=1)
    machine.run()
    assert runtime.kernel.sync_waiters == []
    # every core ends fully synced
    for core in machine.cores:
        assert core.dr.synced_epoch == runtime.kernel.epoch
