"""Whitelist file integration: periodic re-read during a run."""

from repro.core.config import KivatiConfig, OptLevel
from repro.core.session import ProtectedProgram
from repro.runtime.whitelist import Whitelist

LONG_RUNNER = """
int x = 0;
int done = 0;
void worker(int n) {
    int i = 0;
    while (i < n) {
        int t = x;
        x = t + 1;
        sleep(2000);
        i = i + 1;
    }
    atomic_add(&done, 1);
}
void main() {
    spawn worker(30);
    spawn worker(30);
    join();
    output(done);
}
"""


def test_whitelist_loaded_from_file_at_startup(tmp_path):
    pp = ProtectedProgram(LONG_RUNNER)
    x_ars = [i for i, info in pp.ar_table.items() if info.var == "x"]
    path = tmp_path / "wl.txt"
    Whitelist.write_file(str(path), x_ars)
    report = pp.run(
        KivatiConfig(opt=OptLevel.BASE, whitelist_path=str(path),
                     suspend_timeout_ns=10_000),
        seed=2,
    )
    assert report.stats.whitelist_hits > 0
    assert not [v for v in report.violations if v.var == "x"]


def test_developer_patch_mid_run(tmp_path):
    """Section 3.2: "The whitelist file is periodically checked and
    re-read for updates during execution so that a software developer can
    send patches to customers" — simulated by pre-writing the patch and
    using a short re-read interval: the first begin_atomics run
    unwhitelisted, later ones hit the updated list."""
    pp = ProtectedProgram(LONG_RUNNER)
    x_ars = [i for i, info in pp.ar_table.items() if info.var == "x"]
    path = tmp_path / "wl.txt"
    path.write_text("")  # empty at startup

    # run once without the patch: monitored ARs on x exist
    base = pp.run(
        KivatiConfig(opt=OptLevel.BASE, whitelist_path=str(path),
                     whitelist_reread_ns=20_000,
                     suspend_timeout_ns=10_000),
        seed=2,
    )
    assert base.stats.whitelist_hits == 0

    # ship the patch; with a short re-read interval the running process
    # picks it up after the first interval elapses
    Whitelist.write_file(str(path), x_ars)
    patched = pp.run(
        KivatiConfig(opt=OptLevel.BASE, whitelist_path=str(path),
                     whitelist_reread_ns=20_000,
                     suspend_timeout_ns=10_000),
        seed=2,
    )
    assert patched.stats.whitelist_hits > 0
    assert patched.stats.crossings() < base.stats.crossings()
