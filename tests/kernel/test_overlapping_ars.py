"""Runtime behaviour of overlapping atomic regions (Figures 3 and 4)."""

from repro.core.config import KivatiConfig, OptLevel
from repro.core.session import ProtectedProgram
from repro.minic.ast import AccessKind

R = AccessKind.READ
W = AccessKind.WRITE

# Figure 3's shape: two ARs on two different shared variables overlap
FIGURE3 = """
int shared1 = 0;
int shared2 = 0;

void local_thread(int *o1, int *o2) {
    int a = shared1;
    int b = shared2;
    sleep(40000);
    shared1 = a + 1;
    shared2 = b + 1;
    *o1 = shared1;
    *o2 = shared2;
}

void remote_thread() {
    sleep(15000);
    shared1 = 100;
    shared2 = 200;
}

void main() {
    int r1 = 0;
    int r2 = 0;
    spawn local_thread(&r1, &r2);
    spawn remote_thread();
    join();
    output(r1);
    output(r2);
}
"""


def run(src, seed=1, **over):
    pp = ProtectedProgram(src)
    return pp, pp.run(KivatiConfig(opt=OptLevel.BASE, **over), seed=seed)


def test_overlapping_ars_both_protected():
    pp, report = run(FIGURE3)
    # both remote writes were delayed past their respective ARs, so the
    # local thread saw its own increments
    assert report.output == [1, 1]
    violated = {v.var for v in report.violations}
    assert {"shared1", "shared2"} <= violated
    # main's by-reference result slots may be flagged too: the child's
    # *o writes interleave main's decl..use pair — the paper's "required
    # violation" category (inter-thread communication), handled by the
    # timeout and harmless to the output


def test_overlapping_ars_use_two_watchpoints():
    pp, report = run(FIGURE3)
    # both variables monitored simultaneously at some point
    assert report.stats.monitored_ars >= 2


def test_figure4_branch_dependent_ends():
    # an AR whose second access differs by path must close correctly on
    # whichever path runs, across both branch directions
    src = """
    int shared = 0;

    void local_thread(int c) {
        int a = shared;
        sleep(30000);
        if (c > 0) {
            shared = a + 1;
        }
        int b = shared;
        sleep(1000);
    }

    void remote_thread() {
        sleep(10000);
        shared = 77;
    }

    void main() {
        spawn local_thread(%d);
        spawn remote_thread();
        join();
        output(shared);
    }
    """
    for c, expected in ((1, 77), (0, 77)):
        pp, report = run(src % c)
        assert [v for v in report.violations if v.var == "shared"], c
        assert report.output == [expected], c
        assert not report.result.deadlocked


def test_more_overlapping_ars_than_watchpoints():
    # five simultaneously-open ARs on distinct variables exceed the four
    # registers: one is missed, the rest stay protected
    src = """
    int a = 0;
    int b = 0;
    int c = 0;
    int d = 0;
    int e = 0;

    void local_thread() {
        int va = a;
        int vb = b;
        int vc = c;
        int vd = d;
        int ve = e;
        sleep(40000);
        a = va + 1;
        b = vb + 1;
        c = vc + 1;
        d = vd + 1;
        e = ve + 1;
    }

    void remote_thread() {
        sleep(15000);
        a = 100;
        b = 100;
        c = 100;
        d = 100;
        e = 100;
    }

    void main() {
        spawn local_thread();
        spawn remote_thread();
        join();
        output(a + b + c + d + e);
    }
    """
    pp, report = run(src, suspend_timeout_ns=100_000)
    stats = report.stats
    assert stats.missed_ars >= 1
    # the monitored subset still detects violations
    assert report.violations
