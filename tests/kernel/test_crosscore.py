"""Cross-core watchpoint propagation (Section 3.2) and exhaustion tests."""

from repro.core.config import KivatiConfig, OptLevel
from repro.core.session import ProtectedProgram


def run(src, seed=1, **over):
    pp = ProtectedProgram(src)
    return pp, pp.run(KivatiConfig(opt=OptLevel.BASE, **over), seed=seed)


BUSY_TWO_THREADS = """
int x = 0;
int spinner_done = 0;
void user(int n) {
    int i = 0;
    while (i < n) {
        int t = x;
        x = t + 1;
        int p = 0;
        int acc = i;
        while (p < 40) { acc = acc * 3 + p; p = p + 1; }
        i = i + 1;
    }
    spinner_done = 1;
}
void busy() {
    int acc = 1;
    while (spinner_done == 0) {
        acc = (acc * 5 + 1) % 91;
    }
}
void main() {
    spawn user(25);
    spawn busy();
    join();
    output(x);
}
"""


def test_detection_despite_lazy_propagation():
    # the busy thread never makes a syscall: it only adopts watchpoint
    # state at timer interrupts. Runs must still complete correctly.
    pp, report = run(BUSY_TWO_THREADS)
    assert report.output == [25]
    assert not report.result.deadlocked


def test_remote_thread_on_stale_core_eventually_syncs():
    # detection on the busy core happens only after it adopts the state;
    # this exercises the stale-trap / epoch machinery under load
    src = """
    int x = 0;
    void local_thread() {
        int t = x;
        sleep(1500000);
        x = t + 1;
    }
    void spin_then_write() {
        int acc = 1;
        int i = 0;
        while (i < 20000) { acc = acc * 3 + i; i = i + 1; }
        x = 99;
    }
    void main() {
        spawn local_thread();
        spawn spin_then_write();
        join();
        output(x);
    }
    """
    pp, report = run(src)
    assert [v for v in report.violations if v.var == "x"]
    assert report.output == [99]


def test_watchpoint_exhaustion_counted():
    # five independent shared variables accessed concurrently exceed the
    # four watchpoint registers
    src = """
    int a = 0;
    int b = 0;
    int c = 0;
    int d = 0;
    int e = 0;
    void toucher(int n) {
        int i = 0;
        while (i < n) {
            int t1 = a; a = t1 + 1;
            int t2 = b; b = t2 + 1;
            int t3 = c; c = t3 + 1;
            int t4 = d; d = t4 + 1;
            int t5 = e; e = t5 + 1;
            i = i + 1;
        }
    }
    void main() {
        spawn toucher(10);
        spawn toucher(10);
        join();
        output(a + b + c + d + e);
    }
    """
    pp, report = run(src, suspend_timeout_ns=20_000)
    assert report.stats.missed_ars > 0
    assert report.stats.monitored_ars > 0


def test_more_watchpoints_fewer_misses():
    src = """
    int a = 0;
    int b = 0;
    int c = 0;
    int d = 0;
    int e = 0;
    int f2 = 0;
    void toucher(int n) {
        int i = 0;
        while (i < n) {
            int t1 = a; a = t1 + 1;
            int t2 = b; b = t2 + 1;
            int t3 = c; c = t3 + 1;
            int t4 = d; d = t4 + 1;
            int t5 = e; e = t5 + 1;
            int t6 = f2; f2 = t6 + 1;
            i = i + 1;
        }
    }
    void main() {
        spawn toucher(8);
        spawn toucher(8);
        join();
    }
    """
    pp = ProtectedProgram(src)
    fractions = {}
    for nwp in (2, 4, 24):
        report = pp.run(
            KivatiConfig(opt=OptLevel.BASE, num_watchpoints=nwp,
                         suspend_timeout_ns=20_000),
            seed=1,
        )
        fractions[nwp] = report.stats.missed_fraction()
    assert fractions[2] >= fractions[4] >= fractions[24]
    assert fractions[24] < 0.02
    assert fractions[2] > 0.10


def test_single_core_machine_protected():
    # with one core there is no cross-core sync at all; everything must
    # still work (watchpoints catch interleavings across preemptions)
    pp, report = run(BUSY_TWO_THREADS, num_cores=1)
    assert report.output == [25]
