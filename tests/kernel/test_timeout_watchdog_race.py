"""Suspension-timeout vs watchdog-break race (ISSUE 3 satellite).

The watchdog breaks a suspension cycle by force-releasing a suspended
thread; the 10 ms suspension-timeout event for that same thread may
already sit in the machine's event queue when the break runs (or the
break may be attempted after the timeout already fired).  Whichever
handler runs second must be a strict no-op: no double wake, no double
stat count, no second zombify of the slot's ARs.  The kernel guarantees
this by popping ``suspensions``/``susp_slot`` atomically at the top of
both handlers; these tests pin that contract with a fake machine so a
refactor that re-orders the pops (or counts stats before them) fails
loudly.
"""

from repro.core.config import KivatiConfig
from repro.core.reports import ViolationLog
from repro.kernel.kivati import KivatiKernel
from repro.kernel.state import ActiveAR, Suspension
from repro.machine.threads import ThreadState
from repro.runtime.stats import KivatiStats


class FakeThread:
    def __init__(self, tid):
        self.tid = tid
        self.state = ThreadState.RUNNING


class FakeDR:
    def __init__(self):
        self.synced_epoch = 0

    def adopt(self, slots, epoch, faults=None):
        self.synced_epoch = epoch


class FakeCore:
    def __init__(self, index=0):
        self.index = index
        self.clock = 0
        self.thread = None
        self.dr = FakeDR()


class FakeMachine:
    """Just enough Machine surface for the suspension plane."""

    def __init__(self, threads):
        self.threads = {t.tid: t for t in threads}
        self.clock = 0
        self.cores = []
        self.scheduled = []   # events handed out by schedule_event
        self.cancelled = []
        self.woken = []       # every wake_thread *call*, even no-ops

    def now(self):
        return self.clock

    def schedule_event(self, time, callback):
        event = (time, callback)
        self.scheduled.append(event)
        return event

    def cancel_event(self, event):
        self.cancelled.append(event)

    def wake_thread(self, tid):
        self.woken.append(tid)
        thread = self.threads.get(tid)
        if thread is None or thread.state in (ThreadState.RUNNABLE,
                                              ThreadState.RUNNING,
                                              ThreadState.DONE):
            return False
        thread.state = ThreadState.RUNNABLE
        return True

    def block_current(self, core, state, wake_time=None, retry_instr=False):
        core.thread.state = state


class FakeARInfo:
    def __init__(self, ar_id):
        self.ar_id = ar_id
        self.watch_read = True
        self.watch_write = True


def make_kernel(**config_overrides):
    config = KivatiConfig(**config_overrides)
    kernel = KivatiKernel(config, {}, KivatiStats(), ViolationLog())
    machine = FakeMachine([FakeThread(0), FakeThread(1), FakeThread(2)])
    kernel.attach(machine)
    return kernel, machine


def suspend_on_slot(kernel, machine, tid, owner_tid=1, ar_id=7):
    """Arm slot 0 (owned by ``owner_tid`` with one active AR) and suspend
    thread ``tid`` on it, exactly as a trap on the watched address would."""
    core = FakeCore()
    slot = kernel.slots[0]
    slot.enabled = True
    slot.addr = 100
    slot.gen = 1
    slot.owner_tid = owner_tid
    slot.ars = [ActiveAR(FakeARInfo(ar_id), owner_tid, 100, 1, 0, 0, False)]
    thread = machine.threads[tid]
    core.thread = thread
    kernel._suspend(core, thread, slot, Suspension.REASON_TRAP,
                    retry_instr=False)
    assert thread.state == ThreadState.SUSPENDED
    assert kernel.suspensions[tid] is slot.suspended[0]
    return core, slot


def test_stale_timeout_after_watchdog_break_is_a_noop():
    """Break first, then the (already-queued) timeout fires anyway."""
    kernel, machine = make_kernel(watchdog=True)
    core, slot = suspend_on_slot(kernel, machine, tid=2)
    timeout_event = kernel.suspensions[2].timeout_event

    kernel._watchdog_break(2, [2, 1], core)
    assert kernel.stats.watchdog_breaks == 1
    assert machine.woken == [2]
    assert timeout_event in machine.cancelled
    assert (1, 7) in kernel.zombies          # the slot's AR zombified once
    assert not kernel.suspensions and not kernel.susp_slot

    # the event was cancelled, but a dequeued-before-cancel callback can
    # still run: it must find nothing to do
    kernel._on_timeout(2)
    assert kernel.stats.suspend_timeouts == 0
    assert kernel.stats.watchdog_breaks == 1
    assert machine.woken == [2]              # no double resume
    assert len(kernel.zombies) == 1          # no double zombify
    assert machine.threads[2].state == ThreadState.RUNNABLE


def test_watchdog_break_after_timeout_is_a_noop():
    """Timeout fires first; a late cycle-break attempt must not re-count
    or re-wake."""
    kernel, machine = make_kernel(watchdog=True)
    core, slot = suspend_on_slot(kernel, machine, tid=2)

    kernel._on_timeout(2)
    assert kernel.stats.suspend_timeouts == 1
    assert machine.woken == [2]
    assert (1, 7) in kernel.zombies
    assert not kernel.suspensions and not kernel.susp_slot

    kernel._watchdog_break(2, [2, 1], core)
    assert kernel.stats.watchdog_breaks == 0
    assert machine.woken == [2]
    assert len(kernel.zombies) == 1
    assert machine.threads[2].state == ThreadState.RUNNABLE


def test_double_timeout_fire_is_a_noop():
    """Two firings of the same timeout callback count exactly once."""
    kernel, machine = make_kernel()
    suspend_on_slot(kernel, machine, tid=2)

    kernel._on_timeout(2)
    kernel._on_timeout(2)
    assert kernel.stats.suspend_timeouts == 1
    assert machine.woken == [2]
    assert len(kernel.zombies) == 1


def test_timeout_on_reused_slot_leaves_new_tenants_alone():
    """If the slot was freed and re-armed while the thread stayed
    suspended (lost wakeup), the timeout recovers the thread but must not
    zombify the slot's *new* ARs."""
    kernel, machine = make_kernel()
    core, slot = suspend_on_slot(kernel, machine, tid=2)

    # simulate the lost-wakeup reuse: the suspension record survives but
    # the slot no longer lists it, and a new tenant moved in
    slot.suspended.clear()
    slot.gen = 2
    slot.ars = [ActiveAR(FakeARInfo(9), 0, 200, 1, 50, 0, False)]

    kernel._on_timeout(2)
    assert kernel.stats.suspend_timeouts == 1
    assert machine.woken == [2]
    assert machine.threads[2].state == ThreadState.RUNNABLE
    assert kernel.zombies == {}              # new tenant untouched
    assert slot.ars and slot.ars[0].ar_id == 9
    assert slot.enabled
