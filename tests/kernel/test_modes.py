"""Prevention-mode vs bug-finding-mode behavioural contrasts."""

from repro.core.config import KivatiConfig, Mode, OptLevel
from repro.core.session import ProtectedProgram

SRC = """
int x = 0;
int done = 0;
void worker(int n) {
    int i = 0;
    while (i < n) {
        int pad = 0;
        int acc = i;
        while (pad < 15) { acc = acc * 3 + pad; pad = pad + 1; }
        int t = x;
        x = t + 1;
        i = i + 1;
    }
    atomic_add(&done, 1);
}
void main() {
    spawn worker(15);
    spawn worker(15);
    join();
    output(done);
}
"""


def run(mode, pause_probability=0.5, seed=4):
    pp = ProtectedProgram(SRC)
    config = KivatiConfig(
        mode=mode, opt=OptLevel.OPTIMIZED, pause_ns=15_000,
        pause_probability=pause_probability, suspend_timeout_ns=10_000,
    )
    return pp.run(config, seed=seed)


def test_bug_finding_pauses_and_slows():
    prev = run(Mode.PREVENTION)
    bug = run(Mode.BUG_FINDING)
    assert prev.stats.pauses == 0
    assert bug.stats.pauses > 0
    assert bug.time_ns > prev.time_ns


def test_bug_finding_surfaces_more_violations():
    # across several seeds, the widened windows must surface at least as
    # many violated ARs as prevention mode does
    prev_ars = set()
    bug_ars = set()
    for seed in range(5):
        prev_ars |= run(Mode.PREVENTION, seed=seed).violated_ars()
        bug_ars |= run(Mode.BUG_FINDING, seed=seed).violated_ars()
    assert len(bug_ars) >= len(prev_ars)
    assert bug_ars  # the racy counter must be caught with 50% pauses


def test_pause_probability_zero_equals_prevention_violationwise():
    bug = run(Mode.BUG_FINDING, pause_probability=0.0)
    assert bug.stats.pauses == 0


def test_modes_preserve_correct_output():
    for mode in (Mode.PREVENTION, Mode.BUG_FINDING):
        report = run(mode)
        assert report.output == [2]
        assert not report.result.deadlocked
