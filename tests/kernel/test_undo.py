"""Rollback engine details: memory map resolution, special cases."""

from repro.compiler.bytecode import Op
from repro.compiler.codegen import compile_program
from repro.compiler.memmap import build_memory_map
from repro.core.config import KivatiConfig, OptLevel
from repro.core.session import ProtectedProgram
from repro.minic.parser import parse


def test_memory_map_covers_all_memory_instructions():
    program = compile_program(parse("""
    int g;
    int a[4];
    void f(int *p) { *p = g + a[1]; }
    void main() { int r; f(&r); }
    """))
    mm = program.memory_map
    for pc, instr in enumerate(program.instrs):
        if instr.accesses_memory() and instr.op != Op.CALLIND:
            assert mm.after_to_instr[pc + 1] == pc


def test_memory_map_subroutine_entries():
    program = compile_program(parse("""
    void f() {}
    void g2() {}
    void main() { f(); g2(); }
    """))
    mm = program.memory_map
    entries = {img.entry for img in program.func_by_index}
    assert mm.subroutine_entries == entries
    assert set(mm.entry_to_func.values()) == {"f", "g2", "main"}


def test_faulting_pc_resolution():
    program = compile_program(parse("""
    int g;
    void main() { g = 1; }
    """))
    mm = program.memory_map
    st_pcs = [pc for pc, i in enumerate(program.instrs) if i.op == Op.ST]
    for pc in st_pcs:
        assert mm.faulting_pc(pc + 1) == pc
    # unknown after-pc yields None
    assert mm.faulting_pc(10_000) is None


def test_faulting_pc_call_special_case():
    program = compile_program(parse("""
    int hook;
    void handler() { output(1); }
    void main() {
        hook = funcref(handler);
        invoke(&hook);
    }
    """))
    mm = program.memory_map
    callind_pc = next(pc for pc, i in enumerate(program.instrs)
                      if i.op == Op.CALLIND)
    handler_entry = program.func("handler").entry
    # after a CALLIND trap, the pc points at the callee entry; the kernel
    # recovers the call site from the return address on the stack
    assert mm.faulting_pc(handler_entry, stack_top_value=callind_pc + 1) \
        == callind_pc


def test_indirect_call_remote_read_is_prevented():
    # the paper's subroutine-call special case: a remote read caused by an
    # indirect call operand is undone (call frame unwound) and re-executed
    # the local pair is (W, W) so the watchpoint watches remote reads
    src = """
    int hook = 0;
    int fired = 0;
    void handler() { fired = fired + 1; }
    void local_thread() {
        hook = funcref(handler);
        sleep(40000);
        hook = funcref(handler);
    }
    void remote_thread() {
        sleep(15000);
        invoke(&hook);
    }
    void main() {
        spawn local_thread();
        spawn remote_thread();
        join();
        output(fired);
    }
    """
    pp = ProtectedProgram(src)
    report = pp.run(KivatiConfig(opt=OptLevel.BASE), seed=1)
    # the handler must run exactly once (undo unwound the first call)
    assert report.output == [1]
    assert not report.result.deadlocked
    found = [v for v in report.violations if v.var == "hook"]
    assert found
    assert report.stats.undos >= 1


def test_copyword_leak_containment():
    # a remote read that copies the watched value into another memory
    # location: the leaked location is guarded by a spare watchpoint
    src = """
    int x = 0;
    int leak = 0;
    void local_thread() {
        x = 5;
        sleep(40000);
        x = 6;
    }
    void remote_thread() {
        sleep(15000);
        copyword(&leak, &x);
    }
    void main() {
        spawn local_thread();
        spawn remote_thread();
        join();
        output(leak);
    }
    """
    pp = ProtectedProgram(src)
    report = pp.run(KivatiConfig(opt=OptLevel.BASE), seed=1)
    assert report.stats.containments >= 1
    # the copy re-executes after the AR: it must hold the final value,
    # not the intermediate one
    assert report.output == [6]


def test_annotated_sync_op_remote_is_delayed_at_begin():
    # an atomic RMW through &x is itself annotated, so the remote thread
    # is delayed at its begin_atomic and the update serializes cleanly
    src = """
    int x = 0;
    void local_thread() {
        int t = x;
        sleep(40000);
        x = t + 1;
    }
    void remote_thread() {
        sleep(15000);
        atomic_add(&x, 100);
    }
    void main() {
        spawn local_thread();
        spawn remote_thread();
        join();
        output(x);
    }
    """
    pp = ProtectedProgram(src)
    report = pp.run(KivatiConfig(opt=OptLevel.BASE), seed=1)
    assert report.stats.suspensions >= 1
    assert report.output == [101]


def test_unannotated_sync_op_cannot_be_reordered():
    # an atomic RMW through a pointer the annotator cannot resolve is
    # unannotated; the watchpoint catches it but the rollback engine
    # refuses to undo an atomic macro-op ("unable to reorder")
    src = """
    int x = 0;
    int *px;
    void local_thread() {
        int t = x;
        sleep(40000);
        x = t + 1;
    }
    void remote_thread() {
        sleep(15000);
        atomic_add(px, 100);
    }
    void main() {
        px = &x;
        spawn local_thread();
        spawn remote_thread();
        join();
        output(x);
    }
    """
    pp = ProtectedProgram(src)
    report = pp.run(KivatiConfig(opt=OptLevel.BASE), seed=1)
    assert report.stats.unable_to_reorder >= 1
    found = [v for v in report.violations if v.var == "x"]
    assert found
    assert all(not v.prevented for v in found)
    # the violation was not prevented: the lost update happened
    assert report.output == [1]
