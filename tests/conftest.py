"""Shared test helpers."""

import pytest

from repro.core.config import KivatiConfig, Mode, OptLevel
from repro.core.session import ProtectedProgram


@pytest.fixture
def protect():
    """Factory fixture: protect(source) -> ProtectedProgram (cached)."""
    cache = {}

    def _protect(source):
        pp = cache.get(source)
        if pp is None:
            pp = ProtectedProgram(source)
            cache[source] = pp
        return pp

    return _protect


def config(**kwargs):
    """KivatiConfig shorthand with test-friendly defaults."""
    kwargs.setdefault("opt", OptLevel.BASE)
    kwargs.setdefault("mode", Mode.PREVENTION)
    return KivatiConfig(**kwargs)


# The classic check-then-act lost-update kernel (Figure 1 shape). The
# local thread reads x, dawdles, then writes x+1; the remote thread writes
# 99 inside the window. Unprotected, the local write clobbers the remote
# one (lost update -> output 1). Kivati must reorder the remote write
# after the AR (output 99).
LOST_UPDATE_SRC = """
int x = 0;

void local_thread() {
    int t = x;
    sleep(50000);
    x = t + 1;
}

void remote_thread() {
    sleep(20000);
    x = 99;
}

void main() {
    spawn local_thread();
    spawn remote_thread();
    join();
    output(x);
}
"""
