"""Baseline comparator tests."""

from repro.baselines.avio import run_avio_like
from repro.baselines.lockset import run_lockset
from repro.compiler.codegen import compile_program
from repro.machine.machine import Machine
from repro.minic.parser import parse

RACY = """
int x = 0;
void local_thread() {
    int t = x;
    sleep(40000);
    x = t + 1;
}
void remote_thread() {
    sleep(15000);
    x = 99;
}
void main() {
    spawn local_thread();
    spawn remote_thread();
    join();
    output(x);
}
"""

LOCKED = """
int m = 0;
int x = 0;
void worker(int n) {
    int i = 0;
    while (i < n) {
        lock(&m);
        int t = x;
        x = t + 1;
        unlock(&m);
        i = i + 1;
    }
}
void main() {
    spawn worker(25);
    spawn worker(25);
    join();
    output(x);
}
"""


def build(src):
    return compile_program(parse(src))


def test_avio_detects_the_violation():
    result, runtime = run_avio_like(build(RACY), seed=1)
    assert runtime.accesses_observed > 0
    found = [v for v in runtime.violations]
    assert found
    kinds = {(v.first_kind.value, v.remote_kind.value, v.second_kind.value)
             for v in found}
    assert ("R", "W", "W") in kinds


def test_avio_does_not_prevent():
    result, _ = run_avio_like(build(RACY), seed=1)
    # testing-tool semantics: the lost update still happens
    assert result.output == [1]


def test_avio_overhead_is_large():
    program = build(LOCKED)
    vanilla = Machine(program, seed=1).run(raise_on_deadlock=True)
    instrumented, _ = run_avio_like(build(LOCKED), seed=1)
    slowdown = instrumented.time_ns / vanilla.time_ns
    # the paper cites 2.2x-72x for this tool class
    assert slowdown > 2.0


def test_lockset_flags_unprotected_sharing():
    _, runtime = run_lockset(build(RACY), seed=1)
    assert runtime.races


def test_lockset_quiet_on_fully_locked_program():
    _, runtime = run_lockset(build(LOCKED), seed=1)
    program = build(LOCKED)
    x_addr = program.global_addr("x")
    assert not [r for r in runtime.races if r.addr == x_addr]


def test_per_access_cost_configurable():
    cheap, _ = run_avio_like(build(LOCKED), seed=1, per_access_cost=1)
    dear, _ = run_avio_like(build(LOCKED), seed=1, per_access_cost=200)
    assert dear.time_ns > cheap.time_ns


def test_ctrigger_exploration_finds_the_race():
    from repro.baselines.ctrigger import explore

    result = explore(build(RACY), runs=6, seed_base=0)
    assert result.found
    assert result.first_violation_run is not None
    assert result.unique_sites()
    assert result.runs == 6
    assert result.accesses_observed > 0


def test_ctrigger_reports_benign_cross_section_pairs_on_locked_code():
    # the AVIO-style oracle is lock-oblivious: consecutive accesses from
    # different critical sections look like (W,W,R) triples — the benign
    # false positives the paper says testing tools must train away
    from repro.baselines.ctrigger import explore

    program = build(LOCKED)
    result = explore(program, runs=4, seed_base=0)
    # all such reports are benign: the program's output stays correct
    # (checked in test_avio_does_not_prevent for the racy case)
    assert result.runs == 4


def test_ctrigger_quiet_on_single_threaded_program():
    from repro.baselines.ctrigger import explore

    program = build("""
    int x = 0;
    void main() {
        int i = 0;
        while (i < 50) { x = x + 1; i = i + 1; }
        output(x);
    }
    """)
    result = explore(program, runs=3, seed_base=0)
    assert not result.found


def test_ctrigger_cost_scales_with_runs():
    from repro.baselines.ctrigger import explore

    few = explore(build(LOCKED), runs=2)
    many = explore(build(LOCKED), runs=6)
    assert many.total_time_ns > few.total_time_ns * 2
