"""Resynchronizing journal reader: clean streams, rotation stitching,
torn tails, mid-file damage with byte-scan recovery, and the
no-false-resync guards."""

import os
import zlib

import pytest

from repro.errors import JournalError
from repro.journal.events import JournalEvent, encode_event
from repro.journal.format import (SEGMENT_MAGIC, _HEADER, JournalWriter,
                                  frame_bytes)
from repro.journal.stream import EventStream, stream_events


def _ev(seq, kind="sched", **payload):
    return JournalEvent(seq, 10 * seq, 0, kind, payload)


def _write(path, events, **writer_kwargs):
    writer = JournalWriter(path, **writer_kwargs)
    for event in events:
        writer.append(event)
    writer.close()


def test_clean_stream_round_trips(tmp_path):
    path = str(tmp_path / "j")
    events = [_ev(i) for i in range(20)]
    _write(path, events)
    stream = EventStream(path)
    got = list(stream)
    assert [e.seq for e in got] == list(range(20))
    assert stream.frames == 20
    assert not stream.damaged
    assert stream.corruptions == [] and stream.bytes_skipped == 0
    assert stream.segments_read == 1


def test_missing_journal_raises(tmp_path):
    with pytest.raises(JournalError):
        list(EventStream(str(tmp_path / "absent")))


def test_rotation_segments_stitch_oldest_first(tmp_path):
    path = str(tmp_path / "j")
    # tiny segments force several rotations
    _write(path, [_ev(i, payload="x" * 200) for i in range(40)],
           max_bytes=4096, max_segments=8)
    assert os.path.exists(path + ".1")
    stream = EventStream(path)
    seqs = [e.seq for e in stream]
    assert seqs == sorted(seqs)
    assert stream.segments_read >= 2
    assert not stream.damaged


def test_torn_tail_is_recorded_not_raised(tmp_path):
    path = str(tmp_path / "j")
    writer = JournalWriter(path)
    for i in range(5):
        writer.append(_ev(i))
    writer.append_torn(_ev(5))
    writer.close()
    stream = EventStream(path)
    assert [e.seq for e in stream] == [0, 1, 2, 3, 4]
    assert stream.damaged
    assert [c.reason for c in stream.corruptions] == ["torn-tail"]
    assert not stream.corruptions[0].resynced


def test_midfile_flip_resyncs_to_next_frame(tmp_path):
    path = str(tmp_path / "j")
    _write(path, [_ev(i) for i in range(10)])
    # corrupt one byte inside the 4th frame's payload
    with open(path, "rb") as f:
        data = f.read()
    offset = len(SEGMENT_MAGIC)
    for _ in range(3):
        length, _crc = _HEADER.unpack_from(data, offset)
        offset += _HEADER.size + length
    flip = offset + _HEADER.size + 2
    with open(path, "r+b") as f:
        f.seek(flip)
        byte = f.read(1)
        f.seek(flip)
        f.write(bytes([byte[0] ^ 0xFF]))
    stream = EventStream(path)
    seqs = [e.seq for e in stream]
    # exactly the damaged frame is lost; the reader scans to frame 5
    assert seqs == [0, 1, 2, 4, 5, 6, 7, 8, 9]
    assert [c.reason for c in stream.corruptions] == ["bad-frame"]
    assert stream.corruptions[0].resynced
    assert stream.bytes_skipped > 0


def test_overwritten_magic_resyncs_into_segment(tmp_path):
    path = str(tmp_path / "j")
    _write(path, [_ev(i) for i in range(6)])
    with open(path, "r+b") as f:
        f.write(b"XXXXXXXX")  # clobber the magic
    stream = EventStream(path)
    seqs = [e.seq for e in stream]
    assert seqs == list(range(1, 6)) or seqs == list(range(6))
    assert [c.reason for c in stream.corruptions] == ["bad-magic"]
    assert stream.corruptions[0].resynced


def test_unrecoverable_garbage_skips_segment(tmp_path):
    path = str(tmp_path / "j")
    with open(path, "wb") as f:
        f.write(os.urandom(64))
    stream = EventStream(path)
    assert list(stream) == []
    assert stream.damaged
    assert stream.bytes_skipped == 64
    assert not stream.corruptions[0].resynced


def test_non_advancing_seq_is_rejected_as_false_resync(tmp_path):
    """A CRC-valid frame whose seq does not advance (duplicated block)
    must not corrupt checker state — the reader treats it as damage."""
    path = str(tmp_path / "j")
    frame3 = frame_bytes(encode_event(_ev(3)))
    with open(path, "wb") as f:
        f.write(SEGMENT_MAGIC)
        for i in range(5):
            f.write(frame_bytes(encode_event(_ev(i))))
        f.write(frame3)  # stale duplicate appended after seq 4
        f.write(frame_bytes(encode_event(_ev(5))))
    stream = EventStream(path)
    seqs = [e.seq for e in stream]
    assert seqs == [0, 1, 2, 3, 4, 5]
    assert stream.damaged  # the duplicate was recorded as a bad frame


def test_bogus_length_field_cannot_trigger_huge_read(tmp_path):
    path = str(tmp_path / "j")
    payload = encode_event(_ev(0))
    with open(path, "wb") as f:
        f.write(SEGMENT_MAGIC)
        # length field far beyond the cap, then a valid frame
        f.write(_HEADER.pack(1 << 30, zlib.crc32(b"")))
        f.write(frame_bytes(payload))
    stream = EventStream(path)
    assert [e.seq for e in stream] == [0]
    assert stream.damaged


def test_stream_events_convenience(tmp_path):
    path = str(tmp_path / "j")
    _write(path, [_ev(i) for i in range(3)])
    iterator, stream = stream_events(path)
    assert sum(1 for _ in iterator) == 3
    assert stream.frames == 3 and not stream.damaged


def test_empty_segment_file_yields_nothing(tmp_path):
    path = str(tmp_path / "j")
    with open(path, "wb"):
        pass
    stream = EventStream(path)
    assert list(stream) == []
    assert not stream.damaged  # writer died before the magic: no data,
    # but also no misparse
