"""Recovery bench: the pressure table itself must hold its invariants."""

from repro.bench.recoverybench import SMALL_SRC, generate


def test_recovery_bench_sweep_holds():
    result = generate(seeds=(0, 1), stride=11,
                      workloads=(("small-race", SMALL_SRC),))
    assert result.check() == []
    assert len(result.cases) == 2
    for case in result.cases:
        assert case.crash_points > 0
        assert case.resumed == case.crash_points
        assert case.aborted == 0
        assert case.postmortem_clean
    rendered = result.render()
    assert "Recovery bench" in rendered
    assert "small-race" in rendered
