"""Crash injection at every frame boundary and the recovery path."""

import pytest

from journal_common import base_config
from repro.journal.events import JournalEvent
from repro.journal.format import JournalWriter
from repro.journal.recovery import crash_at_frame, reconstruct_state, recover
from repro.journal.replay import record_run


@pytest.fixture(scope="module")
def recorded(racy_program):
    """One clean journaled run of the racy workload (the reference)."""
    return record_run(racy_program, base_config(), seed=0)


# ----------------------------------------------------------------------
# crash injection + recovery (the acceptance sweep)
# ----------------------------------------------------------------------

def test_crash_at_every_frame_boundary_recovers(racy_program, recorded,
                                                tmp_path):
    """Kill the session after every possible number of journal frames:
    recovery must never hang, never lose a pre-crash frame, and always
    verify the salvaged prefix against the re-executed run."""
    _report, recorder = recorded
    total = len(recorder.events)
    assert total > 20
    for frame in range(1, total):
        path = str(tmp_path / ("crash-%d.journal" % frame))
        crash = crash_at_frame(racy_program, base_config(seed=0), frame,
                               JournalWriter(path))
        assert crash is not None, "run finished before frame %d" % frame
        result = recover(racy_program, path)
        assert result.ok, "frame %d: %s" % (frame, result.describe())
        assert len(result.salvaged) == frame
        # the salvaged frames are exactly the recorded prefix (the
        # run-start header differs only by the injected crash plan,
        # which recovery strips)
        assert [e.key() for e in result.salvaged[1:]] \
            == [e.key() for e in recorder.events[1:frame]]
        assert result.replay.config.faults is None


def test_crash_before_any_frame_aborts_cleanly(racy_program, tmp_path):
    path = str(tmp_path / "crash-0.journal")
    crash = crash_at_frame(racy_program, base_config(seed=0), 0,
                           JournalWriter(path))
    assert crash is not None
    result = recover(racy_program, path)
    assert result.action == "aborted"
    assert "no complete frame" in result.reason


def test_clean_close_crash_still_recovers(racy_program, tmp_path):
    """torn=0 closes the file cleanly mid-run: not torn, but incomplete —
    recovery must still treat it as a prefix."""
    path = str(tmp_path / "clean-crash.journal")
    crash = crash_at_frame(racy_program, base_config(seed=0), 12,
                           JournalWriter(path), torn=0)
    assert crash is not None
    result = recover(racy_program, path)
    assert result.ok, result.describe()
    assert not result.torn
    assert len(result.salvaged) == 12


def test_recover_aborts_on_lost_header(racy_program, recorded, tmp_path):
    _report, recorder = recorded
    path = str(tmp_path / "headless.journal")
    writer = JournalWriter(path)
    for event in recorder.events[1:]:  # run-start rotated away
        writer.append(event)
    writer.close()
    result = recover(racy_program, path)
    assert result.action == "aborted"
    assert "header" in result.reason


def test_recover_aborts_on_lost_frames(racy_program, recorded, tmp_path):
    _report, recorder = recorded
    path = str(tmp_path / "gapped.journal")
    writer = JournalWriter(path)
    for i, event in enumerate(recorder.events):
        if i != 30:  # a frame vanished from the middle, not the tail
            writer.append(event)
    writer.close()
    result = recover(racy_program, path)
    assert result.action == "aborted"
    assert "inconsistent" in result.reason
    assert any("sequence gap" in p for p in result.state.problems)


def test_recovered_run_report_matches_the_original(racy_program, recorded,
                                                   tmp_path):
    report, recorder = recorded
    path = str(tmp_path / "mid.journal")
    frame = len(recorder.events) // 2
    crash_at_frame(racy_program, base_config(seed=0), frame,
                   JournalWriter(path))
    result = recover(racy_program, path)
    assert result.ok
    assert result.report.output == report.output
    assert len(result.report.violations) == len(report.violations)


# ----------------------------------------------------------------------
# state reconstruction
# ----------------------------------------------------------------------

def _ev(seq, kind, tid=0, **payload):
    return JournalEvent(seq, seq * 10, tid, kind, payload)


def test_full_journal_reconstructs_to_a_quiescent_state(recorded):
    _report, recorder = recorded
    state = reconstruct_state(recorder.events)
    assert state.consistent, state.describe()
    assert state.completed
    assert state.header is not None
    assert not state.windows and not state.suspended
    assert len(state.violations) == len(recorder.filter("violation"))


def test_state_flags_disarm_generation_mismatch():
    state = reconstruct_state([
        _ev(0, "arm", slot=0, gen=1, addr=100),
        _ev(1, "disarm", slot=0, gen=2, addr=100),
    ])
    assert not state.consistent
    assert "disarm gen" in state.problems[0]


def test_state_flags_wake_without_suspend():
    state = reconstruct_state([_ev(0, "wake", tid=4, reason="trap")])
    assert not state.consistent
    assert "never suspended" in state.problems[0]


def test_state_flags_end_without_begin():
    state = reconstruct_state([_ev(0, "end", tid=1, ar=3, second="W",
                                   zombie=False)])
    assert not state.consistent
    assert "never begun" in state.problems[0]


def test_state_tracks_windows_suspensions_and_zombies():
    state = reconstruct_state([
        _ev(0, "arm", slot=0, gen=1, addr=100),
        _ev(1, "begin", tid=1, ar=3, slot=0, gen=1, first="R"),
        _ev(2, "suspend", tid=2, reason="trap", slot=0, gen=1, addr=100),
        _ev(3, "zombify", tid=1, ar=3, slot=0, gen=1, begin_time=10),
    ])
    assert state.consistent, state.describe()
    assert not state.completed
    assert (1, 3) in state.zombies and not state.windows
    assert state.suspended == {2}
    assert state.armed == {0: (1, 100)}
    assert "truncated run" in state.describe()


def test_every_frame_crash_on_a_chaos_schedule_recovers(tmp_path):
    """Acceptance: crash injection at every journal frame boundary of a
    chaos schedule (faulty run included) recovers without hanging,
    losing pre-crash frames, or diverging from a clean re-execution."""
    from repro.faults.chaos import CHAOS_SRC, default_config
    from repro.faults.plan import FaultPlan, FaultSpec
    from repro.core.session import ProtectedProgram

    program = ProtectedProgram(CHAOS_SRC)
    plan = FaultPlan("timer-jitter", [
        FaultSpec("machine.timer.jitter", probability=0.5,
                  param={"jitter_ns": 8000})])
    config = default_config(seed=2, faults=plan)
    _report, recorder = record_run(program, config, seed=2)
    total = len(recorder.events)
    assert total > 50
    for frame in range(1, total):
        path = str(tmp_path / ("chaos-crash-%d.journal" % frame))
        crash = crash_at_frame(program, config, frame, JournalWriter(path),
                               torn=frame % 2)
        assert crash is not None, "run finished before frame %d" % frame
        result = recover(program, path)
        assert result.ok, "frame %d: %s" % (frame, result.describe())
        assert len(result.salvaged) == frame
        assert [e.key() for e in result.salvaged[1:]] \
            == [e.key() for e in recorder.events[1:frame]]
