"""Deterministic replay: a journaled run re-executes to an identical
event stream, across seeds, modes, processes and PYTHONHASHSEED."""

import os
import subprocess
import sys

import pytest

from journal_common import RACY_SRC, base_config
from repro.core.config import Mode
from repro.core.session import ProtectedProgram
from repro.errors import JournalError
from repro.journal.events import JournalEvent
from repro.journal.format import JournalWriter
from repro.journal.replay import (first_divergence, record_run, replay_run,
                                  run_start_snapshot, verdict_multiset)


@pytest.mark.parametrize("seed", [0, 3, 17])
def test_replay_reproduces_the_event_stream(racy_program, seed):
    report, recorder = record_run(racy_program, base_config(), seed=seed)
    assert len(report.violations)       # the workload actually races
    result = replay_run(racy_program, recorder)
    assert result.ok, result.describe()
    assert result.verdicts_match
    assert [e.key() for e in result.replayed] \
        == [e.key() for e in recorder.events]
    assert result.report.output == report.output


def test_replay_in_bug_finding_mode(racy_program):
    config = base_config(mode=Mode.BUG_FINDING, seed=5)
    report, recorder = record_run(racy_program, config)
    result = replay_run(racy_program, recorder)
    assert result.ok, result.describe()
    assert result.verdicts_match
    assert result.report.time_ns == report.time_ns


def test_replay_from_disk(tmp_path, racy_program):
    path = str(tmp_path / "run.journal")
    record_run(racy_program, base_config(), seed=3,
               writer=JournalWriter(path))
    result = replay_run(racy_program, path)
    assert result.ok, result.describe()
    assert verdict_multiset(result.replayed) \
        == verdict_multiset(result.recorded)


def test_replay_refuses_a_different_program(racy_program, tmp_path):
    _report, recorder = record_run(racy_program, base_config(), seed=0)
    other = ProtectedProgram(RACY_SRC.replace("x + 10", "x + 11"))
    with pytest.raises(JournalError):
        replay_run(other, recorder)


def test_tampered_schedule_diverges_without_hanging(racy_program):
    _report, recorder = record_run(racy_program, base_config(), seed=0)
    events = list(recorder.events)
    sched = [i for i, e in enumerate(events) if e.kind == "sched"]
    # swap the first two scheduling decisions that picked different
    # threads: the pin now demands an impossible order
    a = next(i for i in sched if events[i].tid != events[sched[0]].tid)
    i, j = sched[0], a
    events[i], events[j] = (
        JournalEvent(events[i].seq, events[i].time_ns, events[j].tid,
                     "sched", events[i].payload),
        JournalEvent(events[j].seq, events[j].time_ns, events[i].tid,
                     "sched", events[j].payload))
    result = replay_run(racy_program, events)
    assert not result.ok            # divergence reported...
    assert result.report is not None  # ...but the replay ran to completion


def test_first_divergence_reports_the_first_mismatch():
    def ev(seq, tid=0, kind="sched", **p):
        return JournalEvent(seq, seq * 10, tid, kind, p or {"core": 0})

    a = [ev(0), ev(1), ev(2), ev(3)]
    b = [ev(0), ev(1), ev(2, tid=1), ev(3, tid=9)]
    div = first_divergence(a, b)
    assert div.index == 2 and div.reason == "event mismatch"
    assert first_divergence(a, list(a)) is None

    short = first_divergence(a, a[:2])
    assert short.index == 2 and "early" in short.reason

    longer = first_divergence(a[:2], a)
    assert longer.index == 2 and "extra" in longer.reason
    assert first_divergence(a[:2], a, allow_longer_replay=True) is None


def test_run_start_snapshot_requires_a_header():
    with pytest.raises(JournalError):
        run_start_snapshot([JournalEvent(0, 0, 0, "sched", {"core": 0})])


def test_journal_bytes_identical_across_hash_seeds(tmp_path):
    """Record the same run in two processes with different
    PYTHONHASHSEED: the on-disk journals must be byte-identical, and a
    third process must replay one of them deterministically."""
    src = tmp_path / "prog.c"
    src.write_text(RACY_SRC)
    journals = []
    for hash_seed in ("0", "12345"):
        path = tmp_path / ("run-%s.journal" % hash_seed)
        env = dict(os.environ, PYTHONHASHSEED=hash_seed, PYTHONPATH="src")
        subprocess.run(
            [sys.executable, "-m", "repro.cli", "run", str(src),
             "--opt", "base", "--seed", "7", "--journal", str(path)],
            capture_output=True, text=True, env=env, cwd="/root/repo",
            check=True)
        journals.append(path.read_bytes())
    assert journals[0] == journals[1]

    env = dict(os.environ, PYTHONHASHSEED="999", PYTHONPATH="src")
    proc = subprocess.run(
        [sys.executable, "-m", "repro.cli", "replay", str(src),
         str(tmp_path / "run-0.journal")],
        capture_output=True, text=True, env=env, cwd="/root/repo")
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "DETERMINISTIC" in proc.stdout


@pytest.mark.parametrize("bug_id", ["19938", "44402", "270689"])
@pytest.mark.parametrize("seed", [0, 1, 2])
def test_corpus_violations_replay_identically(bug_id, seed):
    """Acceptance: a recorded bug-corpus run replays to the identical
    verdict multiset and event stream on every seed."""
    from repro.bench.scale import corpus_config
    from repro.workloads.bugs import BUGS

    program = ProtectedProgram(BUGS[bug_id].source)
    config = corpus_config(Mode.BUG_FINDING, pause_ms=20)
    _report, recorder = record_run(program, config, seed=seed)
    result = replay_run(program, recorder)
    assert result.ok, result.describe()
    assert result.verdicts_match
    assert [e.key() for e in result.replayed] \
        == [e.key() for e in recorder.events]
