"""Shared workload and config helpers for the journal-plane tests."""

from repro.core.config import KivatiConfig, Mode, OptLevel

#: Compact two-thread check-then-act race: enough contention to exercise
#: every journal plane (arming, traps, suspensions, undo, violations)
#: while staying short enough to re-execute dozens of times per test.
RACY_SRC = """
int x = 0;

void careful() {
    int i = 0;
    while (i < 3) {
        int t = x;
        sleep(400);
        x = t + 1;
        i = i + 1;
    }
}

void racer() {
    int j = 0;
    while (j < 3) {
        sleep(150);
        x = x + 10;
        j = j + 1;
    }
}

void main() {
    spawn careful();
    spawn racer();
    join();
    output(x);
}
"""


def base_config(**overrides):
    kwargs = dict(opt=OptLevel.BASE, mode=Mode.PREVENTION)
    kwargs.update(overrides)
    return KivatiConfig(**kwargs)
