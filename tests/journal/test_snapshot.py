"""Config snapshot: the run-start header must rebuild the exact config."""

import pytest

from journal_common import RACY_SRC, base_config
from repro.errors import JournalError
from repro.faults.breaker import BreakerPolicy
from repro.faults.plan import FaultPlan, FaultSpec
from repro.journal.snapshot import (SNAPSHOT_VERSION, config_from_snapshot,
                                    config_snapshot, source_digest)


def test_snapshot_roundtrip_is_exact():
    config = base_config(
        seed=42, num_cores=3, num_watchpoints=2, pause_ns=12345,
        trap_before=True, watchdog=True,
        whitelist=frozenset((7, 3)),
        faults=FaultPlan("mix", [
            FaultSpec("machine.trap.drop", probability=0.5, max_fires=2),
            FaultSpec("journal.crash", probability=1.0, start_after=9,
                      param={"torn": 1}),
        ]),
    )
    snap = config_snapshot(config, RACY_SRC)
    rebuilt = config_from_snapshot(snap)
    # snapshotting the rebuilt config must reproduce the original snapshot
    # bit-for-bit: that is what makes replay-of-a-replay deterministic
    assert config_snapshot(rebuilt, RACY_SRC) == snap
    assert rebuilt.seed == 42
    assert rebuilt.whitelist == frozenset((3, 7))
    assert [s.point for s in rebuilt.faults.specs] \
        == ["machine.trap.drop", "journal.crash"]


def test_snapshot_carries_source_identity():
    snap = config_snapshot(base_config(), RACY_SRC)
    assert snap["source_sha256"] == source_digest(RACY_SRC)
    assert config_snapshot(base_config())["version"] == SNAPSHOT_VERSION
    assert "source_sha256" not in config_snapshot(base_config())


def test_breaker_policy_survives_the_roundtrip():
    config = base_config(breaker=BreakerPolicy())
    rebuilt = config_from_snapshot(config_snapshot(config))
    assert isinstance(rebuilt.breaker, BreakerPolicy)
    config = base_config(breaker=False)
    rebuilt = config_from_snapshot(config_snapshot(config))
    assert rebuilt.breaker is False


def test_drop_fault_points_strips_the_crash():
    config = base_config(faults=FaultPlan("crash-only", [
        FaultSpec("journal.crash", probability=1.0)]))
    rebuilt = config_from_snapshot(config_snapshot(config),
                                   drop_fault_points=("journal.crash",))
    assert rebuilt.faults is None


def test_rejects_foreign_snapshots():
    with pytest.raises(JournalError):
        config_from_snapshot(None)
    with pytest.raises(JournalError):
        config_from_snapshot({"not": "a snapshot"})
    snap = config_snapshot(base_config())
    snap["version"] = SNAPSHOT_VERSION + 1
    with pytest.raises(JournalError):
        config_from_snapshot(snap)
