"""Snapshot version 2: the pressure-plane policy travels in the
run-start header, and version-1 journals (recorded before the plane
existed) still load."""

import pytest

from journal_common import RACY_SRC, base_config
from repro.errors import JournalError
from repro.journal.snapshot import (SUPPORTED_SNAPSHOT_VERSIONS,
                                    config_from_snapshot, config_snapshot)
from repro.pressure import PressurePolicy


def test_policy_roundtrips_through_snapshot():
    policy = PressurePolicy(sample_max_n=32, suspended_watermark=5,
                            leak_age_ns=123_456)
    config = base_config(pressure=policy)
    snap = config_snapshot(config, RACY_SRC)
    rebuilt = config_from_snapshot(snap)
    assert isinstance(rebuilt.pressure, PressurePolicy)
    assert rebuilt.pressure.sample_max_n == 32
    assert rebuilt.pressure.suspended_watermark == 5
    assert rebuilt.pressure.leak_age_ns == 123_456
    assert config_snapshot(rebuilt, RACY_SRC) == snap


def test_pressure_true_and_none_roundtrip():
    snap_on = config_snapshot(base_config(pressure=True))
    assert snap_on["pressure"] is True
    assert config_from_snapshot(snap_on).pressure is True
    snap_off = config_snapshot(base_config())
    assert snap_off["pressure"] is None
    assert config_from_snapshot(snap_off).pressure is None


def test_version1_snapshot_without_pressure_key_loads():
    """A journal recorded before the pressure plane existed has
    version 1 and no ``pressure`` key: it must still replay."""
    snap = config_snapshot(base_config(seed=9))
    snap["version"] = 1
    del snap["pressure"]
    assert 1 in SUPPORTED_SNAPSHOT_VERSIONS
    rebuilt = config_from_snapshot(snap)
    assert rebuilt.pressure is None
    assert rebuilt.seed == 9


def test_bad_suspend_timeout_rejected_at_load():
    snap = config_snapshot(base_config())
    snap["suspend_timeout_ns"] = 0
    with pytest.raises(JournalError):
        config_from_snapshot(snap)
    snap["suspend_timeout_ns"] = "10ms"
    with pytest.raises(JournalError):
        config_from_snapshot(snap)


def test_missing_suspend_timeout_takes_historic_default():
    snap = config_snapshot(base_config())
    del snap["suspend_timeout_ns"]
    assert config_from_snapshot(snap).suspend_timeout_ns == 10_000_000


def test_garbage_pressure_value_rejected():
    snap = config_snapshot(base_config())
    snap["pressure"] = "yes please"
    with pytest.raises(JournalError):
        config_from_snapshot(snap)
