"""Journal recorder: in-memory sink, disk streaming, crash injection."""

import pytest

from repro.errors import JournalCrash
from repro.faults.plan import FaultInjector, FaultPlan, FaultSpec
from repro.journal.format import JournalWriter, read_journal
from repro.journal.recorder import JournalRecorder
from repro.minic.ast import AccessKind


def test_emit_sequences_and_canonicalizes_payloads():
    recorder = JournalRecorder()
    first = recorder.emit(100, 1, "begin", ar=3, first=AccessKind.READ,
                          kinds=(AccessKind.READ, AccessKind.WRITE))
    second = recorder.emit(200, 2, "end", ar=3, zombie=False)
    assert (first.seq, second.seq) == (0, 1)
    assert first.payload == {"ar": 3, "first": "R", "kinds": ["R", "W"]}
    assert len(recorder) == 2
    assert recorder.filter("begin") == [first]
    assert recorder.filter(tid=2) == [second]


def test_max_events_bound_counts_evictions():
    recorder = JournalRecorder(max_events=3)
    for i in range(8):
        recorder.emit(i, 0, "sched", core=0)
    assert len(recorder.events) == 3
    assert recorder.dropped == 5
    assert "5 events dropped" in recorder.render()


def test_disk_backed_recorder_streams_every_frame(tmp_path):
    path = str(tmp_path / "j")
    recorder = JournalRecorder(writer=JournalWriter(path))
    for i in range(6):
        recorder.emit(i * 10, i % 2, "sched", core=0, pc=i)
    recorder.close()
    result = read_journal(path)
    assert not result.torn
    assert [e.key() for e in result.events] \
        == [e.key() for e in recorder.events]


def _crash_plan(frame, **param):
    return FaultPlan("crash", [
        FaultSpec("journal.crash", probability=1.0, max_fires=1,
                  start_after=frame, param=param)])


def test_crash_injection_tears_the_frame_and_raises(tmp_path):
    path = str(tmp_path / "j")
    recorder = JournalRecorder(writer=JournalWriter(path),
                               faults=FaultInjector(_crash_plan(3, torn=1)))
    with pytest.raises(JournalCrash):
        for i in range(10):
            recorder.emit(i * 10, 0, "sched", core=0, pc=i)
    # frames before the crash survive; the torn tail is dropped
    result = read_journal(path)
    assert result.torn
    assert [e.seq for e in result.events] == [0, 1, 2]
    assert recorder.writer.closed


def test_crash_injection_with_clean_close_leaves_no_tear(tmp_path):
    path = str(tmp_path / "j")
    recorder = JournalRecorder(writer=JournalWriter(path),
                               faults=FaultInjector(_crash_plan(3, torn=0)))
    with pytest.raises(JournalCrash):
        for i in range(10):
            recorder.emit(i * 10, 0, "sched", core=0, pc=i)
    result = read_journal(path)
    # the stream is incomplete (no run-end) but frames cleanly
    assert not result.torn
    assert [e.seq for e in result.events] == [0, 1, 2]


def test_crash_injection_without_writer_still_raises():
    recorder = JournalRecorder(faults=FaultInjector(_crash_plan(2)))
    recorder.emit(0, 0, "sched", core=0)
    recorder.emit(1, 0, "sched", core=0)
    with pytest.raises(JournalCrash):
        recorder.emit(2, 0, "sched", core=0)
    assert len(recorder.events) == 2
