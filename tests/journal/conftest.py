"""Shared fixtures for the journal-plane tests."""

import pytest

from journal_common import RACY_SRC
from repro.core.session import ProtectedProgram


@pytest.fixture(scope="session")
def racy_program():
    return ProtectedProgram(RACY_SRC)
