"""Streaming checker unit tests: verdict semantics, zombie windows,
epoch GC bounds, damage handling and the three-way agreement with
``reverify`` and the online detector on real runs."""

import os

import pytest

from journal_common import RACY_SRC, base_config
from repro.core.session import ProtectedProgram
from repro.journal.checker import (StreamingChecker, check_events,
                                   check_journal)
from repro.journal.events import JournalEvent
from repro.journal.format import JournalWriter
from repro.journal.postmortem import reverify
from repro.journal.recorder import JournalRecorder


def _ev(seq, tid, kind, time_ns=None, **payload):
    return JournalEvent(seq, 10 * seq if time_ns is None else time_ns,
                        tid, kind, payload)


def _window(seq0, tid, ar, slot=0, gen=1, first="R", second="W",
            triggers=()):
    """arm + begin + triggers + end, matching violation events omitted."""
    events = [_ev(seq0, tid, "arm", slot=slot, gen=gen),
              _ev(seq0 + 1, tid, "begin", ar=ar, slot=slot, gen=gen,
                  first=first)]
    seq = seq0 + 2
    for rtid, kinds, undone in triggers:
        events.append(_ev(seq, rtid, "trigger", slot=slot, gen=gen,
                          kinds=list(kinds), undone=undone))
        seq += 1
    events.append(_ev(seq, tid, "end", ar=ar, second=second))
    return events, seq + 1


def _racy_events(seed=5):
    recorder = JournalRecorder()
    ProtectedProgram(RACY_SRC).run(base_config(journal=recorder,
                                               seed=seed))
    return recorder


def test_clean_window_yields_figure2_verdict():
    events = [_ev(0, 0, "run-start")]
    body, seq = _window(1, 0, ar=7, first="R", second="W",
                        triggers=[(1, ("W",), True)])
    events += body + [_ev(seq, 0, "run-end")]
    result = check_events(events)
    assert result.verdicts == [(7, 0, 1, "R", "W", "W", True)]
    assert result.complete and result.clean_close
    assert result.coverage == 1.0
    assert result.windows_checked == 1 and result.windows_open == 0
    # no matching online record was journaled => explicit disagreement
    assert result.status == "disagree"
    assert len(result.disagreements) == 1


def test_serializable_window_yields_no_verdict():
    events = [_ev(0, 0, "run-start")]
    body, seq = _window(1, 0, ar=7, first="R", second="R",
                        triggers=[(1, ("R",), False)])
    events += body + [_ev(seq, 0, "run-end")]
    result = check_events(events)
    assert result.verdicts == []
    assert result.status == "pass" and result.agrees


def test_stale_and_same_tid_triggers_are_filtered():
    events = [
        _ev(0, 0, "run-start"),
        _ev(1, 0, "arm", slot=0, gen=1),
        # recorded against the epoch before the window opens: stale
        _ev(2, 1, "trigger", slot=0, gen=1, kinds=["W"], undone=False),
        _ev(3, 0, "begin", ar=1, slot=0, gen=1, first="R"),
        # same thread as the window: never a remote conflict
        _ev(4, 0, "trigger", slot=0, gen=1, kinds=["W"], undone=False),
        _ev(5, 0, "end", ar=1, second="W"),
        _ev(6, 0, "run-end"),
    ]
    result = check_events(events)
    assert result.verdicts == []
    assert result.status == "pass"


def test_zombie_end_is_evaluated_unprevented():
    """A zombified window still gets verdicts at its late end, but the
    kernel force-marks them unprevented (the undo already rolled back)."""
    events = [
        _ev(0, 0, "run-start"),
        _ev(1, 0, "arm", slot=0, gen=1),
        _ev(2, 0, "begin", ar=1, slot=0, gen=1, first="R"),
        _ev(3, 1, "trigger", slot=0, gen=1, kinds=["W"], undone=True),
        _ev(4, 0, "zombify", ar=1),
        _ev(5, 0, "end", ar=1, second="W", zombie=True),
        _ev(6, 0, "run-end"),
    ]
    result = check_events(events)
    assert result.verdicts == [(1, 0, 1, "R", "W", "W", False)]


def test_stranded_zombie_is_counted_not_alarmed():
    """begin -> zombify -> (prevented undo re-runs the thread, a fresh
    begin never ends the zombie): a legitimate kernel shape, so a
    leftover window is informational, not an anomaly."""
    events = [
        _ev(0, 0, "run-start"),
        _ev(1, 0, "arm", slot=0, gen=1),
        _ev(2, 0, "begin", ar=1, slot=0, gen=1, first="R"),
        _ev(3, 0, "zombify", ar=1),
        _ev(4, 0, "run-end"),
    ]
    result = check_events(events)
    assert result.windows_open == 1
    assert result.anomalies == []
    assert result.complete and result.status == "pass"


def test_end_without_begin_is_anomalous_on_intact_journal():
    events = [
        _ev(0, 0, "run-start"),
        _ev(1, 0, "end", ar=1, second="W"),
        _ev(2, 0, "run-end"),
    ]
    result = check_events(events)
    assert len(result.anomalies) == 1
    assert result.status == "disagree"
    assert not result.agrees


def test_seq_gap_demotes_anomalies_to_unverified_and_caps_coverage():
    events = [
        _ev(0, 0, "run-start"),
        # seqs 1..2 lost with the frames they carried
        _ev(3, 0, "end", ar=1, second="W"),
        _ev(4, 0, "run-end"),
    ]
    result = check_events(events)
    assert result.anomalies == []
    assert result.windows_unverified == 1
    assert result.gaps == [(1, 2)]
    assert result.missing_events == 2
    assert result.coverage == pytest.approx(3 / 5.0)
    assert result.status == "partial" and not result.complete


def test_missing_run_end_means_torn_tail():
    events = [
        _ev(0, 0, "run-start"),
        _ev(1, 0, "arm", slot=0, gen=1),
        _ev(2, 0, "begin", ar=1, slot=0, gen=1, first="R"),
    ]
    result = check_events(events)
    assert not result.clean_close and not result.complete
    assert result.windows_open == 1
    assert result.coverage == pytest.approx(3 / 4.0)


def test_pruned_rotation_head_counts_as_missing():
    events = [
        _ev(10, 0, "arm", slot=0, gen=1),
        _ev(11, 0, "run-end"),
    ]
    result = check_events(events)
    assert result.missing_events == 10
    assert result.coverage == pytest.approx(2 / 12.0)
    assert not result.complete


def test_epoch_gc_bounds_retained_triggers():
    """Sequential windows with re-armed slots: every closed epoch's
    triggers are dropped, so the retained-trigger peak stays at the
    per-window count no matter how many windows stream past."""
    events = [_ev(0, 0, "run-start")]
    seq = 1
    for i in range(50):
        body, seq = _window(seq, 0, ar=i, slot=0, gen=i + 1,
                            first="R", second="R",
                            triggers=[(1, ("R",), False)])
        events += body
    events.append(_ev(seq, 0, "run-end"))
    checker = StreamingChecker()
    for event in events:
        checker.feed(event)
    result = checker.finish()
    assert result.stats.triggers_seen == 50
    assert result.stats.retained_triggers_peak <= 2
    assert result.stats.live_epochs_peak <= 2
    assert result.stats.epochs_gcd >= 49


def test_check_events_three_way_agreement_on_real_run():
    recorder = _racy_events()
    post = reverify(recorder.events)
    result = check_events(recorder.events)
    assert result.verdicts == post.offline
    assert result.online == post.online
    assert result.agrees == post.agrees
    assert result.status == "pass"
    assert result.coverage == 1.0


def test_check_journal_streams_from_disk(tmp_path):
    path = str(tmp_path / "run.journal")
    writer = JournalWriter(path)
    recorder = JournalRecorder(writer=writer)
    ProtectedProgram(RACY_SRC).run(base_config(journal=recorder, seed=5))
    recorder.close()
    result = check_journal(path)
    in_memory = check_events(_racy_events().events)
    assert result.verdicts == in_memory.verdicts
    assert result.status == "pass"


def test_check_journal_survives_truncation(tmp_path):
    path = str(tmp_path / "run.journal")
    writer = JournalWriter(path)
    recorder = JournalRecorder(writer=writer)
    ProtectedProgram(RACY_SRC).run(base_config(journal=recorder, seed=5))
    recorder.close()
    size = os.path.getsize(path)
    with open(path, "r+b") as f:
        f.truncate(int(size * 0.6))
    result = check_journal(path)
    assert result.status == "partial"
    assert 0.0 < result.coverage < 1.0
    assert not result.complete


def test_check_journal_survives_midfile_flip(tmp_path):
    path = str(tmp_path / "run.journal")
    writer = JournalWriter(path)
    recorder = JournalRecorder(writer=writer)
    ProtectedProgram(RACY_SRC).run(base_config(journal=recorder, seed=5))
    recorder.close()
    size = os.path.getsize(path)
    with open(path, "r+b") as f:
        f.seek(size // 2)
        byte = f.read(1)
        f.seek(size // 2)
        f.write(bytes([byte[0] ^ 0xFF]))
    result = check_journal(path)
    # either the flip hit a frame (partial + corruption records) or it
    # hit dead space; it must never crash or silently claim a full pass
    assert result.status in ("partial", "pass")
    if result.corruptions:
        assert result.status == "partial"


def test_empty_event_list_is_no_data():
    result = check_events([])
    assert result.status == "no-data"
    assert result.coverage == 0.0
