"""On-disk journal format: CRC framing, torn-tail tolerance, rotation."""

import struct

import pytest

from repro.errors import JournalError
from repro.journal.events import (JournalEvent, decode_event, encode_event,
                                  jsonable)
from repro.journal.format import (MAX_FRAME_BYTES, SEGMENT_MAGIC,
                                  JournalWriter, read_journal, segment_paths)
from repro.minic.ast import AccessKind


def make_event(seq, kind="sched", **payload):
    if not payload:
        payload = {"core": 0, "pc": seq}
    return JournalEvent(seq, seq * 10, seq % 3, kind, payload)


def write_events(path, count, **writer_kwargs):
    writer = JournalWriter(str(path), **writer_kwargs)
    for seq in range(count):
        writer.append(make_event(seq))
    writer.close()
    return writer


# ----------------------------------------------------------------------
# event encoding
# ----------------------------------------------------------------------

def test_encode_decode_roundtrip():
    event = make_event(3, kind="begin", ar=7, first="R", joined=False)
    back = decode_event(encode_event(event))
    assert back.key() == event.key()
    assert back == event


def test_encoding_is_canonical_regardless_of_dict_order():
    a = JournalEvent(0, 5, 1, "end", {"ar": 1, "second": "W", "zombie": False})
    b = JournalEvent(0, 5, 1, "end", {"zombie": False, "second": "W", "ar": 1})
    assert encode_event(a) == encode_event(b)


def test_jsonable_coercions():
    assert jsonable(AccessKind.READ) == "R"
    assert jsonable((1, 2)) == [1, 2]
    assert jsonable({AccessKind.WRITE, AccessKind.READ}) == ["R", "W"]
    assert jsonable({"k": (AccessKind.READ,)}) == {"k": ["R"]}
    with pytest.raises(JournalError):
        jsonable(object())


def test_decode_rejects_malformed_payloads():
    with pytest.raises(JournalError):
        decode_event(b"not json")
    with pytest.raises(JournalError):
        decode_event(b'{"a": 1}')            # not a 5-list
    with pytest.raises(JournalError):
        decode_event(b'[1, 2, 3, 4]')        # wrong arity
    with pytest.raises(JournalError):
        decode_event(b'["x", 0, 1, "sched", {}]')  # non-int seq


# ----------------------------------------------------------------------
# framing and torn tails
# ----------------------------------------------------------------------

def test_write_read_roundtrip(tmp_path):
    path = tmp_path / "j"
    write_events(path, 10)
    result = read_journal(str(path))
    assert not result.torn
    assert [e.seq for e in result.events] == list(range(10))
    assert result.first_seq == 0 and result.last_seq == 9


def test_trailing_garbage_is_dropped(tmp_path):
    path = tmp_path / "j"
    write_events(path, 5)
    with open(path, "ab") as f:
        f.write(b"\x07\x07")  # torn frame header
    result = read_journal(str(path))
    assert result.torn
    assert len(result.events) == 5
    assert result.torn_segment == str(path)


def test_truncated_payload_is_dropped(tmp_path):
    path = tmp_path / "j"
    write_events(path, 5)
    data = path.read_bytes()
    path.write_bytes(data[:-3])  # crash mid-way through the last frame
    result = read_journal(str(path))
    assert result.torn
    assert [e.seq for e in result.events] == [0, 1, 2, 3]


def test_crc_mismatch_is_dropped(tmp_path):
    path = tmp_path / "j"
    write_events(path, 5)
    data = bytearray(path.read_bytes())
    data[-1] ^= 0xFF  # bit-rot in the last payload byte
    path.write_bytes(bytes(data))
    result = read_journal(str(path))
    assert result.torn
    assert [e.seq for e in result.events] == [0, 1, 2, 3]


def test_bad_magic_yields_empty_torn_journal(tmp_path):
    path = tmp_path / "j"
    path.write_bytes(b"NOTAJRNL" + b"\x00" * 32)
    result = read_journal(str(path))
    assert result.torn
    assert result.events == []


def test_oversized_length_field_is_rejected(tmp_path):
    path = tmp_path / "j"
    path.write_bytes(SEGMENT_MAGIC
                     + struct.pack("<II", MAX_FRAME_BYTES + 1, 0))
    result = read_journal(str(path))
    assert result.torn
    assert result.events == []


def test_missing_journal_raises(tmp_path):
    with pytest.raises(JournalError):
        read_journal(str(tmp_path / "absent"))


def test_append_torn_simulates_crash_mid_write(tmp_path):
    path = tmp_path / "j"
    writer = JournalWriter(str(path))
    for seq in range(3):
        writer.append(make_event(seq))
    writer.append_torn(make_event(3))
    writer.close()
    result = read_journal(str(path))
    assert result.torn
    assert [e.seq for e in result.events] == [0, 1, 2]


def test_closed_writer_refuses_appends(tmp_path):
    writer = JournalWriter(str(tmp_path / "j"))
    writer.close()
    assert writer.closed
    with pytest.raises(JournalError):
        writer.append(make_event(0))


# ----------------------------------------------------------------------
# rotation
# ----------------------------------------------------------------------

def test_rotation_stitches_segments_in_order(tmp_path):
    path = tmp_path / "j"
    writer = write_events(path, 300, max_bytes=4096, max_segments=8)
    assert writer.rotations >= 1
    assert len(segment_paths(str(path))) == writer.rotations + 1
    result = read_journal(str(path))
    assert not result.torn
    assert result.segments_read == writer.rotations + 1
    assert [e.seq for e in result.events] == list(range(300))


def test_rotation_prunes_oldest_segments(tmp_path):
    path = tmp_path / "j"
    writer = write_events(path, 600, max_bytes=4096, max_segments=2)
    assert writer.rotations >= 2
    assert len(segment_paths(str(path))) <= 2
    result = read_journal(str(path))
    assert not result.torn
    # pruning loses the oldest frames but never tears the survivors: the
    # kept events are a contiguous run ending at the newest frame
    seqs = [e.seq for e in result.events]
    assert seqs[0] > 0
    assert seqs[-1] == 599
    assert seqs == list(range(seqs[0], 600))


def test_torn_tail_in_rotated_stream_keeps_older_segments(tmp_path):
    path = tmp_path / "j"
    write_events(path, 300, max_bytes=4096, max_segments=8)
    data = bytearray(path.read_bytes())
    data[-1] ^= 0xFF  # corrupt only the newest segment's last frame
    path.write_bytes(bytes(data))
    result = read_journal(str(path))
    assert result.torn
    assert result.torn_segment == str(path)
    seqs = [e.seq for e in result.events]
    assert seqs == list(range(0, 299))  # everything but the corrupt frame
