"""Postmortem soundness: the offline serializability re-verifier must
agree with every online verdict — asserted over the full bug corpus."""

import pytest

from journal_common import base_config
from repro.bench.scale import corpus_config
from repro.core.config import Mode
from repro.core.session import ProtectedProgram
from repro.journal.events import JournalEvent
from repro.journal.postmortem import reverify, reverify_report
from repro.journal.replay import record_run
from repro.workloads.bugs import BUG_IDS, BUGS

_PROGRAMS = {}


def protected(bug):
    pp = _PROGRAMS.get(bug.bug_id)
    if pp is None:
        pp = ProtectedProgram(bug.source)
        _PROGRAMS[bug.bug_id] = pp
    return pp


@pytest.mark.parametrize("bug_id", BUG_IDS)
def test_zero_disagreements_on_the_bug_corpus(bug_id):
    """Acceptance: disagreements == 0 for every corpus bug."""
    bug = BUGS[bug_id]
    config = corpus_config(Mode.BUG_FINDING, pause_ms=20)
    report, recorder = record_run(protected(bug), config, seed=1)
    result, report_matches = reverify_report(recorder, report)
    assert result.disagreements == [], result.describe()
    assert not result.anomalies, result.describe()
    assert report_matches
    assert result.windows_checked > 0


def test_postmortem_agrees_on_the_racy_workload(racy_program):
    report, recorder = record_run(racy_program, base_config(), seed=0)
    assert len(report.violations)
    result, report_matches = reverify_report(recorder, report)
    assert result.agrees and report_matches, result.describe()
    assert len(result.offline) == len(report.violations)
    assert "0 disagreements" in result.describe()


def _ev(seq, kind, tid=0, t=None, **payload):
    return JournalEvent(seq, seq * 10 if t is None else t, tid, kind, payload)


def test_detects_an_online_verdict_with_no_supporting_trigger():
    """A violation event with no journaled trigger evidence is exactly
    the kind of online/offline split the checker exists to catch."""
    events = [
        _ev(0, "begin", tid=1, ar=3, slot=0, gen=1, first="R"),
        _ev(1, "violation", tid=1, ar=3, remote_tid=2, first="R",
            remote="W", second="R", prevented=True),
        _ev(2, "end", tid=1, ar=3, second="R", zombie=False),
    ]
    result = reverify(events)
    assert result.offline == []
    assert len(result.online) == 1
    assert len(result.disagreements) == 1
    assert not result.agrees


def test_detects_a_missing_online_verdict():
    """Triggers that prove an unserializable interleaving, but no
    journaled violation: offline-only verdict, flagged."""
    events = [
        _ev(0, "begin", tid=1, ar=3, slot=0, gen=1, first="R"),
        _ev(1, "trigger", tid=2, t=15, slot=0, gen=1, kinds=["W"],
            undone=True),
        _ev(2, "end", tid=1, ar=3, second="R", zombie=False),
    ]
    result = reverify(events)
    assert result.offline == [(3, 1, 2, "R", "W", "R", True)]
    assert result.online == []
    assert not result.agrees


def test_serializable_window_yields_no_verdict():
    # (R, R, R) is serializable: a remote read never invalidates
    events = [
        _ev(0, "begin", tid=1, ar=3, slot=0, gen=1, first="R"),
        _ev(1, "trigger", tid=2, t=15, slot=0, gen=1, kinds=["R"],
            undone=False),
        _ev(2, "end", tid=1, ar=3, second="R", zombie=False),
    ]
    result = reverify(events)
    assert result.offline == [] and result.agrees


def test_pre_window_and_local_triggers_are_ignored():
    events = [
        _ev(0, "trigger", tid=2, t=1, slot=0, gen=1, kinds=["W"],
            undone=True),                       # before the window opened
        _ev(1, "begin", tid=1, ar=3, t=10, slot=0, gen=1, first="R"),
        _ev(2, "trigger", tid=1, t=15, slot=0, gen=1, kinds=["W"],
            undone=True),                       # the local thread itself
        _ev(3, "end", tid=1, ar=3, t=20, second="R", zombie=False),
    ]
    result = reverify(events)
    assert result.offline == []


def test_zombie_windows_are_checked_and_forced_unprevented():
    events = [
        _ev(0, "begin", tid=1, ar=3, slot=0, gen=1, first="R"),
        _ev(1, "trigger", tid=2, t=15, slot=0, gen=1, kinds=["W"],
            undone=True),
        _ev(2, "zombify", tid=1, ar=3, slot=0, gen=1, begin_time=0),
        _ev(3, "end", tid=1, ar=3, second="R", zombie=True),
    ]
    result = reverify(events)
    # undone remote access, but the window outlived its watchpoint: the
    # verdict stands and must be flagged unprevented
    assert result.offline == [(3, 1, 2, "R", "W", "R", False)]


def test_unmatched_lifecycle_events_are_anomalies():
    result = reverify([_ev(0, "end", tid=1, ar=9, second="W", zombie=False)])
    assert result.anomalies and not result.agrees
    result = reverify([_ev(0, "zombify", tid=1, ar=9, slot=0, gen=1)])
    assert result.anomalies and not result.agrees
