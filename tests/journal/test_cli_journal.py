"""CLI surface of the journal plane: run --journal/--strict, kivati
journal, kivati replay — and their exit codes."""

import pytest

from journal_common import RACY_SRC
from repro.cli import main

CLEAN_SRC = """
int x = 0;
void main() {
    int t = x;
    x = t + 1;
    output(x);
}
"""


@pytest.fixture
def racy_file(tmp_path):
    path = tmp_path / "racy.c"
    path.write_text(RACY_SRC)
    return str(path)


@pytest.fixture
def recorded_journal(tmp_path, racy_file):
    path = str(tmp_path / "run.journal")
    assert main(["run", racy_file, "--opt", "base", "--journal", path]) == 0
    return path


def test_run_strict_exits_3_on_violations(racy_file, capsys):
    assert main(["run", racy_file, "--opt", "base", "--strict"]) == 3
    assert "violation:" in capsys.readouterr().out


def test_run_strict_clean_program_exits_0(tmp_path, capsys):
    path = tmp_path / "clean.c"
    path.write_text(CLEAN_SRC)
    assert main(["run", str(path), "--strict"]) == 0


def test_run_journal_reports_frame_count(racy_file, tmp_path, capsys):
    journal = str(tmp_path / "j")
    assert main(["run", racy_file, "--opt", "base", "--journal",
                 journal]) == 0
    assert "journal:" in capsys.readouterr().out


def test_journal_command_inspects_a_recording(recorded_journal, capsys):
    assert main(["journal", recorded_journal, "--events", "5"]) == 0
    out = capsys.readouterr().out
    assert "run-start" in out
    assert "reconstructed state" in out
    assert "... " in out  # event listing was truncated at 5


def test_journal_command_postmortem_agrees(recorded_journal, capsys):
    assert main(["journal", recorded_journal, "--postmortem"]) == 0
    out = capsys.readouterr().out
    assert "0 disagreements" in out


def test_journal_command_flags_torn_tail(recorded_journal, capsys):
    with open(recorded_journal, "ab") as f:
        f.write(b"\x13")
    assert main(["journal", recorded_journal]) == 0  # torn but consistent
    assert "TORN TAIL" in capsys.readouterr().out


def test_journal_command_missing_file_exits_2(tmp_path, capsys):
    assert main(["journal", str(tmp_path / "absent")]) == 2


def test_replay_command_is_deterministic(racy_file, recorded_journal,
                                         capsys):
    assert main(["replay", racy_file, recorded_journal]) == 0
    out = capsys.readouterr().out
    assert "DETERMINISTIC" in out
    assert "verdicts match" in out


def test_replay_command_refuses_wrong_program(tmp_path, recorded_journal,
                                              capsys):
    path = tmp_path / "other.c"
    path.write_text(CLEAN_SRC)
    assert main(["replay", str(path), recorded_journal]) == 2
    assert "different program" in capsys.readouterr().err


def test_bugs_strict_exits_3_when_detected(capsys):
    assert main(["bugs", "19938", "--bug-finding", "--attempts", "15",
                 "--strict"]) == 3
    assert "detected" in capsys.readouterr().out
