"""Lexer unit tests."""

import pytest

from repro.errors import LexError
from repro.minic.lexer import Token, tokenize


def kinds(source):
    return [(t.kind, t.value) for t in tokenize(source)[:-1]]


def test_empty_source_yields_only_eof():
    toks = tokenize("")
    assert len(toks) == 1
    assert toks[0].kind == "eof"


def test_integer_literal():
    assert kinds("42") == [("int", 42)]


def test_identifier_and_keyword():
    assert kinds("int foo") == [("kw", "int"), ("id", "foo")]


def test_identifier_with_underscore_and_digits():
    assert kinds("_x9 y_2") == [("id", "_x9"), ("id", "y_2")]


def test_all_keywords_recognized():
    for kw in ("int", "void", "if", "else", "while", "for", "break",
               "continue", "return", "spawn"):
        assert kinds(kw) == [("kw", kw)]


def test_keyword_prefix_is_identifier():
    assert kinds("iff whiler") == [("id", "iff"), ("id", "whiler")]


def test_two_char_operators_longest_match():
    assert kinds("a<=b") == [("id", "a"), ("op", "<="), ("id", "b")]
    assert kinds("a==b") == [("id", "a"), ("op", "=="), ("id", "b")]
    assert kinds("a&&b") == [("id", "a"), ("op", "&&"), ("id", "b")]
    assert kinds("a||b") == [("id", "a"), ("op", "||"), ("id", "b")]
    assert kinds("a!=b") == [("id", "a"), ("op", "!="), ("id", "b")]


def test_single_ampersand_is_address_of():
    assert kinds("&x") == [("op", "&"), ("id", "x")]


def test_line_comment_skipped():
    assert kinds("a // comment here\nb") == [("id", "a"), ("id", "b")]


def test_block_comment_skipped():
    assert kinds("a /* x\ny\nz */ b") == [("id", "a"), ("id", "b")]


def test_unterminated_block_comment_raises():
    with pytest.raises(LexError):
        tokenize("a /* never closed")


def test_line_and_column_tracking():
    toks = tokenize("ab\n  cd")
    assert (toks[0].line, toks[0].col) == (1, 1)
    assert (toks[1].line, toks[1].col) == (2, 3)


def test_line_tracking_after_block_comment():
    toks = tokenize("/* a\nb */ x")
    assert toks[0].line == 2


def test_unexpected_character_raises_with_position():
    with pytest.raises(LexError) as exc:
        tokenize("a\n  $")
    assert exc.value.line == 2


def test_token_equality_ignores_position():
    a = Token("id", "x", 1, 1)
    b = Token("id", "x", 5, 9)
    assert a == b
    assert hash(a) == hash(b)


def test_full_statement():
    assert kinds("x = a[3] * 2;") == [
        ("id", "x"), ("op", "="), ("id", "a"), ("op", "["), ("int", 3),
        ("op", "]"), ("op", "*"), ("int", 2), ("op", ";"),
    ]
