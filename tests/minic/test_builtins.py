"""Builtin registry tests."""

from repro.minic.builtins import (
    BUILTINS,
    POINTER_RETURNING,
    SYNC_BUILTINS,
    arity,
    has_result,
    is_builtin,
)


def test_registry_contents():
    for name in ("lock", "unlock", "cas", "atomic_add", "sleep", "yield",
                 "join", "output", "alloc", "rand", "tid", "copyword",
                 "invoke", "funcref"):
        assert is_builtin(name)
    assert not is_builtin("printf")


def test_arities():
    assert arity("lock") == 1
    assert arity("cas") == 3
    assert arity("copyword") == 2
    assert arity("join") == 0


def test_result_flags():
    assert has_result("alloc")
    assert has_result("cas")
    assert not has_result("lock")
    assert not has_result("output")


def test_pointer_returning_only_alloc():
    assert POINTER_RETURNING == {"alloc"}


def test_sync_builtins_cover_rmw_family():
    assert SYNC_BUILTINS == {"lock", "unlock", "cas", "atomic_add"}


def test_registry_shape():
    for name, (n, result) in BUILTINS.items():
        assert isinstance(n, int) and n >= 0
        assert isinstance(result, bool)
