"""Parser unit tests."""

import pytest

from repro.errors import ParseError
from repro.minic import ast
from repro.minic.parser import parse


def parse_stmt(body):
    prog = parse("void main() { %s }" % body)
    return prog.func("main").body.stmts


def parse_expr(text):
    stmts = parse_stmt("x = %s;" % text)
    return stmts[0].value


def test_empty_main():
    prog = parse("void main() {}")
    assert [f.name for f in prog.funcs] == ["main"]
    assert prog.func("main").body.stmts == []


def test_global_scalar_with_init():
    prog = parse("int g = 5; void main() {}")
    g = prog.global_var("g")
    assert g.size == 1 and g.init == 5 and not g.is_ptr


def test_global_negative_init():
    prog = parse("int g = -3; void main() {}")
    assert prog.global_var("g").init == -3


def test_global_array():
    prog = parse("int a[10]; void main() {}")
    assert prog.global_var("a").size == 10


def test_global_pointer():
    prog = parse("int *p; void main() {}")
    assert prog.global_var("p").is_ptr


def test_zero_size_array_rejected():
    with pytest.raises(ParseError):
        parse("int a[0]; void main() {}")


def test_function_with_params():
    prog = parse("void f(int a, int *b) {} void main() {}")
    assert prog.func("f").params == [("a", False), ("b", True)]


def test_int_function_detected_vs_global():
    prog = parse("int g; int f() { return 1; } void main() {}")
    assert prog.global_var("g") is not None
    assert prog.func("f") is not None


def test_precedence_mul_over_add():
    e = parse_expr("1 + 2 * 3")
    assert isinstance(e, ast.Binary) and e.op == "+"
    assert isinstance(e.right, ast.Binary) and e.right.op == "*"


def test_precedence_cmp_over_and():
    e = parse_expr("a < b && c > d")
    assert e.op == "&&"
    assert e.left.op == "<" and e.right.op == ">"


def test_parentheses_override():
    e = parse_expr("(1 + 2) * 3")
    assert e.op == "*"
    assert e.left.op == "+"


def test_unary_minus_and_not():
    e = parse_expr("-x")
    assert isinstance(e, ast.Unary) and e.op == "-"
    e = parse_expr("!x")
    assert e.op == "!"


def test_deref_and_addrof():
    e = parse_expr("*p")
    assert isinstance(e, ast.Deref)
    e = parse_expr("&y")
    assert isinstance(e, ast.AddrOf)


def test_addrof_of_array_element():
    e = parse_expr("&a[i]")
    assert isinstance(e, ast.AddrOf) and isinstance(e.operand, ast.Index)


def test_addrof_of_expression_rejected():
    with pytest.raises(ParseError):
        parse_expr("&(a + b)")


def test_index_only_on_names():
    with pytest.raises(ParseError):
        parse_expr("(a + b)[0]")


def test_call_with_args():
    e = parse_expr("f(1, g(2), x)")
    assert isinstance(e, ast.Call) and len(e.args) == 3
    assert isinstance(e.args[1], ast.Call)


def test_assignment_targets():
    stmts = parse_stmt("x = 1; *p = 2; a[0] = 3;")
    assert isinstance(stmts[0].target, ast.Var)
    assert isinstance(stmts[1].target, ast.Deref)
    assert isinstance(stmts[2].target, ast.Index)


def test_assignment_to_literal_rejected():
    with pytest.raises(ParseError):
        parse_stmt("3 = x;")


def test_if_else():
    stmts = parse_stmt("if (x) { y = 1; } else { y = 2; }")
    node = stmts[0]
    assert isinstance(node, ast.If) and node.els is not None


def test_dangling_else_binds_inner():
    stmts = parse_stmt("if (a) if (b) x = 1; else x = 2;")
    outer = stmts[0]
    assert outer.els is None
    assert outer.then.els is not None


def test_while_loop():
    stmts = parse_stmt("while (x < 3) { x = x + 1; }")
    assert isinstance(stmts[0], ast.While)


def test_for_desugars_to_while():
    stmts = parse_stmt("for (i = 0; i < 3; i = i + 1) { x = i; }")
    block = stmts[0]
    assert isinstance(block, ast.Block)
    assert isinstance(block.stmts[0], ast.Assign)
    assert isinstance(block.stmts[1], ast.While)


def test_spawn_statement():
    prog = parse("void w(int a) {} void main() { spawn w(3); }")
    sp = prog.func("main").body.stmts[0]
    assert isinstance(sp, ast.Spawn) and sp.func == "w"


def test_break_continue_return():
    stmts = parse_stmt("while (1) { break; } while (1) { continue; } return;")
    assert isinstance(stmts[0].body.stmts[0], ast.Break)
    assert isinstance(stmts[1].body.stmts[0], ast.Continue)
    assert isinstance(stmts[2], ast.Return)


def test_local_decls():
    stmts = parse_stmt("int x; int *p; int a[4]; int y = 2;")
    assert stmts[0].size == 1
    assert stmts[1].is_ptr
    assert stmts[2].size == 4
    assert stmts[3].init.value == 2


def test_unterminated_block_raises():
    with pytest.raises(ParseError):
        parse("void main() { x = 1;")


def test_missing_semicolon_raises():
    with pytest.raises(ParseError):
        parse("void main() { x = 1 }")


def test_uids_are_unique():
    prog = parse("void main() { x = 1; y = 2; }")
    uids = [n.uid for n in ast.walk(prog)]
    assert len(uids) == len(set(uids))
