"""Pretty-printer tests: output must re-parse to an equivalent program."""

import pytest

from repro.minic import ast
from repro.minic.parser import parse
from repro.minic.pretty import expr_str, pretty

ROUNDTRIP_SOURCES = [
    "void main() {}",
    "int g = 4;\nint a[8];\nint *p;\nvoid main() { g = a[2] + *p; }",
    "void main() { if (1 < 2) { output(1); } else { output(2); } }",
    "void main() { int i = 0; while (i < 3) { i = i + 1; } }",
    "void f(int x, int *y) { *y = x; } void main() { int r; f(1, &r); }",
    "void main() { int x = 1 && 0 || !2; }",
    "void w() {} void main() { spawn w(); join(); }",
    "void main() { while (1) { break; } }",
]


@pytest.mark.parametrize("src", ROUNDTRIP_SOURCES)
def test_roundtrip_stable(src):
    once = pretty(parse(src))
    twice = pretty(parse(once))
    assert once == twice


def test_expr_minimal_parens():
    e = parse("void main() { x = a + b * c; }").func("main").body.stmts[0].value
    assert expr_str(e) == "a + b * c"


def test_expr_needed_parens():
    e = parse("void main() { x = (a + b) * c; }").func("main").body.stmts[0].value
    assert expr_str(e) == "(a + b) * c"


def test_annotations_printed():
    begin = ast.BeginAtomic(3, ast.Var("x"))
    end = ast.EndAtomic(3, ast.AccessKind.WRITE)
    clear = ast.ClearAr()
    prog = parse("int x; void main() { x = 1; }")
    main = prog.func("main")
    main.body.stmts = [begin] + main.body.stmts + [end, clear]
    text = pretty(prog)
    assert "begin_atomic(3, &x);" in text
    assert "end_atomic(3);" in text
    assert "clear_ar();" in text


def test_array_and_pointer_decls():
    text = pretty(parse("int a[4]; int *p; void main() {}"))
    assert "int a[4];" in text
    assert "int *p;" in text
