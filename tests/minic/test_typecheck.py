"""Semantic checker tests."""

import pytest

from repro.errors import TypeError_
from repro.minic.parser import parse
from repro.minic.typecheck import check


def check_src(src):
    return check(parse(src))


def test_minimal_program_ok():
    info = check_src("void main() {}")
    assert "main" in info.funcs


def test_missing_main_rejected():
    with pytest.raises(TypeError_):
        check_src("void f() {}")


def test_main_with_params_rejected():
    with pytest.raises(TypeError_):
        check_src("void main(int x) {}")


def test_duplicate_global_rejected():
    with pytest.raises(TypeError_):
        check_src("int g; int g; void main() {}")


def test_duplicate_function_rejected():
    with pytest.raises(TypeError_):
        check_src("void f() {} void f() {} void main() {}")


def test_global_function_collision_rejected():
    with pytest.raises(TypeError_):
        check_src("int f; void f() {} void main() {}")


def test_builtin_shadowing_rejected():
    with pytest.raises(TypeError_):
        check_src("int lock; void main() {}")
    with pytest.raises(TypeError_):
        check_src("void rand() {} void main() {}")
    with pytest.raises(TypeError_):
        check_src("void main() { int alloc; }")


def test_undefined_variable_rejected():
    with pytest.raises(TypeError_):
        check_src("void main() { x = 1; }")


def test_local_scoping_flat_per_function():
    with pytest.raises(TypeError_):
        check_src("void main() { int x; int x; }")


def test_param_and_local_collision():
    with pytest.raises(TypeError_):
        check_src("void f(int a) { int a; } void main() {}")


def test_duplicate_param_rejected():
    with pytest.raises(TypeError_):
        check_src("void f(int a, int a) {} void main() {}")


def test_call_arity_checked():
    with pytest.raises(TypeError_):
        check_src("void f(int a) {} void main() { f(1, 2); }")


def test_builtin_arity_checked():
    with pytest.raises(TypeError_):
        check_src("void main() { sleep(); }")
    with pytest.raises(TypeError_):
        check_src("int m; void main() { lock(&m, 1); }")


def test_unknown_function_rejected():
    with pytest.raises(TypeError_):
        check_src("void main() { nosuch(1); }")


def test_spawn_unknown_function_rejected():
    with pytest.raises(TypeError_):
        check_src("void main() { spawn nosuch(); }")


def test_spawn_arity_checked():
    with pytest.raises(TypeError_):
        check_src("void w(int a) {} void main() { spawn w(); }")


def test_break_outside_loop_rejected():
    with pytest.raises(TypeError_):
        check_src("void main() { break; }")


def test_continue_outside_loop_rejected():
    with pytest.raises(TypeError_):
        check_src("void main() { continue; }")


def test_funcref_requires_function_name():
    check_src("void f() {} void main() { int x = funcref(f); }")
    with pytest.raises(TypeError_):
        check_src("void main() { int x = funcref(42); }")
    with pytest.raises(TypeError_):
        check_src("void main() { int y; int x = funcref(y); }")


def test_funcinfo_records_locals_and_pointers():
    info = check_src("""
    void f(int *p) {
        int x;
        int a[5];
        int *q;
    }
    void main() {}
    """)
    f = info.funcs["f"]
    assert f.locals == ["x", "a", "q"]
    assert f.local_sizes["a"] == 5
    assert "p" in f.ptr_names and "q" in f.ptr_names


def test_global_info_recorded():
    info = check_src("int g; int a[3]; int *p; void main() {}")
    assert info.global_sizes == {"g": 1, "a": 3, "p": 1}
    assert info.global_ptrs == {"p"}
