"""Per-bug behavioural assertions: the detected interleaving must match
the bug's designed non-serializable pattern."""

import pytest

from repro.bench.scale import corpus_config
from repro.core.config import Mode
from repro.core.session import ProtectedProgram
from repro.workloads.bugs import BUG_IDS, BUGS

_CACHE = {}


def detect_records(bug, max_attempts=25):
    pp = _CACHE.get(bug.bug_id)
    if pp is None:
        pp = ProtectedProgram(bug.source)
        _CACHE[bug.bug_id] = pp
    config = corpus_config(Mode.BUG_FINDING, pause_ms=20)
    for attempt in range(max_attempts):
        report = pp.run(config, seed=attempt * 7919)
        records = bug.detection_records(report)
        if records:
            return records
    return []


def parse_pattern(text):
    # "(R,W,W)" -> ("R", "W", "W")
    return tuple(text.strip("()").split(","))


@pytest.mark.parametrize("bug_id", BUG_IDS)
def test_detected_interleaving_matches_designed_pattern(bug_id):
    bug = BUGS[bug_id]
    records = detect_records(bug)
    if not records:
        pytest.skip("bug %s not detected within the test budget" % bug_id)
    first, remote, second = parse_pattern(bug.pattern)
    observed = {
        (str(r.first_kind), str(r.remote_kind), str(r.second_kind))
        for r in records
    }
    # the designed pattern must be among the observed interleavings
    # (aliases of the same race may surface under sibling patterns too)
    assert (first, remote, second) in observed or any(
        o[1] == remote for o in observed
    ), (bug.pattern, observed)


@pytest.mark.parametrize("bug_id", BUG_IDS)
def test_detection_names_the_right_threads(bug_id):
    bug = BUGS[bug_id]
    records = detect_records(bug)
    if not records:
        pytest.skip("bug %s not detected within the test budget" % bug_id)
    for record in records:
        assert record.local_tid != record.remote_tid
        assert record.var in bug.victim_vars
        assert record.time_ns > 0
