"""Application model tests."""

import pytest

from repro.core.config import KivatiConfig, OptLevel
from repro.core.session import ProtectedProgram
from repro.errors import WorkloadError
from repro.workloads.catalog import (
    APP_BUILDERS,
    APP_NAMES,
    build_app,
    workload_suite,
)

_CACHE = {}


def protected(workload):
    pp = _CACHE.get(workload.source)
    if pp is None:
        pp = ProtectedProgram(workload.source)
        _CACHE[workload.source] = pp
    return pp


def small_suite():
    return workload_suite(scale=0.15)


@pytest.mark.parametrize("name", APP_NAMES)
def test_app_builds_and_annotates(name):
    workload = build_app(name)
    pp = protected(workload)
    assert pp.num_ars > 0
    assert len(pp.program.instrs) > 50


def test_unknown_app_rejected():
    with pytest.raises(WorkloadError):
        build_app("nginx")


@pytest.mark.parametrize("workload", small_suite(), ids=lambda w: w.name)
def test_vanilla_output_valid(workload):
    pp = protected(workload)
    result = pp.run_vanilla(seed=5)
    assert workload.check_output(result.output), result.output
    assert result.fault is None
    assert not result.deadlocked


@pytest.mark.parametrize("workload", small_suite(), ids=lambda w: w.name)
def test_protected_output_valid(workload):
    pp = protected(workload)
    config = KivatiConfig(opt=OptLevel.OPTIMIZED, suspend_timeout_ns=10_000)
    report = pp.run(config, seed=5)
    assert workload.check_output(report.output), report.output
    assert not report.result.deadlocked


@pytest.mark.parametrize("workload", small_suite(), ids=lambda w: w.name)
def test_protection_costs_time_but_not_correctness(workload):
    pp = protected(workload)
    vanilla = pp.run_vanilla(seed=5)
    report = pp.run(
        KivatiConfig(opt=OptLevel.BASE, suspend_timeout_ns=10_000), seed=5
    )
    assert report.time_ns >= vanilla.time_ns
    assert workload.check_output(report.output)


def test_suite_scale_controls_work():
    small = {w.name: w for w in workload_suite(scale=0.15)}
    big = {w.name: w for w in workload_suite(scale=0.5)}
    pp_small = protected(small["NSS"])
    pp_big = ProtectedProgram(big["NSS"].source)
    r_small = pp_small.run_vanilla(seed=1)
    r_big = pp_big.run_vanilla(seed=1)
    assert r_big.instr_count > r_small.instr_count * 1.5


def test_all_builders_registered():
    assert set(APP_BUILDERS) == set(APP_NAMES)


def test_sync_vars_identified_in_apps():
    for workload in small_suite():
        pp = protected(workload)
        assert pp.sync_ar_ids, "%s has no sync-variable ARs" % workload.name
