"""Bug corpus tests."""

import pytest

from repro.bench.scale import corpus_config
from repro.core.config import Mode
from repro.core.session import ProtectedProgram
from repro.errors import WorkloadError
from repro.workloads.bugs import BUG_IDS, BUGS, get_bug
from repro.workloads.driver import detect_bug, manifestation_rate

_CACHE = {}


def protected(bug):
    pp = _CACHE.get(bug.bug_id)
    if pp is None:
        pp = ProtectedProgram(bug.source)
        _CACHE[bug.bug_id] = pp
    return pp


def test_corpus_has_eleven_bugs():
    assert len(BUGS) == 11
    apps = {bug.app for bug in BUGS.values()}
    assert apps == {"Apache", "NSS", "MySQL"}
    assert sum(1 for b in BUGS.values() if b.rare) == 3


def test_get_bug_lookup():
    assert get_bug("44402").app == "Apache"
    assert get_bug(19938).app == "MySQL"
    with pytest.raises(WorkloadError):
        get_bug("0")


@pytest.mark.parametrize("bug_id", BUG_IDS)
def test_bug_compiles_and_race_free_run_is_clean(bug_id):
    bug = BUGS[bug_id]
    pp = protected(bug)
    # single core, no preemption races in these small programs
    result = pp.run_vanilla(num_cores=1, seed=0)
    assert not bug.manifested(result), (result.output, result.fault)


@pytest.mark.parametrize("bug_id", BUG_IDS)
def test_patterns_cover_the_four_interleavings(bug_id):
    bug = BUGS[bug_id]
    assert bug.pattern in ("(R,W,R)", "(W,W,R)", "(W,R,W)", "(R,W,W)")


def test_all_four_interleaving_classes_present():
    patterns = {bug.pattern for bug in BUGS.values()}
    assert patterns == {"(R,W,R)", "(W,W,R)", "(W,R,W)", "(R,W,W)"}


@pytest.mark.parametrize("bug_id", ["19938", "341323", "270689"])
def test_bug_finding_mode_detects(bug_id):
    bug = BUGS[bug_id]
    result = detect_bug(
        bug,
        corpus_config(Mode.BUG_FINDING, pause_ms=20),
        max_attempts=20,
        protected=protected(bug),
    )
    assert result.detected
    assert result.records
    assert all(r.var in bug.victim_vars for r in result.records)


def test_detection_result_cell_format():
    bug = BUGS["19938"]
    result = detect_bug(
        bug,
        corpus_config(Mode.BUG_FINDING, pause_ms=20),
        max_attempts=20,
        protected=protected(bug),
    )
    cell = result.cell()
    assert cell == "-" or ":" in cell


def test_manifestation_rate_bounds():
    bug = BUGS["19938"]
    rate = manifestation_rate(bug, attempts=6, protected=protected(bug))
    assert 0.0 <= rate <= 1.0


def test_rare_bug_hides_from_prevention_mode():
    bug = BUGS["169296"]
    result = detect_bug(
        bug, corpus_config(Mode.PREVENTION),
        max_attempts=10, protected=protected(bug),
    )
    assert not result.detected


def test_victim_vars_exist_in_annotation():
    for bug in BUGS.values():
        pp = protected(bug)
        annotated_vars = {info.var for info in pp.ar_table.values()}
        base_vars = {v.lstrip("*") for v in bug.victim_vars}
        # at least one victim variable must carry an atomic region
        assert annotated_vars & (bug.victim_vars | base_vars), bug.bug_id
