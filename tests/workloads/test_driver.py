"""Driver helper tests: latency measurement and detection plumbing."""

import pytest

from repro.core.config import KivatiConfig, OptLevel
from repro.core.session import ProtectedProgram
from repro.workloads.apps.webstone import build_webstone
from repro.workloads.bugs import BUGS
from repro.workloads.driver import (
    DetectionResult,
    detect_bug,
    measure_latency,
)


def test_measure_latency_vanilla_vs_protected():
    workload = build_webstone(requests=8)
    pp = ProtectedProgram(workload.source)
    vanilla = measure_latency(workload, config=None, protected=pp)
    protected = measure_latency(
        workload,
        config=KivatiConfig(opt=OptLevel.OPTIMIZED,
                            suspend_timeout_ns=10_000),
        protected=pp,
    )
    assert vanilla.requests == workload.threads * 8
    assert vanilla.latency_ns > 0
    assert protected.latency_ns >= vanilla.latency_ns
    assert protected.workload == "Webstone"


def test_measure_latency_requires_request_count():
    from repro.workloads.base import Workload

    workload = Workload("X", "void main() {}", "", threads=1, requests=None)
    with pytest.raises(ValueError):
        measure_latency(workload)


def test_detection_result_fields_when_not_found():
    bug = BUGS["169296"]
    pp = ProtectedProgram(bug.source)
    result = detect_bug(
        bug,
        KivatiConfig(opt=OptLevel.OPTIMIZED, suspend_timeout_ns=10_000),
        max_attempts=2,
        protected=pp,
    )
    assert isinstance(result, DetectionResult)
    if not result.detected:
        assert result.cell() == "-"
        assert result.attempts == 2
        assert result.records == []
    assert result.time_ns > 0


def test_detection_accumulates_time_across_attempts():
    bug = BUGS["169296"]
    pp = ProtectedProgram(bug.source)
    one = detect_bug(bug, KivatiConfig(opt=OptLevel.OPTIMIZED,
                                       suspend_timeout_ns=10_000),
                     max_attempts=1, protected=pp)
    three = detect_bug(bug, KivatiConfig(opt=OptLevel.OPTIMIZED,
                                         suspend_timeout_ns=10_000),
                       max_attempts=3, protected=pp)
    if not one.detected and not three.detected:
        assert three.time_ns > one.time_ns
