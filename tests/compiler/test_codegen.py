"""Compiler + VM execution tests for the core language semantics."""

import pytest

from repro.compiler.codegen import compile_program
from repro.errors import CompileError, DivideByZero
from repro.machine.machine import Machine
from repro.minic.parser import parse


def run(src, **kwargs):
    program = compile_program(parse(src))
    machine = Machine(program, **kwargs)
    result = machine.run(raise_on_deadlock=True)
    return result


def outputs(src, **kwargs):
    return run(src, **kwargs).output


def test_arithmetic():
    assert outputs("""
    void main() {
        output(2 + 3 * 4);
        output((2 + 3) * 4);
        output(10 / 3);
        output(10 % 3);
        output(-5);
    }
    """) == [14, 20, 3, 1, -5]


def test_comparisons_and_logic():
    assert outputs("""
    void main() {
        output(1 < 2);
        output(2 <= 1);
        output(3 == 3);
        output(3 != 3);
        output(1 && 0);
        output(1 || 0);
        output(!0);
        output(!7);
    }
    """) == [1, 0, 1, 0, 0, 1, 1, 0]


def test_short_circuit_evaluation():
    # the right side would divide by zero if evaluated
    assert outputs("""
    void main() {
        int z = 0;
        output(0 && (1 / z));
        output(1 || (1 / z));
    }
    """) == [0, 1]


def test_division_by_zero_faults():
    result = run("void main() { int z = 0; output(1 / z); }")
    assert isinstance(result.fault, DivideByZero)


def test_globals_and_locals():
    assert outputs("""
    int g = 7;
    void main() {
        int x = g + 1;
        g = x * 2;
        output(g);
    }
    """) == [16]


def test_global_arrays():
    assert outputs("""
    int a[5];
    void main() {
        int i = 0;
        while (i < 5) {
            a[i] = i * i;
            i = i + 1;
        }
        output(a[0] + a[1] + a[2] + a[3] + a[4]);
    }
    """) == [30]


def test_local_arrays():
    assert outputs("""
    void main() {
        int a[3];
        a[0] = 1;
        a[1] = 2;
        a[2] = a[0] + a[1];
        output(a[2]);
    }
    """) == [3]


def test_pointers_and_addrof():
    assert outputs("""
    int g = 5;
    void main() {
        int *p = &g;
        *p = *p + 1;
        output(g);
        int x = 10;
        p = &x;
        *p = 77;
        output(x);
    }
    """) == [6, 77]


def test_pointer_into_array():
    assert outputs("""
    int a[4];
    void main() {
        int *p = &a[1];
        *p = 42;
        output(a[1]);
        output(p[1] + a[2]);
    }
    """) == [42, 0]


def test_function_calls_and_returns():
    assert outputs("""
    int add(int x, int y) { return x + y; }
    int fib(int n) {
        if (n < 2) { return n; }
        return add(fib(n - 1), fib(n - 2));
    }
    void main() { output(fib(10)); }
    """) == [55]


def test_by_reference_params():
    assert outputs("""
    void set(int *out, int v) { *out = v; }
    void main() {
        int r = 0;
        set(&r, 9);
        output(r);
    }
    """) == [9]


def test_temporaries_survive_calls():
    # register windows: a live temporary must not be clobbered by a call
    assert outputs("""
    int f(int x) { int t = x * 100; return t; }
    void main() { output(5 + f(2) + 3); }
    """) == [208]


def test_while_break_continue():
    assert outputs("""
    void main() {
        int i = 0;
        int total = 0;
        while (1) {
            i = i + 1;
            if (i > 10) { break; }
            if (i % 2 == 0) { continue; }
            total = total + i;
        }
        output(total);
    }
    """) == [25]


def test_for_loop():
    assert outputs("""
    void main() {
        int total = 0;
        for (int_unused = 0; 0; ) {}
        int i;
        for (i = 0; i < 5; i = i + 1) { total = total + i; }
        output(total);
    }
    """.replace("for (int_unused = 0; 0; ) {}", "")) == [10]


def test_alloc_builtin():
    assert outputs("""
    void main() {
        int *p = alloc(3);
        p[0] = 5;
        p[2] = 7;
        int *q = alloc(1);
        *q = p[0] + p[2];
        output(*q);
    }
    """) == [12]


def test_rand_is_deterministic_and_bounded():
    out1 = outputs("""
    void main() {
        int i = 0;
        while (i < 20) { output(rand(10)); i = i + 1; }
    }
    """, seed=5)
    out2 = outputs("""
    void main() {
        int i = 0;
        while (i < 20) { output(rand(10)); i = i + 1; }
    }
    """, seed=5)
    assert out1 == out2
    assert all(0 <= v < 10 for v in out1)


def test_tid_builtin():
    assert outputs("void main() { output(tid()); }") == [0]


def test_cas_builtin():
    assert outputs("""
    int g = 5;
    void main() {
        output(cas(&g, 5, 9));
        output(g);
        output(cas(&g, 5, 11));
        output(g);
    }
    """) == [1, 9, 0, 9]


def test_atomic_add_returns_old():
    assert outputs("""
    int g = 10;
    void main() {
        output(atomic_add(&g, 5));
        output(g);
    }
    """) == [10, 15]


def test_copyword_builtin():
    assert outputs("""
    int a = 3;
    int b = 0;
    void main() {
        copyword(&b, &a);
        output(b);
    }
    """) == [3]


def test_funcref_and_invoke():
    assert outputs("""
    int hook;
    void handler() { output(99); }
    void main() {
        hook = funcref(handler);
        invoke(&hook);
    }
    """) == [99]


def test_deep_expression_raises_compile_error():
    expr = "1" + " + (2" * 20 + ")" * 20
    with pytest.raises(CompileError):
        compile_program(parse("void main() { int x = %s; }" % expr))


def test_spawn_join_basic():
    result = run("""
    int done = 0;
    void child(int v) { atomic_add(&done, v); }
    void main() {
        spawn child(3);
        spawn child(4);
        join();
        output(done);
    }
    """)
    assert result.output == [7]
    assert result.threads == 3


def test_spawn_passes_args_by_value():
    assert outputs("""
    int r1 = 0;
    int r2 = 0;
    void child(int a, int b, int *out) { *out = a * 10 + b; }
    void main() {
        spawn child(1, 2, &r1);
        spawn child(3, 4, &r2);
        join();
        output(r1);
        output(r2);
    }
    """) == [12, 34]


def test_locks_provide_mutual_exclusion():
    result = run("""
    int m = 0;
    int counter = 0;
    void worker(int n) {
        int i = 0;
        while (i < n) {
            lock(&m);
            int t = counter;
            counter = t + 1;
            unlock(&m);
            i = i + 1;
        }
    }
    void main() {
        spawn worker(200);
        spawn worker(200);
        join();
        output(counter);
    }
    """, num_cores=2)
    assert result.output == [400]


def test_sleep_orders_events():
    assert outputs("""
    void late() { sleep(100000); output(2); }
    void early() { output(1); }
    void main() {
        spawn late();
        spawn early();
        join();
        output(3);
    }
    """) == [1, 2, 3]
