"""Disassembler and program-image tests."""

from repro.compiler.codegen import compile_program
from repro.compiler.disasm import disassemble, format_instr
from repro.compiler.bytecode import Instr, Op
from repro.compiler.program import GLOBALS_BASE
from repro.minic.parser import parse

SRC = """
int g = 3;
int a[4];
int add2(int x, int y) { return x + y; }
void main() {
    g = add2(g, a[1]);
    output(g);
}
"""


def test_disassemble_lists_every_instruction():
    program = compile_program(parse(SRC))
    text = disassemble(program)
    lines = [l for l in text.splitlines() if ":" in l and not l.endswith(":")]
    assert len(lines) == len(program.instrs)
    assert "main:" in text
    assert "add2:" in text


def test_format_instr_variants():
    assert format_instr(Instr(Op.LI, 2, 7)) == "li r2, 7"
    assert format_instr(Instr(Op.LD, 1, 2)) == "ld r1, [r2]"
    assert format_instr(Instr(Op.ST, 1, 2)) == "st [r1], r2"
    assert format_instr(Instr(Op.ADD, 0, 1, 2)) == "add r0, r1, r2"
    assert format_instr(Instr(Op.BEGINAT, 5, 3)) == "beginat ar5, [r3]"
    assert format_instr(Instr(Op.CLEARAR)) == "clearar"
    assert "cas r0" in format_instr(Instr(Op.CAS, 0, 1, 2, 3))


def test_global_layout_sequential():
    program = compile_program(parse(SRC))
    assert program.global_addr("g") == GLOBALS_BASE
    assert program.global_addr("a") == GLOBALS_BASE + 1
    assert program.globals_end == GLOBALS_BASE + 5
    assert program.global_inits[GLOBALS_BASE] == 3


def test_location_reports_function_and_line():
    program = compile_program(parse(SRC))
    entry = program.func("add2").entry
    loc = program.location(entry)
    assert loc.startswith("add2+0")
    assert program.func_at(entry).name == "add2"
    assert program.location(10_000) == "pc=10000"


def test_function_indices_match_table():
    program = compile_program(parse(SRC))
    for index, image in enumerate(program.func_by_index):
        assert program.func_index(image.name) == index
        assert image.entry <= image.end
