"""Chaos suite: every built-in fault schedule, three seeds each, plus
the zero-overhead-when-disabled guarantee."""

import pytest

from repro.core.session import ProtectedProgram
from repro.faults.chaos import (
    CHAOS_SRC,
    DEFAULT_SEEDS,
    builtin_schedules,
    default_config,
    run_chaos_case,
    run_chaos_suite,
)
from repro.faults.plan import INJECTION_POINTS, FaultPlan, FaultSpec


@pytest.fixture(scope="module")
def chaos_program():
    return ProtectedProgram(CHAOS_SRC)


def test_builtin_schedules_cover_every_injection_point():
    covered = set()
    for schedule in builtin_schedules():
        covered.update(schedule.plan.points())
    # journal.crash kills the session by design, so it cannot appear in a
    # degradation schedule; the recovery tests exercise it instead
    assert covered == set(INJECTION_POINTS) - {"journal.crash"}
    assert len(builtin_schedules()) >= 8
    assert len(DEFAULT_SEEDS) >= 3


def test_full_chaos_suite_holds_all_invariants(chaos_program):
    report = run_chaos_suite(program=chaos_program)
    assert report.ok, report.describe()
    # every schedule ran on every seed
    assert len(report.cases) == len(builtin_schedules()) * len(DEFAULT_SEEDS)
    # the suite exercised real injections, not a vacuous pass
    assert sum(case.fired for case in report.cases) > 0


def test_chaos_case_is_deterministic_across_harness_calls(chaos_program):
    schedule = builtin_schedules()[0]
    cfg = default_config()
    first = run_chaos_case(chaos_program, schedule.plan, 2, cfg)
    second = run_chaos_case(chaos_program, schedule.plan, 2, cfg)
    assert first.ok and second.ok
    assert ([f.as_tuple() for f in first.report.injected]
            == [f.as_tuple() for f in second.report.injected])
    assert first.report.result.time_ns == second.report.result.time_ns
    assert first.report.stats.as_dict() == second.report.stats.as_dict()


def test_different_seeds_give_different_schedules(chaos_program):
    plan = FaultPlan("p", [FaultSpec("machine.trap.drop", probability=0.5)])
    cfg = default_config()
    runs = {}
    for seed in (1, 2, 3, 4):
        report = chaos_program.run(cfg.copy(faults=plan, seed=seed))
        runs[seed] = tuple(f.as_tuple() for f in report.injected)
    # at least two distinct fault schedules across four seeds
    assert len(set(runs.values())) >= 2


def test_empty_plan_is_bit_identical_to_no_plan(chaos_program):
    """Zero overhead when disabled: an injector with an empty plan must
    not perturb the run in any observable way."""
    cfg = default_config()
    plain = chaos_program.run(cfg.copy(seed=1))
    empty = chaos_program.run(cfg.copy(faults=FaultPlan("empty", []), seed=1))
    assert empty.result.time_ns == plain.result.time_ns
    assert empty.result.output == plain.result.output
    assert empty.result.final_globals == plain.result.final_globals
    assert empty.stats.as_dict() == plain.stats.as_dict()
    assert empty.injected == []
    assert len(empty.degradations) == 0


def test_chaos_suite_never_deadlocks_or_faults(chaos_program):
    report = run_chaos_suite(program=chaos_program)
    for case in report.cases:
        assert case.report.result.fault is None
        assert not case.report.result.deadlocked


def test_chaos_bench_generates_and_holds(chaos_program):
    from repro.bench.chaosbench import generate

    result = generate(seeds=(1,))
    assert result.check() == []
    rendered = result.render()
    assert "Chaos bench" in rendered
    # one row per built-in schedule
    assert len(result.rows) == len(builtin_schedules())


def test_all_firing_runs_leave_audit_trail(chaos_program):
    """Any run that diverges from its baseline has injected events on
    record (no silent divergence)."""
    report = run_chaos_suite(program=chaos_program)
    for case in report.cases:
        base = case.baseline.result
        res = case.report.result
        diverged = (res.output != base.output
                    or res.final_globals != base.final_globals
                    or res.time_ns != base.time_ns)
        if diverged:
            assert case.report.injected, case.describe()
