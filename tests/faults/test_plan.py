"""Unit tests for the fault-injection plan and decision engine."""

import pytest

from repro.errors import FaultPlanError
from repro.faults.plan import (
    INJECTION_POINTS,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    _fnv1a,
)


def test_injection_points_cover_all_layers():
    layers = {point.split(".")[0] for point in INJECTION_POINTS}
    assert layers == {"machine", "kernel", "runtime", "journal"}
    assert len(INJECTION_POINTS) >= 8


def test_spec_rejects_unknown_point():
    with pytest.raises(FaultPlanError):
        FaultSpec("machine.trap.explode")


def test_spec_rejects_bad_probability():
    with pytest.raises(FaultPlanError):
        FaultSpec("machine.trap.drop", probability=1.5)
    with pytest.raises(FaultPlanError):
        FaultSpec("machine.trap.drop", probability=-0.1)


def test_spec_rejects_negative_max_fires():
    with pytest.raises(FaultPlanError):
        FaultSpec("machine.trap.drop", max_fires=-1)


def test_plan_rejects_duplicate_points():
    with pytest.raises(FaultPlanError):
        FaultPlan("dup", [FaultSpec("machine.trap.drop"),
                          FaultSpec("machine.trap.drop", probability=0.5)])


def test_fnv1a_is_stable():
    # must not depend on PYTHONHASHSEED: pin a known vector
    assert _fnv1a("machine.trap.drop") == _fnv1a("machine.trap.drop")
    assert _fnv1a("a") != _fnv1a("b")
    assert _fnv1a("") == 0x811C9DC5


def test_certain_fault_fires_every_opportunity():
    plan = FaultPlan("p", [FaultSpec("machine.trap.drop", probability=1.0)])
    inj = FaultInjector(plan, seed=7)
    assert all(inj.fires("machine.trap.drop") for _ in range(10))
    assert inj.fired_count("machine.trap.drop") == 10


def test_unscheduled_point_never_fires_and_costs_nothing():
    plan = FaultPlan("p", [FaultSpec("machine.trap.drop")])
    inj = FaultInjector(plan, seed=0)
    assert not inj.active("kernel.undo.fail")
    assert not inj.fires("kernel.undo.fail")
    assert inj.fired_count() == 0
    assert inj.injected == []


def test_max_fires_caps_injections():
    plan = FaultPlan("p", [FaultSpec("machine.trap.drop", max_fires=3)])
    inj = FaultInjector(plan)
    results = [inj.fires("machine.trap.drop") for _ in range(10)]
    assert results == [True] * 3 + [False] * 7


def test_start_after_skips_early_opportunities():
    plan = FaultPlan("p", [FaultSpec("machine.trap.drop", start_after=4)])
    inj = FaultInjector(plan)
    results = [inj.fires("machine.trap.drop") for _ in range(6)]
    assert results == [False] * 4 + [True] * 2


def test_probabilistic_decisions_are_seed_deterministic():
    plan = FaultPlan("p", [FaultSpec("machine.trap.drop", probability=0.4)])

    def decisions(seed):
        inj = FaultInjector(plan, seed=seed)
        return [inj.fires("machine.trap.drop") for _ in range(200)]

    first = decisions(11)
    assert first == decisions(11)
    assert first != decisions(12)
    # unbiased enough that both outcomes occur
    assert any(first) and not all(first)


def test_probability_roughly_respected():
    plan = FaultPlan("p", [FaultSpec("machine.trap.drop", probability=0.3)])
    inj = FaultInjector(plan, seed=5)
    fired = sum(inj.fires("machine.trap.drop") for _ in range(2000))
    assert 0.2 < fired / 2000 < 0.4


def test_injected_records_carry_detail_and_identity():
    plan = FaultPlan("p", [FaultSpec("machine.trap.drop")])
    inj = FaultInjector(plan)
    inj.fires("machine.trap.drop", now_ns=123, tid=4)
    (rec,) = inj.injected
    assert rec.point == "machine.trap.drop"
    assert rec.time_ns == 123
    assert rec.detail == {"tid": 4}
    assert rec.as_tuple() == ("machine.trap.drop", 0, 123, (("tid", 4),))
    assert "machine.trap.drop" in rec.describe()


def test_param_lookup_with_default():
    plan = FaultPlan("p", [FaultSpec("machine.timer.jitter",
                                     param={"jitter_ns": 5000})])
    inj = FaultInjector(plan)
    assert inj.param("machine.timer.jitter", "jitter_ns") == 5000
    assert inj.param("machine.timer.jitter", "missing", 9) == 9
    assert inj.param("machine.trap.drop", "jitter_ns", 7) == 7
