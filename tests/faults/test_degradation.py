"""Graceful-degradation policies: circuit breaker, suspension watchdog,
replica resync, lost-wakeup recovery, whitelist hardening."""

import os

from repro.core.config import KivatiConfig, Mode, OptLevel
from repro.faults.breaker import BreakerPolicy, CircuitBreaker
from repro.faults.plan import FaultPlan, FaultSpec
from repro.runtime.whitelist import Whitelist


def config(**kwargs):
    kwargs.setdefault("opt", OptLevel.BASE)
    kwargs.setdefault("mode", Mode.PREVENTION)
    return KivatiConfig(**kwargs)


LOST_UPDATE_SRC = """
int x = 0;

void local_thread() {
    int t = x;
    sleep(50000);
    x = t + 1;
}

void remote_thread() {
    sleep(20000);
    x = 99;
}

void main() {
    spawn local_thread();
    spawn remote_thread();
    join();
    output(x);
}
"""


# ----------------------------------------------------------------------
# circuit breaker (unit)
# ----------------------------------------------------------------------

def test_breaker_trips_after_timeout_threshold():
    br = CircuitBreaker(BreakerPolicy(timeout_threshold=3))
    assert br.record_timeout(7, 100) is None
    assert br.record_timeout(7, 200) is None
    backoff = br.record_timeout(7, 300)
    assert backoff == br.policy.base_backoff_ns
    assert br.trips() == 1
    assert not br.allows(7, 300)
    assert br.open_ars(300) == [7]


def test_breaker_closes_after_backoff_window():
    br = CircuitBreaker(BreakerPolicy(timeout_threshold=1,
                                      base_backoff_ns=1000))
    br.record_timeout(1, 0)
    assert not br.allows(1, 999)
    assert br.allows(1, 1000)
    # closed again: other ARs were never affected
    assert br.allows(2, 0)


def test_breaker_backoff_doubles_and_caps():
    br = CircuitBreaker(BreakerPolicy(timeout_threshold=1,
                                      base_backoff_ns=1000,
                                      max_backoff_ns=4000))
    backoffs = [br.record_timeout(1, t * 100_000) for t in range(5)]
    assert backoffs == [1000, 2000, 4000, 4000, 4000]


def test_breaker_trap_threshold():
    br = CircuitBreaker(BreakerPolicy(trap_threshold=4))
    for i in range(3):
        assert br.record_trap(9, i) is None
    assert br.record_trap(9, 3) is not None
    assert not br.allows(9, 3)


def test_breaker_counters_reset_on_trip():
    br = CircuitBreaker(BreakerPolicy(timeout_threshold=2,
                                      base_backoff_ns=10))
    br.record_timeout(5, 0)
    br.record_timeout(5, 1)          # trip #1
    assert br.allows(5, 100)         # window expired, breaker closed
    assert br.record_timeout(5, 101) is None   # fresh count after trip
    assert br.record_timeout(5, 102) is not None


# ----------------------------------------------------------------------
# circuit breaker (end to end)
# ----------------------------------------------------------------------

BREAKER_SRC = """
int x = 0;

void holder() {
    int i = 0;
    while (i < 12) {
        int t = x;
        sleep(2000);
        x = t + 1;
        i = i + 1;
    }
}

void contender() {
    int k = 0;
    while (k < 12) {
        sleep(300);
        x = x + 10;
        k = k + 1;
    }
}

void main() {
    spawn holder();
    spawn contender();
    join();
    output(x);
}
"""


def test_breaker_trips_end_to_end_on_repeated_timeouts(protect):
    pp = protect(BREAKER_SRC)
    cfg = config(suspend_timeout_ns=200, seed=1)
    report = pp.run(cfg)
    assert report.result.fault is None and not report.result.deadlocked
    assert report.stats.suspend_timeouts >= 3
    assert report.stats.breaker_trips >= 1
    assert report.stats.breaker_skips >= 1
    kinds = set(report.degradations.kinds())
    assert "breaker-open" in kinds and "breaker-skip" in kinds
    assert report.degraded


def test_breaker_disabled_never_skips(protect):
    pp = protect(BREAKER_SRC)
    report = pp.run(config(suspend_timeout_ns=200, seed=1, breaker=False))
    assert report.stats.breaker_trips == 0
    assert report.stats.breaker_skips == 0


def test_breaker_custom_policy_accepted(protect):
    pp = protect(BREAKER_SRC)
    policy = BreakerPolicy(timeout_threshold=1, base_backoff_ns=500)
    report = pp.run(config(suspend_timeout_ns=200, seed=1, breaker=policy))
    assert report.stats.breaker_trips >= 1


# ----------------------------------------------------------------------
# suspension watchdog
# ----------------------------------------------------------------------

# Two threads each holding an AR while beginning one on the other's
# variable: a cyclic mutual suspension that only the 10 ms timeout (or
# the watchdog) can break.
MUTUAL_SUSPEND_SRC = """
int x = 0;
int y = 0;

void alice() {
    int t = x;
    sleep(1000);
    int u = y;
    sleep(1000);
    y = u + 1;
    x = t + 1;
}

void bob() {
    int u = y;
    sleep(1000);
    int t = x;
    sleep(1000);
    x = t + 5;
    y = u + 5;
}

void main() {
    spawn alice();
    spawn bob();
    join();
    output(x);
    output(y);
}
"""


def test_watchdog_breaks_mutual_suspension_cycle(protect):
    pp = protect(MUTUAL_SUSPEND_SRC)
    report = pp.run(config(seed=1, watchdog=True))
    assert report.result.fault is None and not report.result.deadlocked
    assert report.stats.watchdog_breaks >= 1
    assert "watchdog-break" in set(report.degradations.kinds())
    # broken immediately, not after the 10 ms timeout
    assert report.result.time_ns < 1_000_000


def test_without_watchdog_timeout_plane_still_recovers(protect):
    pp = protect(MUTUAL_SUSPEND_SRC)
    report = pp.run(config(seed=1, watchdog=False))
    assert report.result.fault is None and not report.result.deadlocked
    assert report.stats.watchdog_breaks == 0
    assert report.stats.suspend_timeouts >= 1
    assert report.result.time_ns >= 10_000_000


# ----------------------------------------------------------------------
# replica resync, lost wake-ups, undo failure, duplicate traps
# ----------------------------------------------------------------------

def _fault_run(pp, point, seed=1, **cfg_kwargs):
    plan = FaultPlan("one-point", [FaultSpec(point, probability=1.0)])
    return pp.run(config(faults=plan, seed=seed, **cfg_kwargs))


def test_crosscore_lost_triggers_resync(protect):
    from repro.faults.chaos import CHAOS_SRC
    pp = protect(CHAOS_SRC)
    report = _fault_run(pp, "kernel.crosscore.lost")
    assert report.result.fault is None and not report.result.deadlocked
    assert report.stats.replica_resyncs >= 1
    assert "replica-resync" in set(report.degradations.kinds())


def test_dr_slot_failure_repaired_by_consistency_check(protect):
    from repro.faults.chaos import CHAOS_SRC
    pp = protect(CHAOS_SRC)
    report = _fault_run(pp, "machine.dr.slot_fail")
    assert report.result.fault is None and not report.result.deadlocked
    assert report.stats.replica_resyncs >= 1


def test_lost_wakeup_recovered_by_timeout(protect):
    from repro.faults.chaos import CHAOS_SRC
    pp = protect(CHAOS_SRC)
    report = _fault_run(pp, "kernel.wakeup.lost")
    assert report.result.fault is None and not report.result.deadlocked
    assert report.stats.suspend_timeouts >= 1
    assert "suspend-timeout" in set(report.degradations.kinds())


def test_forced_undo_failure_degrades_visibly(protect):
    from repro.faults.chaos import CHAOS_SRC
    pp = protect(CHAOS_SRC)
    report = _fault_run(pp, "kernel.undo.fail")
    assert report.result.fault is None and not report.result.deadlocked
    assert report.stats.undo_faults_injected >= 1
    assert report.stats.undos == 0
    assert "undo-failed" in set(report.degradations.kinds())


def test_duplicate_trap_delivery_is_deduplicated(protect):
    from repro.faults.chaos import CHAOS_SRC
    pp = protect(CHAOS_SRC)
    baseline = pp.run(config(seed=1))
    report = _fault_run(pp, "machine.trap.duplicate")
    assert report.result.fault is None and not report.result.deadlocked
    assert report.stats.duplicate_traps_ignored >= 1
    # dedup means the duplicated deliveries change nothing semantically
    assert report.result.output == baseline.result.output
    assert report.result.final_globals == baseline.result.final_globals


def test_dropped_traps_lose_prevention_but_are_attributed(protect):
    pp = protect(LOST_UPDATE_SRC)
    baseline = pp.run(config(seed=1))
    assert baseline.result.output == [99]   # prevention works fault-free
    report = _fault_run(pp, "machine.trap.drop")
    assert report.result.fault is None and not report.result.deadlocked
    # the divergence is on record: the injected events name the drops
    assert any(f.point == "machine.trap.drop" for f in report.injected)


# ----------------------------------------------------------------------
# whitelist hardening
# ----------------------------------------------------------------------

def test_whitelist_skips_malformed_lines(tmp_path):
    path = tmp_path / "wl"
    path.write_text("1\ngarbage\n2\n# comment\n  \n3x\n4\n")
    wl = Whitelist(path=str(path))
    assert wl.ids == {1, 2, 4}
    assert wl.malformed_lines == 2
    assert wl.read_errors == 0


def test_whitelist_keeps_previous_set_on_read_error(tmp_path):
    path = tmp_path / "wl"
    path.write_text("1\n2\n")
    wl = Whitelist(path=str(path), reread_interval_ns=100)
    assert wl.ids == {1, 2}
    # replace the file with an unreadable directory to force OSError
    os.unlink(str(path))
    os.mkdir(str(path))
    assert wl.maybe_reread(200)
    assert wl.ids == {1, 2}
    assert wl.read_errors == 1


def test_whitelist_missing_file_is_not_an_error(tmp_path):
    wl = Whitelist(path=str(tmp_path / "absent"), reread_interval_ns=10)
    assert wl.ids == set()
    assert wl.read_errors == 0
    assert wl.maybe_reread(100)
    assert wl.read_errors == 0


def test_whitelist_retry_backoff_is_bounded(tmp_path):
    path = tmp_path / "wl"
    path.write_text("1\n")
    wl = Whitelist(path=str(path), reread_interval_ns=1000,
                   max_retries=3, retry_backoff_ns=10)
    os.unlink(str(path))
    os.mkdir(str(path))
    now = 1000
    assert wl.maybe_reread(now)           # scheduled failure
    assert wl.read_errors == 1
    # retries come at exponentially growing offsets, then stop
    attempts = 0
    for t in range(now + 1, now + 1000):
        if wl.maybe_reread(t):
            attempts += 1
    assert attempts == wl.max_retries
    assert wl.retries == wl.max_retries
    # after giving up, the next regular interval tries again
    assert wl.maybe_reread(now + 1000 + 1000)


def test_whitelist_recovers_after_transient_error(tmp_path):
    path = tmp_path / "wl"
    path.write_text("1\n")
    wl = Whitelist(path=str(path), reread_interval_ns=100,
                   retry_backoff_ns=10)
    os.unlink(str(path))
    os.mkdir(str(path))
    wl.maybe_reread(100)
    assert wl.read_errors == 1
    os.rmdir(str(path))
    path.write_text("1\n5\n")
    wl.maybe_reread(110)                  # backed-off retry succeeds
    assert wl.ids == {1, 5}
    assert wl._consecutive_errors == 0


def test_whitelist_write_file_is_atomic(tmp_path):
    path = str(tmp_path / "wl")
    Whitelist.write_file(path, {3, 1, 2}, comment="trained")
    with open(path) as f:
        lines = f.read().splitlines()
    assert lines == ["# trained", "1", "2", "3"]
    assert not os.path.exists(path + ".tmp")
    wl = Whitelist(path=path)
    assert wl.ids == {1, 2, 3}


def test_whitelist_corruption_fault_surfaces_in_report(protect, tmp_path):
    from repro.faults.chaos import CHAOS_SRC
    wl_path = tmp_path / "wl"
    wl_path.write_text("# empty\n")
    pp = protect(CHAOS_SRC)
    plan = FaultPlan("wl", [FaultSpec("runtime.whitelist.corrupt")])
    report = pp.run(config(faults=plan, seed=1,
                           whitelist_path=str(wl_path),
                           whitelist_reread_ns=2000))
    assert report.result.fault is None and not report.result.deadlocked
    assert report.stats.whitelist_read_errors >= 1
    assert "whitelist-read-error" in set(report.degradations.kinds())


# ----------------------------------------------------------------------
# report surface
# ----------------------------------------------------------------------

def test_degradations_appear_in_summary(protect):
    pp = protect(MUTUAL_SUSPEND_SRC)
    report = pp.run(config(seed=1, watchdog=True))
    assert report.degraded
    assert "degradations=" in report.summary()


def test_clean_run_reports_no_degradation(protect):
    pp = protect(LOST_UPDATE_SRC)
    report = pp.run(config(seed=1))
    assert not report.degraded
    assert len(report.degradations) == 0
    assert report.injected == []
