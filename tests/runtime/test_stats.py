"""Runtime statistics tests."""

from repro.runtime.stats import KivatiStats


def test_fresh_stats_zeroed():
    stats = KivatiStats()
    assert all(v == 0 for v in stats.as_dict().values())
    assert stats.crossings() == 0
    assert stats.missed_fraction() == 0.0


def test_crossings_sum():
    stats = KivatiStats()
    stats.begin_syscalls = 5
    stats.end_syscalls = 3
    stats.clear_syscalls = 2
    stats.traps = 4
    assert stats.crossings() == 14


def test_missed_fraction():
    stats = KivatiStats()
    stats.monitored_ars = 95
    stats.missed_ars = 5
    assert stats.total_ars_executed() == 100
    assert abs(stats.missed_fraction() - 0.05) < 1e-9


def test_as_dict_covers_all_fields():
    stats = KivatiStats()
    assert set(stats.as_dict()) == set(KivatiStats.FIELDS)


# ----------------------------------------------------------------------
# merge / round-trip (fleet aggregation contract)
# ----------------------------------------------------------------------

def _stats_with(offset):
    """A stats object with a distinct nonzero value in *every* field, so
    a counter skipped by merge/round-trip cannot hide."""
    stats = KivatiStats()
    for index, name in enumerate(KivatiStats.FIELDS):
        setattr(stats, name, offset + index)
    return stats


def test_as_dict_from_dict_round_trip_every_field():
    stats = _stats_with(100)
    clone = KivatiStats.from_dict(stats.as_dict())
    for name in KivatiStats.FIELDS:
        assert getattr(clone, name) == getattr(stats, name), name
    assert clone == stats


def test_from_dict_rejects_unknown_fields():
    import pytest

    with pytest.raises(ValueError):
        KivatiStats.from_dict({"traps": 1, "not_a_counter": 2})


def test_merge_adds_every_field():
    a = _stats_with(10)
    b = _stats_with(1000)
    merged = KivatiStats.from_dict(a.as_dict()).merge(b)
    for name in KivatiStats.FIELDS:
        assert getattr(merged, name) == getattr(a, name) + getattr(b, name), \
            name


def test_merge_accepts_dict_and_returns_self():
    a = _stats_with(1)
    result = a.merge(_stats_with(5).as_dict())
    assert result is a
    assert a.traps == _stats_with(1).traps + _stats_with(5).traps


def test_merge_with_zero_is_identity():
    a = _stats_with(7)
    before = a.as_dict()
    a.merge(KivatiStats())
    assert a.as_dict() == before


def test_merge_is_commutative():
    left = _stats_with(3).merge(_stats_with(40))
    right = _stats_with(40).merge(_stats_with(3))
    assert left == right
