"""Runtime statistics tests."""

from repro.runtime.stats import KivatiStats


def test_fresh_stats_zeroed():
    stats = KivatiStats()
    assert all(v == 0 for v in stats.as_dict().values())
    assert stats.crossings() == 0
    assert stats.missed_fraction() == 0.0


def test_crossings_sum():
    stats = KivatiStats()
    stats.begin_syscalls = 5
    stats.end_syscalls = 3
    stats.clear_syscalls = 2
    stats.traps = 4
    assert stats.crossings() == 14


def test_missed_fraction():
    stats = KivatiStats()
    stats.monitored_ars = 95
    stats.missed_ars = 5
    assert stats.total_ars_executed() == 100
    assert abs(stats.missed_fraction() - 0.05) < 1e-9


def test_as_dict_covers_all_fields():
    stats = KivatiStats()
    assert set(stats.as_dict()) == set(KivatiStats.FIELDS)
