"""Whitelist shard-merge utility tests (fleet federated training)."""

import os

from hypothesis import given, settings, strategies as st

from repro.runtime.whitelist import (Whitelist, merge_whitelist_files,
                                     read_whitelist_ids)


def _write_shard(tmp_path, name, ids, extra_lines=()):
    path = str(tmp_path / name)
    Whitelist.write_file(path, ids)
    if extra_lines:
        with open(path, "a") as f:
            for line in extra_lines:
                f.write(line + "\n")
    return path


def test_merge_is_union(tmp_path):
    a = _write_shard(tmp_path, "a", {1, 2, 3})
    b = _write_shard(tmp_path, "b", {3, 4})
    out = str(tmp_path / "merged")
    result = merge_whitelist_files(out, [a, b])
    assert result.ok
    assert result.ids == {1, 2, 3, 4}
    assert read_whitelist_ids(out) == ({1, 2, 3, 4}, 0, True)


def test_merge_order_independent(tmp_path):
    paths = [_write_shard(tmp_path, "s%d" % i, ids)
             for i, ids in enumerate(({5, 6}, {6, 7}, {8}))]
    forward = merge_whitelist_files(None, paths)
    backward = merge_whitelist_files(None, list(reversed(paths)))
    assert forward.ids == backward.ids


def test_merge_tolerates_malformed_lines(tmp_path):
    a = _write_shard(tmp_path, "a", {1},
                     extra_lines=["garbage", "4  # trailing comment", "7x"])
    out = str(tmp_path / "merged")
    result = merge_whitelist_files(out, [a])
    assert result.ids == {1, 4}
    assert result.malformed_lines == 2
    assert result.ok


def test_merge_records_unreadable_shards(tmp_path):
    a = _write_shard(tmp_path, "a", {1})
    unreadable = str(tmp_path / "locked")
    with open(unreadable, "w") as f:
        f.write("2\n")
    os.chmod(unreadable, 0)
    try:
        result = merge_whitelist_files(None, [a, unreadable])
    finally:
        os.chmod(unreadable, 0o644)
    if os.getuid() == 0:
        # root reads through mode 000; the unreadable path is untestable
        assert result.ok
    else:
        assert not result.ok
        assert result.unreadable == (unreadable,)
        assert result.ids == {1}


def test_missing_shard_is_empty_not_error(tmp_path):
    a = _write_shard(tmp_path, "a", {9})
    result = merge_whitelist_files(None, [a, str(tmp_path / "nope")])
    assert result.ok
    assert result.ids == {9}


def test_merge_write_is_atomic(tmp_path):
    out = str(tmp_path / "merged")
    a = _write_shard(tmp_path, "a", {1, 2})
    merge_whitelist_files(out, [a])
    # no temp file left behind; the rename completed
    assert not os.path.exists(out + ".tmp")
    assert read_whitelist_ids(out)[0] == {1, 2}


def test_initial_ids_survive_merge(tmp_path):
    a = _write_shard(tmp_path, "a", {2})
    result = merge_whitelist_files(None, [a], initial={1})
    assert result.ids == {1, 2}


@settings(max_examples=30, deadline=None)
@given(shards=st.lists(st.sets(st.integers(min_value=0, max_value=50)),
                       min_size=1, max_size=5))
def test_property_merge_equals_serial_union(tmp_path_factory, shards):
    """merge(shard files) == the whitelist serial training would build
    from the same observation sets, for any partitioning."""
    tmp = tmp_path_factory.mktemp("shards")
    paths = []
    for index, ids in enumerate(shards):
        path = str(tmp / ("shard-%d" % index))
        Whitelist.write_file(path, ids)
        paths.append(path)
    serial = set()
    for ids in shards:
        serial |= ids
    merged = merge_whitelist_files(str(tmp / "merged"), paths)
    assert merged.ids == serial
    assert read_whitelist_ids(str(tmp / "merged"))[0] == serial
