"""User-space library crossing-decision tests (the heart of Section 3.4).

These tests pin down exactly when each configuration enters the kernel.
"""

from repro.core.config import KivatiConfig, OptLevel, OptimizationConfig
from repro.core.session import ProtectedProgram

SINGLE_AR = """
int x = 0;
void main() {
    int t = x;
    x = t + 1;
}
"""

REPEATED_ARS = """
int x = 0;
void bump() {
    int t = x;
    x = t + 1;
}
void main() {
    int i = 0;
    while (i < 10) {
        bump();
        i = i + 1;
    }
}
"""


def run(src, opt, seed=0):
    pp = ProtectedProgram(src)
    return pp, pp.run(KivatiConfig(opt=opt), seed=seed)


def test_base_crosses_on_every_annotation():
    pp, report = run(SINGLE_AR, OptLevel.BASE)
    stats = report.stats
    assert stats.begin_syscalls == stats.begin_calls
    assert stats.end_syscalls == stats.end_calls
    assert stats.clear_syscalls == stats.clear_calls


def test_null_syscall_crosses_but_never_monitors():
    pp, report = run(SINGLE_AR, OptLevel.NULL_SYSCALL)
    stats = report.stats
    assert stats.begin_syscalls == stats.begin_calls > 0
    assert stats.monitored_ars == 0
    assert stats.traps == 0


def test_o1_skips_crossings_without_state_change():
    _, base = run(REPEATED_ARS, OptLevel.BASE)
    _, o1 = run(REPEATED_ARS, OptimizationConfig(o1_userspace=True))
    # each bump's end still frees its watchpoint (a hardware change), but
    # the no-op clear_ar at every subroutine exit stays in user space
    assert o1.stats.end_syscalls <= base.stats.end_syscalls
    assert o1.stats.clear_syscalls < base.stats.clear_syscalls
    assert o1.stats.crossings() < base.stats.crossings()


def test_o1_o2_make_ends_crossing_free():
    """With the replica + lazy freeing, an uncontended end_atomic never
    enters the kernel (second optimization, Section 3.4)."""
    _, report = run(
        REPEATED_ARS,
        OptimizationConfig(o1_userspace=True, o2_lazy_free=True),
    )
    assert report.stats.end_syscalls == 0
    assert report.stats.lazy_frees > 0


def test_o2_reconciliation_on_next_begin():
    _, report = run(
        REPEATED_ARS,
        OptimizationConfig(o1_userspace=True, o2_lazy_free=True),
    )
    # the lazily-freed slot is reclaimed by a later begin_atomic
    assert report.stats.lazy_reconciles > 0


def test_whitelisted_ars_never_cross():
    pp = ProtectedProgram(REPEATED_ARS)
    all_ars = list(pp.ar_table)
    report = pp.run(KivatiConfig(opt=OptLevel.BASE, whitelist=all_ars),
                    seed=0)
    assert report.stats.begin_syscalls == 0
    assert report.stats.end_syscalls == 0
    assert report.stats.whitelist_hits > 0
    assert report.stats.monitored_ars == 0


def test_shadow_stores_execute_only_under_o3():
    _, base = run(SINGLE_AR, OptLevel.BASE)
    assert base.stats.shadow_stores == 0
    _, o3 = run(SINGLE_AR, OptimizationConfig(o3_local_disable=True))
    assert o3.stats.shadow_stores > 0
