"""Property: the streaming checker is sound and complete.

Sound: every verdict it reports names a journaled remote access inside
a journaled window whose (first, remote, second) access triple has no
explaining serial order — decided here by brute-force concrete
execution of the three accesses, not by the Figure 2 table the checker
itself uses.  Complete: every such witnessed triple is reported.
Random traces cover up to 4 threads and 12 journal events, including
stale triggers (recorded against the epoch before the window opened),
same-thread triggers, rw-composite accesses and epoch sharing between
consecutive windows.

Plus: checker verdict order is independent of PYTHONHASHSEED (the
result multisets are sorted, never hash-ordered).
"""

import json
import subprocess
import sys

from hypothesis import given, settings, strategies as st

from repro.journal.checker import check_events
from repro.journal.events import JournalEvent


def _serializable(first, remote, second):
    """Concrete-execution brute force over both serial orders."""

    def execute(order):
        cell = 0
        reads = {}
        for who, kind, value in order:
            if kind == "W":
                cell = value
            else:
                reads[who] = cell
        return reads, cell

    interleaved = [("L1", first, 1), ("REM", remote, 2),
                   ("L2", second, 3)]
    serial_after = [("L1", first, 1), ("L2", second, 3),
                    ("REM", remote, 2)]
    serial_before = [("REM", remote, 2), ("L1", first, 1),
                     ("L2", second, 3)]
    got = execute(interleaved)
    return any(execute(s) == got for s in (serial_after, serial_before))


KIND = st.sampled_from(["R", "W"])

TRIGGER = st.fixed_dictionaries({
    "tid": st.integers(0, 3),
    "kinds": st.lists(KIND, min_size=1, max_size=2, unique=True),
    "stale": st.booleans(),     # recorded before the window opened
    "undone": st.booleans(),
})

WINDOW = st.fixed_dictionaries({
    "tid": st.integers(0, 3),
    "first": KIND,
    "second": KIND,
    "triggers": st.lists(TRIGGER, max_size=2),
})

TRACE = st.fixed_dictionaries({
    "windows": st.lists(WINDOW, min_size=1, max_size=2),
    #: both windows join one (slot, gen) epoch — the O2 lazy-free
    #: rejoin shape; the stale-trigger time filter must still hold
    "share": st.booleans(),
})


def _events(trace):
    """Flatten a trace into a well-formed journal event list."""
    windows = trace["windows"]
    events = []
    state = {"seq": 0, "time": 0}

    def emit(tid, kind, **payload):
        events.append(JournalEvent(state["seq"], state["time"], tid,
                                   kind, payload))
        state["seq"] += 1
        state["time"] += 10

    emit(0, "run-start")
    for i, w in enumerate(windows):
        if trace["share"]:
            slot, gen = 0, 1
        else:
            slot, gen = i % 2, i + 1
        if not trace["share"] or i == 0:
            emit(w["tid"], "arm", slot=slot, gen=gen)
        for t in w["triggers"]:
            if t["stale"]:
                emit(t["tid"], "trigger", slot=slot, gen=gen,
                     kinds=list(t["kinds"]), undone=t["undone"])
        emit(w["tid"], "begin", ar=i, slot=slot, gen=gen,
             first=w["first"])
        for t in w["triggers"]:
            if not t["stale"]:
                emit(t["tid"], "trigger", slot=slot, gen=gen,
                     kinds=list(t["kinds"]), undone=t["undone"])
        emit(w["tid"], "end", ar=i, second=w["second"])
        for verdict in _window_verdicts(i, w):
            emit(verdict[1], "violation", ar=i, remote_tid=verdict[2],
                 first=verdict[3], remote=verdict[4], second=verdict[5],
                 prevented=verdict[6])
    emit(0, "run-end")
    return events


def _window_verdicts(i, w):
    """Brute-force expectation for one window: one verdict per remote
    in-window access whose first matching kind is non-serializable."""
    verdicts = []
    for t in w["triggers"]:
        if t["stale"] or t["tid"] == w["tid"]:
            continue
        for kind in t["kinds"]:
            if not _serializable(w["first"], kind, w["second"]):
                verdicts.append((i, w["tid"], t["tid"], w["first"], kind,
                                 w["second"], t["undone"]))
                break
    return verdicts


def _expected(trace):
    expected = []
    for i, w in enumerate(trace["windows"]):
        expected.extend(_window_verdicts(i, w))
    return sorted(expected)


@given(TRACE)
@settings(max_examples=300, deadline=None)
def test_checker_sound_and_complete_on_random_traces(trace):
    result = check_events(_events(trace))
    assert result.complete and result.clean_close
    assert result.coverage == 1.0
    assert not result.anomalies
    assert sorted(tuple(v) for v in result.verdicts) == _expected(trace)
    # the emitted online record matches, so the full claim holds
    assert result.agrees and result.status == "pass"


@given(TRACE, st.data())
@settings(max_examples=300, deadline=None)
def test_checker_degrades_but_stays_sound_on_any_single_drop(trace, data):
    """Dropping any one frame never crashes the checker, never lets it
    claim completeness, and never creates an unwitnessed verdict."""
    events = _events(trace)
    idx = data.draw(st.integers(0, len(events) - 1), label="dropped")
    result = check_events(events[:idx] + events[idx + 1:])
    assert not result.complete
    assert result.coverage < 1.0
    assert result.status == "partial"
    # soundness survives damage: surviving verdicts are a sub-multiset
    # of the intact trace's brute-force expectation
    expected = list(_expected(trace))
    for verdict in result.verdicts:
        assert tuple(verdict) in expected
        expected.remove(tuple(verdict))
    # a gapped journal files casualties as unverified, never as
    # anomalies (those are reserved for intact-journal impossibilities)
    assert not result.anomalies


_HASHSEED_SCRIPT = """
import json, sys
sys.path.insert(0, "src")
sys.path.insert(0, "tests/journal")
from journal_common import RACY_SRC, base_config
from repro.core.session import ProtectedProgram
from repro.journal.checker import check_events
from repro.journal.recorder import JournalRecorder

recorder = JournalRecorder()
ProtectedProgram(RACY_SRC).run(base_config(journal=recorder, seed=5))
result = check_events(recorder.events)
print(json.dumps({"verdicts": [list(v) for v in result.verdicts],
                  "online": [list(v) for v in result.online],
                  "status": result.status}))
"""


def test_checker_verdict_order_is_hashseed_independent():
    outputs = []
    for seed in ("0", "42", "31337"):
        proc = subprocess.run(
            [sys.executable, "-c", _HASHSEED_SCRIPT],
            capture_output=True, text=True, cwd="/root/repo",
            env={"PYTHONHASHSEED": seed, "PATH": "/usr/bin:/bin"},
        )
        assert proc.returncode == 0, proc.stderr
        outputs.append(proc.stdout)
    assert outputs[0] == outputs[1] == outputs[2]
    payload = json.loads(outputs[0])
    assert payload["status"] == "pass"
    assert payload["verdicts"] == sorted(payload["verdicts"])
