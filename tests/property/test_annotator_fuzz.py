"""Fuzz the whole pipeline: random programs must annotate, compile and run
under Kivati with semantics identical to the vanilla run.

The generator builds structurally varied programs (globals, arrays,
pointers, helpers, branches, loops, spawned workers) that are free of
*harmful* races by construction — every cross-thread update is atomic or
lock-protected — so vanilla and protected outputs must agree exactly.
"""

from hypothesis import given, settings, strategies as st

from repro.core.config import KivatiConfig, OptLevel
from repro.core.session import ProtectedProgram

_PP_CACHE = {}


def _protect(src, **kw):
    key = (src, tuple(sorted(kw.items())))
    pp = _PP_CACHE.get(key)
    if pp is None:
        pp = ProtectedProgram(src, **kw)
        _PP_CACHE[key] = pp
    return pp


@st.composite
def random_program(draw):
    use_array = draw(st.booleans())
    use_pointer = draw(st.booleans())
    use_helper = draw(st.booleans())
    use_branch = draw(st.booleans())
    iters = draw(st.integers(min_value=1, max_value=6))
    threads = draw(st.integers(min_value=1, max_value=3))
    inc = draw(st.integers(min_value=1, max_value=4))

    globals_ = ["int m = 0;", "int total = 0;"]
    body = []
    if use_array:
        globals_.append("int table[4];")
        body.append("table[i % 4] = table[i % 4] + 1;")
    if use_pointer:
        globals_.append("int cell = 0;")
        body.append("int *p = &cell;")
        body.append("*p = *p + 1;")
    if use_branch:
        body.append("if (i % 2 == 0) { total = total + 0; }")

    update = "atomic_add(&total, %d);" % inc
    if use_helper:
        helper = """
void bump(int v) {
    lock(&m);
    int t = total;
    total = t + v;
    unlock(&m);
}
"""
        update = "bump(%d);" % inc
    else:
        helper = ""

    src = """
%s
%s
void worker(int n) {
    int i = 0;
    while (i < n) {
        %s
        %s
        i = i + 1;
    }
}
void main() {
%s
    join();
    output(total);
}
""" % (
        "\n".join(globals_),
        helper,
        "\n        ".join(body) if body else ";".join(()) or "int pad = 0;",
        update,
        "\n".join("    spawn worker(%d);" % iters for _ in range(threads)),
    )
    expected = threads * iters * inc
    return src, expected


@given(random_program(),
       st.sampled_from([OptLevel.BASE, OptLevel.OPTIMIZED]),
       st.integers(min_value=0, max_value=2))
@settings(max_examples=25, deadline=None)
def test_random_programs_survive_protection(prog, opt, seed):
    src, expected = prog
    pp = _protect(src)
    vanilla = pp.run_vanilla(seed=seed)
    assert vanilla.output == [expected]
    report = pp.run(
        KivatiConfig(opt=opt, suspend_timeout_ns=20_000), seed=seed
    )
    assert report.output == [expected]
    assert report.result.fault is None
    assert not report.result.deadlocked


@given(random_program(), st.integers(min_value=0, max_value=2))
@settings(max_examples=10, deadline=None)
def test_random_programs_with_extensions(prog, seed):
    src, expected = prog
    pp = _protect(src, interprocedural=True, pointer_analysis=True)
    report = pp.run(
        KivatiConfig(opt=OptLevel.OPTIMIZED, suspend_timeout_ns=20_000),
        seed=seed,
    )
    assert report.output == [expected]
    assert not report.result.deadlocked
