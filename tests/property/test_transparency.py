"""Property: Kivati never changes the semantics of protected programs.

Random lock-disciplined programs must produce identical output vanilla
and under every optimization level — the paper's "Kivati never introduces
new synchronization errors".
"""

from hypothesis import given, settings, strategies as st

from repro.core.config import KivatiConfig, Mode, OptLevel
from repro.core.session import ProtectedProgram

_PP_CACHE = {}


def _protect(src):
    pp = _PP_CACHE.get(src)
    if pp is None:
        pp = ProtectedProgram(src)
        _PP_CACHE[src] = pp
    return pp


@st.composite
def locked_counter_program(draw):
    threads = draw(st.integers(min_value=1, max_value=3))
    iters = draw(st.integers(min_value=1, max_value=8))
    increment = draw(st.integers(min_value=1, max_value=5))
    use_lock = draw(st.booleans())
    pad = draw(st.integers(min_value=0, max_value=6))
    body = """
        lock(&m);
        int t = counter;
        counter = t + %d;
        unlock(&m);
    """ % increment if use_lock else """
        atomic_add(&counter, %d);
    """ % increment
    src = """
    int m = 0;
    int counter = 0;
    int spin = 0;
    void worker(int n) {
        int i = 0;
        while (i < n) {
            int p = 0;
            int acc = i;
            while (p < %d) { acc = acc * 3 + p; p = p + 1; }
            %s
            i = i + 1;
        }
    }
    void main() {
    %s
        join();
        output(counter);
    }
    """ % (pad, body,
           "\n".join("    spawn worker(%d);" % iters
                     for _ in range(threads)))
    return src, threads * iters * increment


@given(locked_counter_program(), st.integers(min_value=0, max_value=3),
       st.sampled_from([OptLevel.BASE, OptLevel.SYNCVARS,
                        OptLevel.OPTIMIZED]))
@settings(max_examples=30, deadline=None)
def test_protected_output_matches_vanilla(prog, seed, opt):
    src, expected = prog
    pp = _protect(src)
    vanilla = pp.run_vanilla(seed=seed)
    assert vanilla.output == [expected]
    report = pp.run(
        KivatiConfig(opt=opt, suspend_timeout_ns=20_000), seed=seed
    )
    assert report.output == [expected]
    assert not report.result.deadlocked


@given(locked_counter_program(), st.integers(min_value=0, max_value=2))
@settings(max_examples=10, deadline=None)
def test_bug_finding_mode_is_transparent_too(prog, seed):
    src, expected = prog
    pp = _protect(src)
    config = KivatiConfig(opt=OptLevel.OPTIMIZED, mode=Mode.BUG_FINDING,
                          pause_ns=5_000, pause_probability=0.2,
                          suspend_timeout_ns=20_000)
    report = pp.run(config, seed=seed)
    assert report.output == [expected]
