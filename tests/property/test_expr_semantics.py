"""Property: the VM evaluates expressions exactly like Python does."""

from hypothesis import given, settings, strategies as st

from repro.compiler.codegen import compile_program
from repro.machine.machine import Machine
from repro.minic.parser import parse


@st.composite
def expr_and_value(draw, depth=0):
    """Generate a mini-C expression string and its Python value."""
    if depth >= 3 or draw(st.booleans()):
        value = draw(st.integers(min_value=-50, max_value=50))
        if value < 0:
            return "(0 - %d)" % -value, value
        return str(value), value
    op = draw(st.sampled_from(["+", "-", "*", "/", "%", "<", "<=", ">",
                               ">=", "==", "!="]))
    left_s, left_v = draw(expr_and_value(depth=depth + 1))
    right_s, right_v = draw(expr_and_value(depth=depth + 1))
    if op in ("/", "%") and right_v == 0:
        right_s, right_v = "7", 7
    text = "(%s %s %s)" % (left_s, op, right_s)
    if op == "+":
        return text, left_v + right_v
    if op == "-":
        return text, left_v - right_v
    if op == "*":
        return text, left_v * right_v
    if op == "/":
        return text, left_v // right_v
    if op == "%":
        return text, left_v % right_v
    if op == "<":
        return text, int(left_v < right_v)
    if op == "<=":
        return text, int(left_v <= right_v)
    if op == ">":
        return text, int(left_v > right_v)
    if op == ">=":
        return text, int(left_v >= right_v)
    if op == "==":
        return text, int(left_v == right_v)
    return text, int(left_v != right_v)


@given(expr_and_value())
@settings(max_examples=120, deadline=None)
def test_expression_evaluation_matches_python(ev):
    text, expected = ev
    program = compile_program(parse("void main() { output(%s); }" % text))
    result = Machine(program).run(raise_on_deadlock=True)
    assert result.output == [expected]


@given(st.lists(st.integers(min_value=-100, max_value=100), min_size=1,
                max_size=8))
@settings(max_examples=60, deadline=None)
def test_array_store_load_roundtrip(values):
    n = len(values)
    stores = "\n".join(
        "a[%d] = %s;" % (i, v if v >= 0 else "(0 - %d)" % -v)
        for i, v in enumerate(values)
    )
    outs = "\n".join("output(a[%d]);" % i for i in range(n))
    src = "int a[%d];\nvoid main() {\n%s\n%s\n}" % (n, stores, outs)
    program = compile_program(parse(src))
    result = Machine(program).run(raise_on_deadlock=True)
    assert result.output == values


@given(st.integers(min_value=0, max_value=30),
       st.integers(min_value=1, max_value=9))
@settings(max_examples=40, deadline=None)
def test_loop_sum(n, step):
    src = """
    void main() {
        int total = 0;
        int i = 0;
        while (i < %d) {
            total = total + i;
            i = i + %d;
        }
        output(total);
    }
    """ % (n, step)
    program = compile_program(parse(src))
    result = Machine(program).run(raise_on_deadlock=True)
    assert result.output == [sum(range(0, n, step))]
