"""Property: static must-hold locksets under-approximate dynamic reality.

For every executed statement, the locks the static analysis claims are
*must*-held on entry must actually be held by the executing thread.  The
check runs a machine observer that reconstructs held locks from lock-word
transitions (the same :class:`HeldLockTracker` the lockset baseline uses)
and compares them against ``must_in`` at each instruction's source
statement, across schedules.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.annotate import annotate
from repro.analysis.lockmodel import HeldLockTracker, token_base
from repro.compiler.bytecode import Op
from repro.compiler.codegen import compile_program
from repro.machine.machine import Machine
from repro.machine.runtime_iface import BaseRuntime
from repro.machine.threads import ThreadState

PROGRAMS = {
    "straight": """
int m;
int x;
void worker() {
    lock(&m);
    int t = x;
    x = t + 1;
    unlock(&m);
}
void main() { spawn worker(); spawn worker(); }
""",
    "loop": """
int m;
int x;
void worker() {
    int i = 0;
    while (i < 5) {
        lock(&m);
        x = x + 1;
        unlock(&m);
        i = i + 1;
    }
}
void main() { spawn worker(); spawn worker(); }
""",
    "helpers": """
int m;
int x;
void bump() { x = x + 1; }
void grab() { lock(&m); }
void drop() { unlock(&m); }
void worker() {
    grab();
    bump();
    drop();
}
void main() { spawn worker(); spawn worker(); spawn worker(); }
""",
    "branchy": """
int m;
int x;
int y;
void worker(int which) {
    lock(&m);
    if (which > 0) {
        x = x + 1;
    } else {
        y = y + 1;
    }
    unlock(&m);
}
void main() { spawn worker(0); spawn worker(1); }
""",
    "two_locks": """
int a[2];
int x;
int y;
void worker() {
    lock(&a[0]);
    x = x + 1;
    unlock(&a[0]);
    lock(&a[1]);
    y = y + 1;
    unlock(&a[1]);
}
void main() { spawn worker(); spawn worker(); }
""",
}


class MustHoldObserver(BaseRuntime):
    """Fails the property if a statement executes without a lock the
    static analysis says is must-held on entry to that statement."""

    wants_all_accesses = True

    def __init__(self, must_addrs):
        self.must_addrs = must_addrs  # stmt uid -> frozenset of lock addrs
        self.tracker = HeldLockTracker()
        self.checked = 0
        self.failures = []
        self.machine = None

    def attach(self, machine):
        self.machine = machine

    def on_memory_access(self, core, thread, addr, is_write):
        machine = self.machine
        post = machine.memory.words.get(addr, 0)
        self.tracker.observe_word(thread.tid, addr, post)
        if thread.state != ThreadState.RUNNING:
            return 0
        instr = machine.program.instrs[thread.pc - 1]
        if instr.op not in (Op.LD, Op.ST, Op.CPY) or not instr.src_uid:
            return 0
        required = self.must_addrs.get(instr.src_uid)
        if not required:
            return 0
        self.checked += 1
        missing = required - self.tracker.locks_of(thread.tid)
        if missing:
            self.failures.append(
                (thread.tid, instr.src_line, sorted(missing)))
        return 0


def _must_addrs(result, program):
    """stmt uid -> global lock addresses the analysis says are must-held.

    Only precise global tokens translate to addresses; local locks live
    at frame-relative addresses the static side cannot name."""
    out = {}
    for fr in result.locks.per_func.values():
        for uid, tokens in fr.must_in.items():
            addrs = set()
            for token in tokens:
                base = token_base(token)
                if base not in program.global_addrs or token.endswith("*]"):
                    continue
                if token == base:
                    addrs.add(program.global_addrs[base])
                else:
                    idx = int(token[token.index("[") + 1:-1])
                    addrs.add(program.global_addrs[base] + idx)
            if addrs:
                out[uid] = frozenset(addrs)
    return out


@settings(max_examples=25, deadline=None)
@given(name=st.sampled_from(sorted(PROGRAMS)),
       seed=st.integers(min_value=0, max_value=10_000),
       num_cores=st.integers(min_value=1, max_value=4))
def test_static_must_hold_subset_of_dynamic(name, seed, num_cores):
    result = annotate(PROGRAMS[name])
    program = compile_program(result.ast, result.pinfo, result.ar_table)
    must_addrs = _must_addrs(result, program)
    assert must_addrs, "template %s never proves a lock held" % name

    observer = MustHoldObserver(must_addrs)
    machine = Machine(program, num_cores=num_cores, runtime=observer,
                      seed=seed)
    machine_result = machine.run()
    assert machine_result.fault is None
    assert observer.checked > 0
    assert not observer.failures, (
        "must-hold violated at (tid, line, missing addrs): %s"
        % observer.failures[:5])
