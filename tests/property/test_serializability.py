"""Property: the Figure 2 table equals brute-force serializability.

An interleaving (local1, remote, local2) on one variable is serializable
iff some serial order — remote before the pair or after it — gives every
reading operation the same value it saw in the interleaved execution.
"""

import itertools

from hypothesis import given, strategies as st

from repro.analysis.watchtype import is_unserializable, remote_watch_kinds
from repro.minic.ast import AccessKind

R = AccessKind.READ
W = AccessKind.WRITE


def brute_force_serializable(first, remote, second):
    """Execute the three accesses on a concrete cell and compare reads
    against both serial orders. Writes use distinct values so any
    visibility difference is observable."""

    def execute(order):
        # order: (who, kind, value) list; result = (read results, final
        # cell value) — lost updates show up in the final state
        cell = 0
        reads = {}
        for who, kind, value in order:
            if kind is W:
                cell = value
            else:
                reads[who] = cell
        return reads, cell

    interleaved = [("L1", first, 1), ("REM", remote, 2), ("L2", second, 3)]
    serial_after = [("L1", first, 1), ("L2", second, 3), ("REM", remote, 2)]
    serial_before = [("REM", remote, 2), ("L1", first, 1), ("L2", second, 3)]

    got = execute(interleaved)
    for serial in (serial_after, serial_before):
        want = execute(serial)
        if want == got:
            return True
    return False


@given(st.sampled_from([R, W]), st.sampled_from([R, W]),
       st.sampled_from([R, W]))
def test_table_matches_brute_force(first, remote, second):
    assert is_unserializable(first, remote, second) == (
        not brute_force_serializable(first, remote, second)
    )


def test_exhaustive_equivalence():
    for first, remote, second in itertools.product((R, W), repeat=3):
        assert is_unserializable(first, remote, second) == (
            not brute_force_serializable(first, remote, second)
        )


@given(st.sampled_from([R, W]), st.sampled_from([R, W]))
def test_watch_kinds_sound_and_minimal(first, second):
    """Figure 6 watches a remote kind iff that kind can violate."""
    watch_read, watch_write = remote_watch_kinds(first, second)
    assert watch_read == is_unserializable(first, R, second)
    assert watch_write == is_unserializable(first, W, second)
