"""Property: static AR footprints over-approximate dynamic footprints.

The footprint analysis (:mod:`repro.analysis.footprint`) claims that the
set of globals an atomic region's dynamic window touches — on *any*
schedule — is a subset of the statically computed may-read/may-write
sets (or the footprint is wild).  This is the soundness contract the
conflict graph and the conflict-aware scheduler rest on: a pair of ARs
with disjoint static footprints must never be able to touch a common
word at run time.

The check runs the real Kivati runtime with the all-accesses observer
hook; every memory access a thread performs while it has an active AR
is charged to that AR and mapped back to a global name through the
binary's layout.  Stack accesses are skipped — named locals are
per-thread and deliberately outside the footprint domain.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import KivatiConfig
from repro.core.reports import ViolationLog
from repro.core.session import ProtectedProgram
from repro.machine.machine import Machine
from repro.runtime.userlib import KivatiRuntime

PROGRAMS = {
    "plain_rmw": """
int x;
void worker() {
    int t = x;
    x = t + 1;
}
void main() { spawn worker(); spawn worker(); }
""",
    "locked_rmw": """
int m;
int x;
int y;
void worker() {
    lock(&m);
    int t = x;
    y = t;
    x = t + 1;
    unlock(&m);
}
void main() { spawn worker(); spawn worker(); }
""",
    "alias_write": """
int x;
int y;
void worker() {
    int* p = &x;
    int t = x;
    *p = t + 1;
    y = y + 2;
}
void main() { spawn worker(); spawn worker(); }
""",
    "helper_call": """
int x;
int z;
void bump() { z = z + 1; }
void worker() {
    int t = x;
    bump();
    x = t + 1;
}
void main() { spawn worker(); spawn worker(); }
""",
    "array_slot": """
int a[4];
int x;
void worker(int i) {
    int t = a[i];
    x = x + t;
    a[i] = t + 1;
}
void main() { spawn worker(0); spawn worker(1); }
""",
    "branchy_span": """
int x;
int y;
int z;
void worker(int w) {
    int t = x;
    if (w > 0) {
        y = y + 1;
    } else {
        z = z + 1;
    }
    x = t + 1;
}
void main() { spawn worker(0); spawn worker(1); }
""",
}


class FootprintObserver(KivatiRuntime):
    """Charges every in-window access to the accessing thread's ARs."""

    wants_all_accesses = True

    def __init__(self, name_of, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self._name_of = name_of
        self.dynamic = {}  # ar_id -> set of (global name, is_write)

    def on_memory_access(self, core, thread, addr, is_write):
        table = self.kernel.ar_tables.get(thread.tid)
        if table:
            name = self._name_of(addr)
            if name is not None:
                for ar_id in table:
                    self.dynamic.setdefault(ar_id, set()).add(
                        (name, bool(is_write)))
        return 0


def _global_namer(program, pinfo):
    """addr -> global base name (arrays cover their whole range)."""
    spans = []
    for name, base in program.global_addrs.items():
        size = pinfo.global_sizes.get(name, 1)
        spans.append((base, base + size, name))
    spans.sort()

    def name_of(addr):
        for lo, hi, name in spans:
            if lo <= addr < hi:
                return name
        return None

    return name_of


@settings(max_examples=25, deadline=None)
@given(name=st.sampled_from(sorted(PROGRAMS)),
       seed=st.integers(min_value=0, max_value=10_000),
       num_cores=st.integers(min_value=1, max_value=4))
def test_static_footprint_superset_of_dynamic(name, seed, num_cores):
    pp = ProtectedProgram(PROGRAMS[name])
    config = KivatiConfig(num_cores=num_cores, seed=seed)
    observer = FootprintObserver(
        _global_namer(pp.program, pp.annotation.pinfo),
        config, pp.ar_table, ViolationLog(), pp.sync_ar_ids,
        footprints=pp.annotation.footprints,
        func_footprints=pp.annotation.func_footprints)
    machine = Machine(pp.program, num_cores=num_cores, runtime=observer,
                      seed=seed, costs=config.costs)
    result = machine.run()
    assert result.fault is None

    assert observer.dynamic, "no AR window ever executed an access"
    for ar_id, touched in sorted(observer.dynamic.items()):
        fp = pp.annotation.footprints.get(ar_id)
        assert fp is not None, "AR %d has no static footprint" % ar_id
        if fp.wild:
            continue  # wild = may touch anything: trivially sound
        dynamic_all = {n for n, _ in touched}
        dynamic_writes = {n for n, w in touched if w}
        assert dynamic_all <= (fp.reads | fp.writes), (
            "AR %d dynamically touched %s outside its static footprint %s"
            % (ar_id, sorted(dynamic_all - (fp.reads | fp.writes)),
               fp.describe()))
        assert dynamic_writes <= fp.writes, (
            "AR %d dynamically wrote %s outside its may-write set %s"
            % (ar_id, sorted(dynamic_writes - fp.writes), fp.describe()))
