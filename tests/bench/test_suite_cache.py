"""Measurement-suite plumbing tests (small scale)."""

from repro.bench.suite import AppMeasurement, SuiteResults, run_suite
from repro.core.config import Mode, OptLevel


def test_suite_runs_and_caches():
    first = run_suite(scale=0.06, seed=1,
                      levels=(OptLevel.OPTIMIZED,),
                      modes=(Mode.PREVENTION,))
    second = run_suite(scale=0.06, seed=1,
                       levels=(OptLevel.OPTIMIZED,),
                       modes=(Mode.PREVENTION,))
    assert first is second
    assert len(first.apps) == 5
    for app in first:
        assert isinstance(app, AppMeasurement)
        assert app.overhead(OptLevel.OPTIMIZED) > -0.2
        report = app.report(OptLevel.OPTIMIZED)
        assert report.result.instr_count > 0


def test_suite_geometric_mean():
    suite = run_suite(scale=0.06, seed=1,
                      levels=(OptLevel.OPTIMIZED,),
                      modes=(Mode.PREVENTION,))
    gm = suite.geometric_mean_overhead(OptLevel.OPTIMIZED)
    overheads = [max(1e-6, a.overhead(OptLevel.OPTIMIZED)) for a in suite]
    assert min(overheads) <= gm <= max(overheads)


def test_suite_indexing():
    suite = run_suite(scale=0.06, seed=1,
                      levels=(OptLevel.OPTIMIZED,),
                      modes=(Mode.PREVENTION,))
    assert suite["NSS"].name == "NSS"
