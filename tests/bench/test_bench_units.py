"""Bench infrastructure unit tests (cheap pieces only; the heavy table
generators are exercised by the benchmarks/ suite)."""

from repro.bench.render import Table, pct
from repro.bench.scale import SCALE, bench_config, scaled_times
from repro.bench import table1, table2
from repro.core.config import Mode, OptLevel


def test_render_table_alignment():
    table = Table("demo", ["A", "Blong"], note="n")
    table.add_row("x", 1)
    table.add_row("longer", 22)
    text = table.render()
    assert "demo" in text
    assert "longer" in text
    assert "note: n" in text
    lines = [l for l in text.splitlines() if l.startswith(("A", "x", "longer"))]
    assert len({line.index("B") if "B" in line else None
                for line in lines if "B" in line}) <= 1


def test_pct():
    assert pct(0.191) == "19.1%"


def test_bench_config_scales_time_constants():
    config = bench_config(Mode.BUG_FINDING, OptLevel.BASE, pause_ms=50)
    assert config.pause_ns == 50 * 1_000_000 // SCALE
    assert config.suspend_timeout_ns == 10 * 1_000_000 // SCALE
    assert config.mode == Mode.BUG_FINDING
    assert not config.opt.o1_userspace


def test_bench_config_overrides():
    config = bench_config(num_watchpoints=8, pause_probability=0.5)
    assert config.num_watchpoints == 8
    assert config.pause_probability == 0.5


def test_scaled_times_format():
    # 1 µs of simulation renders as 1 paper-second
    assert scaled_times(60_000) == "1:00"
    assert scaled_times(90_500) == "1:30"
    assert scaled_times(0) == "0:00"


def test_table1_is_static_and_correct():
    assert table1.matches_paper()
    text = table1.generate().render()
    assert "SPARC" in text


def test_table2_lists_five_apps():
    table = table2.generate(scale=0.1)
    assert len(table.rows) == 5
