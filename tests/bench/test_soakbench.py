"""Soak harness smoke tests (time-bounded: small multipliers, one
seed; the CLI/CI path runs the full sweep)."""

import pytest

from repro.bench import soakbench
from repro.core.session import ProtectedProgram


def test_build_soak_workloads_inflates_threads():
    base = {w.name: w.threads for w in
            soakbench.build_soak_workloads(multiplier=1)}
    inflated = {w.name: w.threads for w in
                soakbench.build_soak_workloads(multiplier=4)}
    for name in base:
        if name == "VLC":
            # fixed 3-thread pipeline: pressure scales via frame volume
            assert inflated[name] == base[name]
        else:
            assert inflated[name] == 4 * base[name]


def test_soak_policy_scales_time_constants():
    policy = soakbench.soak_policy()
    # bench scale: everything far below the OS-scale defaults
    assert policy.leak_age_ns < 1_000_000
    assert policy.latency_watermark_ns < 1_000_000


def test_soak_case_liveness_asserts_pass_on_one_app():
    workload = soakbench.build_soak_workloads(multiplier=2, scale=0.2)[0]
    program = ProtectedProgram(workload.source)
    config = soakbench.soak_config()
    case = soakbench.run_soak_case(program, workload, config, seed=0,
                                   multiplier=2)
    assert case.ok, case.problems
    assert 0.0 < case.coverage <= 1.0


def test_soak_sweep_smoke():
    result = soakbench.generate(seeds=(0,), multipliers=(1,), scale=0.15)
    assert result.check() == []
    text = result.render()
    assert "coverage" in text
    assert len(result.rows) == 5  # one row per app
    # coverage never collapses to zero: monitoring degrades, not dies
    for case in result.cases:
        assert case.coverage > 0.0


def test_soak_replay_determinism():
    case, replay = soakbench.replay_determinism_check(multiplier=1,
                                                     scale=0.15)
    assert replay.ok, replay.describe()
    assert replay.verdicts_match
    assert case.report.pressure is not None


def test_corpus_recall_under_pressure_subset():
    cases = soakbench.corpus_recall(bug_ids=("341323", "19938"),
                                    max_attempts=10)
    assert all(c.outcome in ("detected", "sampled") for c in cases), \
        [(c.bug_id, c.outcome) for c in cases]
