"""Conflictbench artifact tests: validation gates + the committed
``BENCH_conflict.json`` (the performance claim CI pins)."""

import json
import os

from repro.bench import conflictbench


def _payload(**overrides):
    base = {
        "schema": conflictbench.SCHEMA,
        "smoke": False,
        "scale": 1.0,
        "seeds": [0, 1, 2, 3],
        "num_cores": 2,
        "apps": [
            {"app": name, "base_total": 20, "conf_total": total,
             "decisions": 5, "verdict": verdict}
            for name, total, verdict in (
                ("NSS", 10, "improved"), ("VLC", 15, "improved"),
                ("Webstone", 12, "improved"), ("TPC-W", 25, "regressed"),
                ("SPEC OMP", 20, "same"))
        ],
        "improved": ["NSS", "VLC", "Webstone"],
        "regressed": ["TPC-W"],
        "min_improved": conflictbench.MIN_IMPROVED,
        "corpus": {"runs_checked": 33, "diffs": [], "identical": True},
        "recall": {"bugs_checked": 11, "missed": [], "all_detected": True},
        "replay": {"ok": True, "verdicts_match": True, "csched_frames": 4},
    }
    base.update(overrides)
    return base


def test_validate_accepts_well_formed_payload():
    assert conflictbench.validate(_payload()) == []


def test_validate_rejects_wrong_schema():
    assert conflictbench.validate(_payload(schema="nope/v9"))


def test_validate_rejects_too_few_improvements():
    payload = _payload(improved=["NSS"])
    assert any("improved" in p for p in conflictbench.validate(payload))


def test_validate_rejects_corpus_divergence():
    payload = _payload(corpus={"runs_checked": 33, "identical": False,
                               "diffs": [{"bug": "19938", "seed": 0}]})
    assert any("multiset" in p for p in conflictbench.validate(payload))


def test_validate_rejects_lost_recall():
    payload = _payload(recall={"bugs_checked": 11, "missed": ["19938"],
                               "all_detected": False})
    assert any("recall" in p for p in conflictbench.validate(payload))


def test_validate_rejects_replay_divergence():
    payload = _payload(replay={"ok": False, "verdicts_match": False,
                               "csched_frames": 0})
    assert any("replay" in p for p in conflictbench.validate(payload))


def test_validate_requires_csched_frames_in_full_artifact():
    payload = _payload(replay={"ok": True, "verdicts_match": True,
                               "csched_frames": 0})
    assert any("csched" in p for p in conflictbench.validate(payload))


def test_smoke_artifact_relaxes_gates():
    payload = _payload(smoke=True, min_improved=0, improved=[],
                       apps=_payload()["apps"][:3],
                       replay={"ok": True, "verdicts_match": True,
                               "csched_frames": 0})
    assert conflictbench.validate(payload) == []


def test_committed_artifact_is_valid():
    path = os.path.join(os.path.dirname(__file__), os.pardir, os.pardir,
                        "BENCH_conflict.json")
    with open(path) as f:
        payload = json.load(f)
    assert conflictbench.validate(payload) == []
    assert not payload["smoke"], "the committed artifact must be full-size"
    assert len(payload["improved"]) >= conflictbench.MIN_IMPROVED
