"""Checkerbench artifact tests: validation gates, synthetic-journal
soundness units, and the committed ``BENCH_checker.json`` (the scaling
and speedup claim CI pins)."""

import json
import os

from repro.bench import checkerbench
from repro.journal.checker import check_journal


def _scaling_row(events, seconds, triggers=8, sound=True, status="pass"):
    return {"events": events, "bytes": events * 100, "seconds": seconds,
            "events_per_second": events / seconds, "verdicts": 5,
            "expected_verdicts": 5, "sound": sound, "status": status,
            "peak_live_regions": 1, "peak_epochs": 4,
            "peak_retained_triggers": triggers}


def _payload(**overrides):
    base = {
        "schema": checkerbench.SCHEMA,
        "smoke": False,
        "scaling": {
            "sizes": [10_000, 1_000_000],
            "rows": [_scaling_row(10_000, 0.05),
                     _scaling_row(1_000_000, 5.2)],
            "slope": 1.01,
            "max_slope": checkerbench.MAX_SLOPE,
        },
        "speedup": {"iters": 60, "seed": 0, "runs": 3,
                    "journal_bytes": 250_000, "check_seconds": 0.05,
                    "replay_seconds": 0.5, "speedup": 10.0,
                    "checker_agrees": True, "checker_verdicts": 6,
                    "replay_ok": True},
        "min_speedup": checkerbench.MIN_SPEEDUP,
        "corruption": {"iters": 8, "seed": 0, "journal_bytes": 250_000,
                       "frame_boundaries": 80, "truncations": 80,
                       "flips": 79, "crashes": [],
                       "coverage_monotone": True, "false_complete": 0,
                       "final_coverage": 1.0},
        "corpus": {"runs": 33, "bugs": 11, "bugs_detected": 11,
                   "disagreements": []},
        "fuzz": {"programs": 200, "programs_with_verdicts": 60,
                 "disagreements": []},
    }
    base.update(overrides)
    return base


def test_validate_accepts_well_formed_payload():
    assert checkerbench.validate(_payload()) == []


def test_validate_rejects_wrong_schema():
    assert checkerbench.validate(_payload(schema="nope/v9"))


def test_validate_rejects_unsound_scaling_row():
    payload = _payload()
    payload["scaling"]["rows"][1] = _scaling_row(1_000_000, 5.2,
                                                 sound=False)
    assert any("unsound" in p for p in checkerbench.validate(payload))


def test_validate_rejects_superlinear_slope():
    payload = _payload()
    payload["scaling"]["slope"] = 1.8
    assert any("near-linear" in p for p in checkerbench.validate(payload))


def test_validate_rejects_gc_leak():
    payload = _payload()
    payload["scaling"]["rows"][1]["peak_retained_triggers"] = 5_000
    assert any("GC leak" in p for p in checkerbench.validate(payload))


def test_validate_rejects_small_top_size():
    payload = _payload()
    payload["scaling"]["sizes"] = [10_000, 50_000]
    payload["scaling"]["rows"] = [_scaling_row(10_000, 0.05),
                                  _scaling_row(50_000, 0.2)]
    assert any("1M events" in p for p in checkerbench.validate(payload))


def test_validate_rejects_slow_checker():
    payload = _payload()
    payload["speedup"]["speedup"] = 2.5
    assert any("speedup" in p for p in checkerbench.validate(payload))


def test_validate_rejects_corruption_failures():
    payload = _payload()
    payload["corruption"]["crashes"] = [{"op": "truncate", "offset": 12,
                                         "error": "ValueError: boom"}]
    assert any("crashed" in p for p in checkerbench.validate(payload))
    payload = _payload()
    payload["corruption"]["coverage_monotone"] = False
    assert any("monotone" in p for p in checkerbench.validate(payload))
    payload = _payload()
    payload["corruption"]["false_complete"] = 3
    assert any("completeness" in p for p in checkerbench.validate(payload))


def test_validate_rejects_differential_disagreements():
    payload = _payload()
    payload["corpus"]["disagreements"] = [{"bug": "19938", "seed": 1}]
    assert any("corpus" in p for p in checkerbench.validate(payload))
    payload = _payload()
    payload["fuzz"]["disagreements"] = [{"program_id": "p1"}]
    assert any("fuzz" in p for p in checkerbench.validate(payload))
    payload = _payload()
    payload["fuzz"]["programs"] = 12
    assert any("programs" in p for p in checkerbench.validate(payload))


def test_smoke_artifact_relaxes_timing_but_not_correctness():
    payload = _payload(smoke=True, min_speedup=0.0)
    payload["scaling"]["sizes"] = [2_000, 10_000]
    payload["scaling"]["rows"] = [_scaling_row(2_000, 0.01),
                                  _scaling_row(10_000, 0.05)]
    payload["scaling"]["slope"] = 2.5  # timing noise: ignored for smoke
    payload["speedup"]["speedup"] = 1.0
    payload["fuzz"]["programs"] = 12
    assert checkerbench.validate(payload) == []
    # correctness gates still bite
    payload["corruption"]["coverage_monotone"] = False
    assert checkerbench.validate(payload)


def test_synthetic_journal_is_sound_by_construction(tmp_path):
    path = str(tmp_path / "synthetic.journal")
    expected, written = checkerbench.synthesize_journal(path, 800, seed=3)
    result = check_journal(path)
    assert result.verdicts == expected
    assert result.status == "pass"
    assert result.events_checked == written
    assert result.coverage == 1.0


def test_scaling_series_reports_sound_rows(tmp_path):
    rows, slope = checkerbench.scaling_series((400, 1200),
                                              workdir=str(tmp_path))
    assert [r["sound"] for r in rows] == [True, True]
    assert [r["status"] for r in rows] == ["pass", "pass"]
    assert slope is not None
    # streaming GC held: retained state is a handful, not O(trace)
    assert all(r["peak_retained_triggers"] < 100 for r in rows)


def test_render_mentions_every_gate():
    text = checkerbench.render(_payload())
    for needle in ("slope", "speedup vs replay-reverify", "corruption",
                   "disagreements", "sound"):
        assert needle in text


def test_committed_artifact_is_valid():
    path = os.path.join(os.path.dirname(__file__), os.pardir, os.pardir,
                        "BENCH_checker.json")
    with open(path) as f:
        payload = json.load(f)
    assert checkerbench.validate(payload) == []
    assert not payload["smoke"], "the committed artifact must be full-size"
    assert max(r["events"] for r in payload["scaling"]["rows"]) >= 1_000_000
    assert payload["speedup"]["speedup"] >= checkerbench.MIN_SPEEDUP
    assert payload["corruption"]["crashes"] == []
    assert payload["corpus"]["disagreements"] == []
    assert payload["fuzz"]["disagreements"] == []
