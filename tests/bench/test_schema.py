"""Shared bench-artifact schema plumbing (`kivati bench validate`)."""

import json

from repro.bench import schema as bench_schema


def test_check_schema_preamble():
    assert bench_schema.check_schema([], "x/v1") \
        == ["payload is not an object"]
    assert bench_schema.check_schema({"schema": "x/v1", "a": 1}, "x/v1",
                                     required=("a",)) == []
    problems = bench_schema.check_schema({"schema": "y/v1"}, "x/v1",
                                         required=("a", "b"))
    assert len(problems) == 3
    assert any("want 'x/v1'" in p for p in problems)
    assert any("missing key 'a'" in p for p in problems)


def test_known_schemas_covers_every_registered_module():
    schemas = bench_schema.known_schemas()
    assert set(schemas.values()) \
        == set(bench_schema.ARTIFACT_MODULES.values())
    assert "kivati-obsbench/v1" in schemas
    assert "kivati-fleetbench/v1" in schemas


def test_validate_artifact_dispatches_by_schema():
    assert bench_schema.validate_artifact("nope") \
        == ["payload is not an object"]
    problems = bench_schema.validate_artifact({"schema": "martian/v9"})
    assert len(problems) == 1
    assert "unknown schema" in problems[0]
    # a known schema dispatches to the owning module's validate(),
    # which then reports its own missing-key problems
    problems = bench_schema.validate_artifact(
        {"schema": "kivati-fleetbench/v1"})
    assert problems
    assert all("martian" not in p for p in problems)


def test_validate_file_handles_bad_inputs(tmp_path):
    missing = tmp_path / "nope.json"
    assert any("cannot read" in p
               for p in bench_schema.validate_file(str(missing)))
    garbled = tmp_path / "garbled.json"
    garbled.write_text("{not json")
    assert any("not valid JSON" in p
               for p in bench_schema.validate_file(str(garbled)))


def test_committed_artifacts_discovery(tmp_path):
    (tmp_path / "BENCH_a.json").write_text("{}")
    (tmp_path / "BENCH_b.json").write_text("{}")
    (tmp_path / "README.md").write_text("not an artifact")
    (tmp_path / "BENCH_dir.json").mkdir()
    assert bench_schema.committed_artifacts(str(tmp_path)) \
        == ["BENCH_a.json", "BENCH_b.json"]


def test_validate_committed_repo_set_is_clean():
    report = bench_schema.validate_committed(".")
    assert report, "expected committed BENCH_*.json artifacts"
    failures = {name: problems for name, problems in report.items()
                if problems}
    assert failures == {}


def test_registered_modules_validate_their_own_artifacts():
    # every committed artifact's filename registry entry agrees with
    # the payload's schema-based dispatch
    for name in bench_schema.committed_artifacts("."):
        module_name = bench_schema.ARTIFACT_MODULES.get(name)
        assert module_name is not None, name
        with open(name) as f:
            payload = json.load(f)
        assert bench_schema.known_schemas()[payload["schema"]] \
            == module_name
